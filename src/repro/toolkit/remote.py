"""Separate-address-space agent placement.

The paper (Section 2.2): "The lowest layers of the toolkit hide this
Mach-specific choice, allowing agents to be constructed that could be
located either in the same or different address spaces as their
clients" — and (Section 3.5.1) its measured costs "are strongly shaped
by agents residing in the address spaces of their clients."

:class:`SeparateSpaceAgent` realises the other placement: it wraps any
toolkit agent so that its handlers run in a dedicated *agent task*
(threads of its own, standing in for its own address space) reached by
message-passing IPC.  Interception, the downcall chain, signals, fork
and exec behave identically — agents and clients cannot tell the
difference — but every intercepted call now pays two IPC hops and a
marshalling pass, which is exactly the cost the same-address-space
design avoids (see ``benchmarks/bench_agent_placement.py``).

Usage::

    agent = SeparateSpaceAgent(TraceSymbolicSyscall("/tmp/t.out"))
    run_under_agent(kernel, agent, "/bin/sh", ["sh", "-c", "..."])

The wrapper is itself a toolkit ``Agent``: it stacks above or below
other agents like any other.
"""

import copy
import queue
import threading

from repro.toolkit.boilerplate import Agent


def _marshal(value, _depth=0):
    """Copy a value across the simulated address-space boundary.

    Plain data is deep-copied, as a real message-based interface would
    transfer it.  Callables (fork entry points, signal handlers) and
    other unknown objects cross by reference — they stand for code and
    capabilities, which on Mach would be ports rather than bytes.
    """
    if _depth > 4:
        return value
    if isinstance(value, (int, float, bool, str, bytes, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        items = [_marshal(item, _depth + 1) for item in value]
        return type(value)(items)
    if isinstance(value, dict):
        return {
            _marshal(k, _depth + 1): _marshal(v, _depth + 1)
            for k, v in value.items()
        }
    try:
        return copy.copy(value)  # Stat, Timeval, Dirent, Rusage, ...
    except Exception:
        return value


class _Request:
    __slots__ = ("kind", "ctx", "payload", "reply")

    def __init__(self, kind, ctx, payload):
        self.kind = kind
        self.ctx = ctx
        self.payload = payload
        self.reply = queue.Queue(maxsize=1)


class SeparateSpaceAgent(Agent):
    """Run *inner* in its own agent task, reached by message passing."""

    OBS_LAYER = "remote"

    def __init__(self, inner):
        super().__init__()
        self.inner = inner
        self._requests = queue.Queue()
        self._dispatcher = threading.Thread(
            target=self._dispatch, name="agent-task", daemon=True
        )
        self._dispatcher.start()
        #: IPC round trips paid so far (two hops each)
        self.ipc_round_trips = 0

    # -- the agent task ---------------------------------------------------

    def _dispatch(self):
        """Accept messages; serve each on an agent-task thread.

        One service thread per outstanding request keeps one client's
        blocking call (a pipe read held in the agent, say) from stalling
        every other client — the concurrency an in-space agent gets for
        free from running on its clients' own threads.
        """
        while True:
            request = self._requests.get()
            if request is None:
                return
            threading.Thread(
                target=self._serve_one, args=(request,), daemon=True
            ).start()

    def _serve_one(self, request):
        inner = self.inner
        try:
            inner._bind(request.ctx)
            # The wrapper's own boilerplate (spliced registration entry
            # points) may run on this thread too; bind it as well.
            self._bind(request.ctx)
            if request.kind == "syscall":
                number, args = request.payload
                result = inner.handle_syscall(number, args)
                request.reply.put(("ok", _marshal(result)))
            elif request.kind == "signal":
                signum, action = request.payload
                inner.handle_signal(signum, action)
                request.reply.put(("ok", None))
            elif request.kind == "init":
                agentargv = request.payload
                inner.attach(request.ctx, agentargv)
                request.reply.put(("ok", None))
            elif request.kind == "init_child":
                inner.init_child()
                request.reply.put(("ok", None))
            elif request.kind == "exec":
                path, argv, envp = request.payload
                inner.reexec(path, argv, envp)
                request.reply.put(("ok", None))  # unreachable: exec unwinds
            else:
                raise AssertionError("bad request %r" % request.kind)
        except BaseException as exc:  # errors AND control transfers
            request.reply.put(("raise", exc))

    def _rpc(self, kind, payload):
        request = _Request(kind, self.ctx, _marshal(payload))
        self._requests.put(request)
        status, value = request.reply.get()
        self.ipc_round_trips += 1
        if status == "raise":
            raise value  # SyscallError, ProcessExit, ExecImage, ...
        return value

    def shutdown(self):
        """Stop the dispatcher (idempotent; service threads are daemons)."""
        if self._dispatcher.is_alive():
            self._requests.put(None)
            self._dispatcher.join(timeout=5)

    # -- the client-side stubs --------------------------------------------

    def attach(self, ctx, agentargv=()):
        self._bind(ctx)
        # The inner agent must register *this* wrapper's entry points in
        # the emulation vector, and must wrap fork children through the
        # wrapper too; splice the boilerplate seams before its init runs.
        inner = self.inner
        inner.register_interest_many = self.register_interest_many
        inner.register_signal_interest = self.register_signal_interest
        inner.unregister_interest = self.unregister_interest
        inner.unregister_signal_interest = self.unregister_signal_interest
        inner.wrap_fork_entry = self.wrap_fork_entry
        # Share one downcall-chain map so agents stacked *below* this one
        # still see the inner agent's downcalls.
        self._down = inner._down
        self._rpc("init", list(agentargv))

    def handle_syscall(self, number, args):
        return self._rpc("syscall", (number, args))

    # repro-lint: disable=L005 -- forwards by IPC: the inner agent's
    # handle_signal runs in the agent task and does the signal_up there.
    def handle_signal(self, signum, action):
        self._rpc("signal", (signum, action))

    def init_child(self):
        self._rpc("init_child", None)

    def exec_client(self, path, argv=None, envp=None):
        self._rpc("exec", (path, argv, envp))
        raise AssertionError("exec_client returned")
