"""Separate-address-space agent placement.

The paper (Section 2.2): "The lowest layers of the toolkit hide this
Mach-specific choice, allowing agents to be constructed that could be
located either in the same or different address spaces as their
clients" — and (Section 3.5.1) its measured costs "are strongly shaped
by agents residing in the address spaces of their clients."

:class:`SeparateSpaceAgent` realises the other placement: it wraps any
toolkit agent so that its handlers run in a dedicated *agent task*
(threads of its own, standing in for its own address space) reached by
message-passing IPC.  Interception, the downcall chain, signals, fork
and exec behave identically — agents and clients cannot tell the
difference — but every intercepted call now pays two IPC hops and a
marshalling pass, which is exactly the cost the same-address-space
design avoids (see ``benchmarks/bench_agent_placement.py``).

Usage::

    agent = SeparateSpaceAgent(TraceSymbolicSyscall("/tmp/t.out"))
    run_under_agent(kernel, agent, "/bin/sh", ["sh", "-c", "..."])

The wrapper is itself a toolkit ``Agent``: it stacks above or below
other agents like any other.
"""

import copy
import queue
import threading
import time

from repro.kernel.errno import EIO, SyscallError
from repro.obs import events as ev
from repro.toolkit.boilerplate import Agent

#: default reply deadline, in host seconds.  Deliberately generous: an
#: agent legitimately holding a client's blocking call (a pipe read,
#: say) is not a failure, and the kernel's own sleep watchdog (30s)
#: converts a genuinely stuck sleep into an exception that flows back
#: as a reply long before this fires.  The watchdog is the backstop for
#: an agent task that is alive but wedged outside the kernel.
DEFAULT_WATCHDOG = 60.0

#: reply-poll backoff bounds, in host seconds: the wait starts hot (an
#: IPC round trip is normally microseconds) and backs off exponentially
#: so a long-blocked call costs no busy spin
_POLL_MIN = 0.005
_POLL_MAX = 0.25


def _marshal(value, _depth=0):
    """Copy a value across the simulated address-space boundary.

    Plain data is deep-copied, as a real message-based interface would
    transfer it.  Callables (fork entry points, signal handlers) and
    other unknown objects cross by reference — they stand for code and
    capabilities, which on Mach would be ports rather than bytes.
    """
    if _depth > 4:
        return value
    if isinstance(value, (int, float, bool, str, bytes, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        items = [_marshal(item, _depth + 1) for item in value]
        return type(value)(items)
    if isinstance(value, dict):
        return {
            _marshal(k, _depth + 1): _marshal(v, _depth + 1)
            for k, v in value.items()
        }
    try:
        return copy.copy(value)  # Stat, Timeval, Dirent, Rusage, ...
    except Exception:
        return value


class _Request:
    __slots__ = ("kind", "ctx", "payload", "reply", "claimed")

    def __init__(self, kind, ctx, payload):
        self.kind = kind
        self.ctx = ctx
        self.payload = payload
        self.reply = queue.Queue(maxsize=1)
        #: set by the dispatcher the moment a service thread takes the
        #: request: an unclaimed request whose dispatcher died will
        #: never be served, and the client can say so immediately
        self.claimed = False


class SeparateSpaceAgent(Agent):
    """Run *inner* in its own agent task, reached by message passing."""

    OBS_LAYER = "remote"

    def __init__(self, inner, watchdog=DEFAULT_WATCHDOG):
        super().__init__()
        self.inner = inner
        #: reply deadline in host seconds (None disables the watchdog)
        self.watchdog = watchdog
        self._requests = queue.Queue()
        self._stopping = False
        self._dispatcher = threading.Thread(
            target=self._dispatch, name="agent-task", daemon=True
        )
        self._dispatcher.start()
        #: IPC round trips paid so far (two hops each)
        self.ipc_round_trips = 0
        #: IPC failures surfaced (dead dispatcher or watchdog expiry)
        self.stalls = 0

    # -- the agent task ---------------------------------------------------

    def _dispatch(self):
        """Accept messages; serve each on an agent-task thread.

        One service thread per outstanding request keeps one client's
        blocking call (a pipe read held in the agent, say) from stalling
        every other client — the concurrency an in-space agent gets for
        free from running on its clients' own threads.

        The accept loop wakes periodically rather than blocking forever,
        so a shutdown whose ``None`` sentinel was lost (or raced) still
        stops the task via the ``_stopping`` flag.
        """
        while True:
            try:
                request = self._requests.get(timeout=0.5)
            except queue.Empty:
                if self._stopping:
                    return
                continue
            if request is None:
                return
            request.claimed = True
            threading.Thread(
                target=self._serve_one, args=(request,), daemon=True
            ).start()

    def _serve_one(self, request):
        inner = self.inner
        try:
            inner._bind(request.ctx)
            # The wrapper's own boilerplate (spliced registration entry
            # points) may run on this thread too; bind it as well.
            self._bind(request.ctx)
            if request.kind == "syscall":
                number, args = request.payload
                result = inner.handle_syscall(number, args)
                request.reply.put(("ok", _marshal(result)))
            elif request.kind == "signal":
                signum, action = request.payload
                inner.handle_signal(signum, action)
                request.reply.put(("ok", None))
            elif request.kind == "init":
                agentargv = request.payload
                inner.attach(request.ctx, agentargv)
                request.reply.put(("ok", None))
            elif request.kind == "init_child":
                inner.init_child()
                request.reply.put(("ok", None))
            elif request.kind == "exec":
                path, argv, envp = request.payload
                inner.reexec(path, argv, envp)
                request.reply.put(("ok", None))  # unreachable: exec unwinds
            else:
                raise AssertionError("bad request %r" % request.kind)
        except BaseException as exc:  # errors AND control transfers
            request.reply.put(("raise", exc))

    def _stall(self, name, detail):
        """Record one IPC failure: counter, obs event, clean error."""
        self.stalls += 1
        ctx = getattr(self._tls, "ctx", None)
        if ctx is not None:
            obs = ctx.kernel.obs
            if obs is not None:
                if obs.metrics_on:
                    obs.metrics.inc((ev.REMOTE_STALL, name))
                if obs.wants(ctx.proc):
                    obs.emit(ev.REMOTE_STALL, ctx.proc, name, detail)
        return SyscallError(EIO, "agent task: %s" % detail)

    def _await_reply(self, request, kind):
        """Wait for *request*'s reply with watchdog + liveness checks.

        The wait polls with exponential backoff rather than blocking
        unboundedly: every miss rechecks the dispatcher, so a crashed
        agent task surfaces as a clean :class:`SyscallError` instead of
        hanging the client forever.  After any failure verdict, a final
        non-blocking drain catches a reply that raced in — a late
        answer always beats a fabricated error.
        """
        deadline = (time.monotonic() + self.watchdog
                    if self.watchdog is not None else None)
        delay = _POLL_MIN
        while True:
            try:
                return request.reply.get(timeout=delay)
            except queue.Empty:
                pass
            delay = min(delay * 2, _POLL_MAX)
            if not self._dispatcher.is_alive() and not request.claimed:
                # The accept loop is gone and never took this request:
                # no reply can ever come.  (A claimed request may still
                # be served by its service thread — keep waiting.)
                try:
                    return request.reply.get_nowait()
                except queue.Empty:
                    raise self._stall(
                        kind, "dispatcher dead before %r was served" % kind
                    ) from None
            if deadline is not None and time.monotonic() > deadline:
                try:
                    return request.reply.get_nowait()
                except queue.Empty:
                    raise self._stall(
                        kind,
                        "no reply to %r within %gs watchdog"
                        % (kind, self.watchdog),
                    ) from None

    def _rpc(self, kind, payload):
        request = _Request(kind, self.ctx, _marshal(payload))
        self._requests.put(request)
        status, value = self._await_reply(request, kind)
        self.ipc_round_trips += 1
        if status == "raise":
            raise value  # SyscallError, ProcessExit, ExecImage, ...
        return value

    def shutdown(self, timeout=5.0):
        """Stop the dispatcher (idempotent; service threads are daemons).

        Returns True when the agent task stopped (or had already
        stopped) within *timeout*; a stuck dispatcher returns False and
        is reported with a ``remote.stall`` event rather than silently
        ignored.
        """
        self._stopping = True
        if self._dispatcher.is_alive():
            self._requests.put(None)
            self._dispatcher.join(timeout=timeout)
            if self._dispatcher.is_alive():
                self._stall(
                    "shutdown",
                    "dispatcher still running %gs after shutdown" % timeout,
                )
                return False
        return True

    # -- the client-side stubs --------------------------------------------

    def attach(self, ctx, agentargv=()):
        self._bind(ctx)
        # The inner agent must register *this* wrapper's entry points in
        # the emulation vector, and must wrap fork children through the
        # wrapper too; splice the boilerplate seams before its init runs.
        inner = self.inner
        inner.register_interest_many = self.register_interest_many
        inner.register_signal_interest = self.register_signal_interest
        inner.unregister_interest = self.unregister_interest
        inner.unregister_signal_interest = self.unregister_signal_interest
        inner.wrap_fork_entry = self.wrap_fork_entry
        # Share one downcall-chain map so agents stacked *below* this one
        # still see the inner agent's downcalls.
        self._down = inner._down
        self._rpc("init", list(agentargv))

    def handle_syscall(self, number, args):
        # repro-lint: disable=F005 -- delegates by IPC: _rpc ships the
        # call to the inner agent's task in the other address space,
        # which does the real downcall (or raises) over there.
        return self._rpc("syscall", (number, args))

    # repro-lint: disable=L005 -- forwards by IPC: the inner agent's
    # handle_signal runs in the agent task and does the signal_up there.
    def handle_signal(self, signum, action):
        self._rpc("signal", (signum, action))

    def init_child(self):
        self._rpc("init_child", None)

    def exec_client(self, path, argv=None, envp=None):
        self._rpc("exec", (path, argv, envp))
        raise AssertionError("exec_client returned")
