"""The general agent loader program (paper Section 3.1.2).

``agentrun AGENT [agent args...] -- PROGRAM [args...]`` instantiates a
registered agent, attaches it to the current process, and execs the
unmodified client program through the agent's exec path so that the
interposition survives into the client.  Agents are compiled separately
from the loader — here, they are looked up in the agent registry.

Because the loader is itself an ordinary program, it can be run under
another agent, stacking interposition (paper Figure 1-3).
"""

from repro.programs.registry import program


@program("agentrun", install="/bin/agentrun")
def agentrun_main(sys, argv, envp):
    """agentrun(1): attach a named agent, then exec the client through it."""
    from repro.agents import AGENTS, load_all

    load_all()
    args = argv[1:]
    if not args:
        sys.print_err(
            "usage: agentrun agent [agent-args...] -- program [args...]\n"
            "agents: %s\n" % " ".join(sorted(AGENTS))
        )
        return 2
    name = args[0]
    if name not in AGENTS:
        sys.print_err("agentrun: unknown agent %r\n" % name)
        return 2
    rest = args[1:]
    if "--" in rest:
        split = rest.index("--")
        agentargv, target = rest[:split], rest[split + 1:]
    else:
        agentargv, target = [], rest
    if not target:
        sys.print_err("agentrun: no program given\n")
        return 2

    path = target[0]
    if "/" not in path:
        for prefix in ("/bin", "/usr/bin"):
            candidate = prefix + "/" + path
            if sys.exists(candidate):
                path = candidate
                break

    agent = AGENTS[name]()
    agent.attach(sys._ctx, agentargv)
    agent.exec_client(path, target, envp)
    raise AssertionError("exec_client returned")
