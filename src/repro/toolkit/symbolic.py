"""Layer 1: the symbolic system call layer.

Presents the system interface as a set of system call methods on a
system interface object (paper Section 2.3).  When an agent derived
from :class:`SymbolicSyscall` is attached, application system calls are
mapped into invocations of the ``sys_*`` methods of the agent object;
the mapping is performed by a toolkit-supplied derived version of the
numeric layer (:class:`~repro.toolkit.numeric.BSDNumericSyscall`).

Every method's default implementation takes the normal action for the
call — it makes the same call on the next level of the system interface
— so a derived agent overrides only the calls whose behaviour it wants
to change and inherits the rest (paper Goal 3: agent code proportional
to new functionality).
"""

from repro.kernel.sysent import bsd_numbers
from repro.toolkit.boilerplate import Agent
from repro.toolkit.numeric import BSDNumericSyscall


class SymbolicSyscall(Agent):
    """The system interface as one method per 4.3BSD system call."""

    OBS_LAYER = "symbolic"

    #: the numeric-layer class used to decode application calls; derived
    #: toolkits may substitute their own (the emulation agent does)
    NUMERIC_CLASS = BSDNumericSyscall

    def __init__(self):
        super().__init__()
        self._numeric = self.NUMERIC_CLASS(self)
        # The numeric object runs in the same address space with the same
        # per-process bindings and downward chaining as this agent.
        self._numeric._tls = self._tls
        self._numeric._down = self._down

    # -- agent lifecycle --------------------------------------------------

    def init(self, agentargv):
        """Default startup: interpose on the entire system interface."""
        self.register_all()

    def init_child(self):
        """Called in each newly forked client before it runs."""

    def register_all(self):
        """Interpose on every BSD call and on signal delivery."""
        self.register_interest_many(bsd_numbers())
        self.register_signal_interest()

    # -- boilerplate glue: route interception through the numeric layer ----

    def handle_syscall(self, number, args):
        return self._numeric.handle_syscall(number, args)

    def handle_signal(self, signum, action):
        self._numeric.handle_signal(signum, action)

    # -- upcalls -------------------------------------------------------------

    def signal_handler(self, signum, code, context):
        """An incoming signal; the default delivers it to the client."""
        self.signal_up(signum)

    def unknown_syscall(self, number, args, regs):
        """A call with no ``sys_*`` method; the default passes it down."""
        return self.syscall_down_numeric(number, args)

    # -- the 4.3BSD system calls ----------------------------------------------
    # Process management.

    def sys_exit(self, status=0):
        """Terminate the client with *status*; never returns."""
        return self.syscall_down("exit", status)

    def sys_fork(self, entry=None):
        """Create a child process; the toolkit wraps *entry* so the agent is bound (and ``init_child`` runs) before client code."""
        return self.syscall_down("fork", self.wrap_fork_entry(entry))

    def sys_vfork(self, entry=None):
        """As :meth:`sys_fork` (4.3BSD vfork shares the parent's address space only until exec, which the simulation need not model)."""
        return self.syscall_down("vfork", self.wrap_fork_entry(entry))

    def sys_wait(self):
        """Wait for a child to exit; returns ``(pid, status)``."""
        return self.syscall_down("wait")

    def sys_execve(self, path, argv=None, envp=None):
        """Replace the client's program image, keeping this agent
        interposed — the native call would wipe the agent out of the
        address space, so the toolkit reimplements exec from
        lower-level primitives (:meth:`~Agent.reexec`)."""
        return self.reexec(path, argv, envp)

    def sys_getpid(self):
        """Return the client's process id."""
        return self.syscall_down("getpid")

    def sys_getppid(self):
        """Return the parent's process id."""
        return self.syscall_down("getppid")

    def sys_getuid(self):
        """Return the real user id."""
        return self.syscall_down("getuid")

    def sys_geteuid(self):
        """Return the effective user id."""
        return self.syscall_down("geteuid")

    def sys_getgid(self):
        """Return the real group id."""
        return self.syscall_down("getgid")

    def sys_getegid(self):
        """Return the effective group id."""
        return self.syscall_down("getegid")

    def sys_setuid(self, uid):
        """Set the real and effective user ids (one-way unless root)."""
        return self.syscall_down("setuid", uid)

    def sys_getgroups(self):
        """Return the supplementary group list."""
        return self.syscall_down("getgroups")

    def sys_setgroups(self, groups):
        """Replace the supplementary group list (root only)."""
        return self.syscall_down("setgroups", groups)

    def sys_getpgrp(self):
        """Return the process group id."""
        return self.syscall_down("getpgrp")

    def sys_setpgrp(self, pid=0, pgrp=0):
        """Set the process group of *pid* (0 = self) to *pgrp*."""
        return self.syscall_down("setpgrp", pid, pgrp)

    def sys_umask(self, mask):
        """Set the file-creation mask; returns the previous mask."""
        return self.syscall_down("umask", mask)

    def sys_brk(self, addr):
        """Set the address-space break (tracked, not enforced)."""
        return self.syscall_down("brk", addr)

    def sys_getpagesize(self):
        """Return the system page size."""
        return self.syscall_down("getpagesize")

    def sys_gethostname(self):
        """Return the host name."""
        return self.syscall_down("gethostname")

    def sys_getdtablesize(self):
        """Return the size of the descriptor table."""
        return self.syscall_down("getdtablesize")

    def sys_ktrace(self, op, pid=0, arg=0):
        """Manipulate kernel tracing for a process (see ``repro.kernel.ktrace``)."""
        return self.syscall_down("ktrace", op, pid, arg)

    def sys_ktrace_read(self, limit=0):
        """Drain buffered kernel trace records; returns ``(records, dropped)``."""
        return self.syscall_down("ktrace_read", limit)

    # Descriptor operations.

    def sys_read(self, fd, count):
        """Read up to *count* bytes from *fd*; returns the data."""
        return self.syscall_down("read", fd, count)

    def sys_write(self, fd, data):
        """Write *data* to *fd*; returns the byte count written."""
        return self.syscall_down("write", fd, data)

    def sys_readv(self, fd, counts):
        """Scatter read: fill a vector of buffers sized by *counts*."""
        return self.syscall_down("readv", fd, counts)

    def sys_writev(self, fd, buffers):
        """Gather write: write each buffer in order; returns the total."""
        return self.syscall_down("writev", fd, buffers)

    def sys_close(self, fd):
        """Close descriptor *fd*."""
        return self.syscall_down("close", fd)

    def sys_lseek(self, fd, offset, whence):
        """Reposition *fd*'s offset; returns the new offset."""
        return self.syscall_down("lseek", fd, offset, whence)

    def sys_dup(self, fd):
        """Duplicate *fd* at the lowest free slot; shares the open file."""
        return self.syscall_down("dup", fd)

    def sys_dup2(self, fd, newfd):
        """Duplicate *fd* onto *newfd*, closing what was there."""
        return self.syscall_down("dup2", fd, newfd)

    def sys_pipe(self):
        """Create a pipe; returns ``(read_fd, write_fd)``."""
        return self.syscall_down("pipe")

    def sys_fcntl(self, fd, cmd, arg=0):
        """Descriptor control: F_DUPFD, close-on-exec and status flags."""
        return self.syscall_down("fcntl", fd, cmd, arg)

    def sys_ioctl(self, fd, request, arg=None):
        """Device control on *fd*."""
        return self.syscall_down("ioctl", fd, request, arg)

    def sys_fstat(self, fd):
        """Return the ``struct stat`` for the object behind *fd*."""
        return self.syscall_down("fstat", fd)

    def sys_fsync(self, fd):
        """Flush *fd*'s data to stable storage."""
        return self.syscall_down("fsync", fd)

    def sys_ftruncate(self, fd, length):
        """Set the length of the file behind *fd*."""
        return self.syscall_down("ftruncate", fd, length)

    def sys_fchmod(self, fd, mode):
        """Change the mode of the file behind *fd*."""
        return self.syscall_down("fchmod", fd, mode)

    def sys_fchown(self, fd, uid, gid):
        """Change the ownership of the file behind *fd* (root only)."""
        return self.syscall_down("fchown", fd, uid, gid)

    def sys_getdirentries(self, fd, count):
        """Read up to *count* directory entries from *fd*."""
        return self.syscall_down("getdirentries", fd, count)

    def sys_flock(self, fd, operation):
        """Apply or remove an advisory lock on the file behind *fd*."""
        return self.syscall_down("flock", fd, operation)

    def sys_select(self, timeout_usec):
        """Sleep for *timeout_usec* of virtual time (timeout-only select)."""
        return self.syscall_down("select", timeout_usec)

    # Pathname operations.

    def sys_open(self, path, flags=0, mode=0o666):
        """Open (optionally creating) *path*; returns a descriptor."""
        return self.syscall_down("open", path, flags, mode)

    def sys_link(self, path, newpath):
        """Create the hard link *newpath* to the object at *path*."""
        return self.syscall_down("link", path, newpath)

    def sys_unlink(self, path):
        """Remove the directory entry *path*."""
        return self.syscall_down("unlink", path)

    def sys_rename(self, path, newpath):
        """Atomically rename *path* to *newpath*."""
        return self.syscall_down("rename", path, newpath)

    def sys_chdir(self, path):
        """Change the working directory to *path*."""
        return self.syscall_down("chdir", path)

    def sys_chroot(self, path):
        """Confine the client's root directory to *path* (root only)."""
        return self.syscall_down("chroot", path)

    def sys_mknod(self, path, mode, dev=0):
        """Create a file, FIFO, or device node at *path*."""
        return self.syscall_down("mknod", path, mode, dev)

    def sys_chmod(self, path, mode):
        """Change the mode of the object at *path*."""
        return self.syscall_down("chmod", path, mode)

    def sys_chown(self, path, uid, gid):
        """Change the ownership of the object at *path* (root only)."""
        return self.syscall_down("chown", path, uid, gid)

    def sys_access(self, path, mode):
        """Check accessibility of *path* using the real user id."""
        return self.syscall_down("access", path, mode)

    def sys_stat(self, path):
        """Return the ``struct stat`` for *path*, following symlinks."""
        return self.syscall_down("stat", path)

    def sys_lstat(self, path):
        """Return the ``struct stat`` for *path* itself (no follow)."""
        return self.syscall_down("lstat", path)

    def sys_symlink(self, target, path):
        """Create the symbolic link *path* pointing at *target*."""
        return self.syscall_down("symlink", target, path)

    def sys_readlink(self, path, count=1024):
        """Return the target string of the symlink at *path*."""
        return self.syscall_down("readlink", path, count)

    def sys_truncate(self, path, length):
        """Set the length of the file at *path*."""
        return self.syscall_down("truncate", path, length)

    def sys_mkdir(self, path, mode=0o777):
        """Create the directory *path*."""
        return self.syscall_down("mkdir", path, mode)

    def sys_rmdir(self, path):
        """Remove the empty directory *path*."""
        return self.syscall_down("rmdir", path)

    def sys_utimes(self, path, atime_usec, mtime_usec):
        """Set the access and modification times of *path*."""
        return self.syscall_down("utimes", path, atime_usec, mtime_usec)

    def sys_sync(self):
        """Schedule filesystem writes to stable storage (a no-op here)."""
        return self.syscall_down("sync")

    # Signal operations.

    def sys_kill(self, pid, signum):
        """Send signal *signum* to *pid* (or a group for pid <= 0)."""
        return self.syscall_down("kill", pid, signum)

    def sys_killpg(self, pgrp, signum):
        """Send signal *signum* to every process in group *pgrp*."""
        return self.syscall_down("killpg", pgrp, signum)

    def sys_sigvec(self, signum, handler, mask=0):
        """Install a signal handler; returns the previous disposition."""
        return self.syscall_down("sigvec", signum, handler, mask)

    def sys_sigblock(self, mask):
        """OR *mask* into the blocked-signal mask; returns the old mask."""
        return self.syscall_down("sigblock", mask)

    def sys_sigsetmask(self, mask):
        """Replace the blocked-signal mask; returns the old mask."""
        return self.syscall_down("sigsetmask", mask)

    def sys_sigpause(self, mask):
        """Atomically set the mask and sleep until a signal arrives."""
        return self.syscall_down("sigpause", mask)

    def sys_alarm(self, seconds):
        """Arm a one-shot SIGALRM in *seconds*; returns time remaining."""
        return self.syscall_down("alarm", seconds)

    def sys_setitimer(self, which, interval_usec, value_usec):
        """Arm the real-time interval timer; returns the old setting."""
        return self.syscall_down("setitimer", which, interval_usec, value_usec)

    def sys_getitimer(self, which):
        """Return the interval timer's ``(interval, value)``."""
        return self.syscall_down("getitimer", which)

    # Time and accounting.

    def sys_gettimeofday(self):
        """Return the current time as a :class:`Timeval`."""
        return self.syscall_down("gettimeofday")

    def sys_settimeofday(self, sec, usec):
        """Step the system clock (root only)."""
        return self.syscall_down("settimeofday", sec, usec)

    def sys_getrusage(self, who=0):
        """Return resource usage for self (0) or children (-1)."""
        return self.syscall_down("getrusage", who)
