"""Layer 3: secondary objects — open directories.

:class:`Directory` is a derived :class:`~repro.toolkit.descriptors.OpenObject`
(directory operations are a special case of descriptor operations, as
the paper notes).  Its :meth:`Directory.next_direntry` encapsulates the
iteration of individual directory entries that is implicit in reading a
directory's contents: the default ``getdirentries`` is implemented *in
terms of* ``next_direntry``, so an agent that supplies a new
``next_direntry`` — the union agent's merged iteration, say — changes
what every directory-listing program sees.
"""

from repro.kernel.errno import EINVAL, EISDIR, SyscallError
from repro.kernel.ofile import SEEK_SET
from repro.toolkit.descriptors import OpenObject


class Directory(OpenObject):
    """An open directory with entry-at-a-time iteration."""

    #: how many entries to fetch per downcall in the default iterator
    BATCH = 16

    def __init__(self, dset, pathname=None):
        super().__init__(dset, kind="directory")
        self.pathname = pathname
        #: the entry produced by the last successful next_direntry()
        self.direntry = None
        self._buffer = []
        self._exhausted = False

    # -- iteration ------------------------------------------------------

    def next_direntry(self, fd):
        """Advance to the next entry; sets :attr:`direntry`.

        Returns 1 with ``direntry`` set on success, 0 at end of
        directory (``direntry`` is then ``None``).
        """
        if not self._buffer and not self._exhausted:
            batch = self.dset.syscall_down("getdirentries", fd, self.BATCH)
            if batch:
                self._buffer.extend(batch)
            else:
                self._exhausted = True
        if not self._buffer:
            self.direntry = None
            return 0
        self.direntry = self._buffer.pop(0)
        return 1

    def rewind(self, fd):
        """Restart iteration from the beginning of the directory."""
        self.dset.syscall_down("lseek", fd, 0, SEEK_SET)
        self._buffer = []
        self._exhausted = False
        self.direntry = None

    # -- descriptor operations, specialised for directories -----------------

    def read(self, fd, count):
        raise SyscallError(EISDIR, "read of a directory")

    def lseek(self, fd, offset, whence):
        if offset == 0 and whence == SEEK_SET:
            self.rewind(fd)
            return 0
        raise SyscallError(EINVAL, "directories only support rewind")

    def getdirentries(self, fd, count):
        """Read entries via :meth:`next_direntry` (and yes, that default
        iteration is itself accomplished via the underlying
        getdirentries implementation)."""
        if count <= 0:
            raise SyscallError(EINVAL)
        entries = []
        while len(entries) < count and self.next_direntry(fd):
            entries.append(self.direntry)
        return entries
