"""Layer 2, pathname side: the filesystem name space.

Two interrelated classes (paper Section 2.3):

* :class:`PathnameSet` — operations that affect the *set* of pathnames
  (create, remove, rename) and the pivotal :meth:`PathnameSet.getpn`,
  which resolves a pathname string to a :class:`Pathname` object.  Every
  pathname-using system call funnels through ``getpn()``, so an agent
  that supplies a new ``getpn()`` changes the treatment of *all*
  pathnames at one central point — that is how the union agent
  rearranges the name space and how dfs_trace collects every reference.
* :class:`Pathname` — a resolved pathname; its methods operate on the
  object the pathname references.

:class:`PathSymbolicSyscall` is the toolkit-supplied symbolic layer
derivative that routes the pathname-using system calls here (and the
descriptor-using ones to the descriptor layer it inherits).
"""

from repro.kernel import stat as st
from repro.toolkit.descriptors import DescriptorSet, DescSymbolicSyscall


class Pathname:
    """A resolved pathname (paper: ``pathname``).

    ``self.path`` is the string handed to the next-level interface; a
    derived ``getpn()`` may construct Pathnames whose ``path`` differs
    from what the application supplied.
    """

    def __init__(self, pset, path):
        self.pset = pset
        self.path = path

    def __repr__(self):
        return "<Pathname %r>" % self.path

    # -- operations on the referenced object (defaults: normal action) --

    def open(self, flags=0, mode=0o666):
        """Open this pathname; returns ``(fd, open_object)``.

        The open object's class depends on what was opened: directories
        get the set's ``DIRECTORY_CLASS`` (when one is configured) so the
        directory layer's iteration methods apply.
        """
        fd = self.pset.syscall_down("open", self.path, flags, mode)
        open_object = self.pset.make_open_object(self, fd)
        return fd, open_object

    def link(self, newpn):
        """Create *newpn* as a hard link to this object."""
        return self.pset.syscall_down("link", self.path, newpn.path)

    def unlink(self):
        """Remove this pathname's directory entry."""
        return self.pset.syscall_down("unlink", self.path)

    def rename(self, newpn):
        """Rename this object to *newpn*."""
        return self.pset.syscall_down("rename", self.path, newpn.path)

    def chdir(self):
        """Make this directory the working directory."""
        return self.pset.syscall_down("chdir", self.path)

    def chroot(self):
        """Confine the client's root to this directory."""
        return self.pset.syscall_down("chroot", self.path)

    def mknod(self, mode, dev=0):
        """Create a node (file/FIFO/device) at this pathname."""
        return self.pset.syscall_down("mknod", self.path, mode, dev)

    def chmod(self, mode):
        """Change this object's mode."""
        return self.pset.syscall_down("chmod", self.path, mode)

    def chown(self, uid, gid):
        """Change this object's ownership."""
        return self.pset.syscall_down("chown", self.path, uid, gid)

    def access(self, mode):
        """Check accessibility with the real user id."""
        return self.pset.syscall_down("access", self.path, mode)

    def stat(self):
        """Return this object's ``struct stat`` (follows links)."""
        return self.pset.syscall_down("stat", self.path)

    def lstat(self):
        """Return the ``struct stat`` of the name itself."""
        return self.pset.syscall_down("lstat", self.path)

    def readlink(self, count=1024):
        """Return the symlink target at this pathname."""
        return self.pset.syscall_down("readlink", self.path, count)

    def truncate(self, length):
        """Set this file's length."""
        return self.pset.syscall_down("truncate", self.path, length)

    def mkdir(self, mode=0o777):
        """Create this pathname as a directory."""
        return self.pset.syscall_down("mkdir", self.path, mode)

    def rmdir(self):
        """Remove this (empty) directory."""
        return self.pset.syscall_down("rmdir", self.path)

    def utimes(self, atime_usec, mtime_usec):
        """Set this object's access/modification times."""
        return self.pset.syscall_down("utimes", self.path, atime_usec, mtime_usec)

    def symlink_to(self, target):
        """Create this pathname as a symbolic link to *target*."""
        return self.pset.syscall_down("symlink", target, self.path)

    def execve(self, argv=None, envp=None):
        """Exec the object this pathname references, keeping the agent."""
        return self.pset.sym.reexec(self.path, argv, envp)


class PathnameSet(DescriptorSet):
    """The filesystem name space (paper: ``pathname_set``).

    Extends the descriptor set, as in the paper, because opening a
    pathname creates a descriptor.  Default method bodies resolve their
    pathname strings with ``getpn()`` and invoke the corresponding
    method on the resulting :class:`Pathname` — so agents can act at
    either granularity.
    """

    PATHNAME_CLASS = Pathname
    #: class used for open objects that turn out to be directories; left
    #: None unless the agent composes in the directory layer
    DIRECTORY_CLASS = None

    # -- resolution -----------------------------------------------------

    def getpn(self, path, flags=0):
        """Resolve a pathname string to a :class:`Pathname` object."""
        return self.PATHNAME_CLASS(self, path)

    def make_open_object(self, pathname, fd):
        """Build the open object for a successful open of *pathname*."""
        if self.DIRECTORY_CLASS is not None:
            record = self.syscall_down("fstat", fd)
            if st.S_ISDIR(record.st_mode):
                return self.DIRECTORY_CLASS(self, pathname)
        return self.OPEN_OBJECT_CLASS(self)

    # -- system calls with knowledge of pathnames ----------------------------

    def open(self, path, flags=0, mode=0o666):
        """open(): resolve, open via the Pathname, install the object."""
        fd, open_object = self.getpn(path, flags).open(flags, mode)
        self.install(fd, open_object)
        return fd

    def link(self, path, newpath):
        """link(): resolve both names, then link."""
        return self.getpn(path).link(self.getpn(newpath))

    def unlink(self, path):
        """unlink(): resolve, then remove."""
        return self.getpn(path).unlink()

    def rename(self, path, newpath):
        """rename(): resolve both names, then rename."""
        return self.getpn(path).rename(self.getpn(newpath))

    def chdir(self, path):
        """chdir(): resolve, then change directory."""
        return self.getpn(path).chdir()

    def chroot(self, path):
        """chroot(): resolve, then confine the root."""
        return self.getpn(path).chroot()

    def mknod(self, path, mode, dev=0):
        """mknod(): resolve, then create the node."""
        return self.getpn(path).mknod(mode, dev)

    def chmod(self, path, mode):
        """chmod(): resolve, then change the mode."""
        return self.getpn(path).chmod(mode)

    def chown(self, path, uid, gid):
        """chown(): resolve, then change ownership."""
        return self.getpn(path).chown(uid, gid)

    def access(self, path, mode):
        """access(): resolve, then check with the real uid."""
        return self.getpn(path).access(mode)

    def stat(self, path):
        """stat(): resolve (following links), then stat."""
        return self.getpn(path).stat()

    def lstat(self, path):
        """lstat(): resolve the name itself, then stat."""
        return self.getpn(path).lstat()

    def symlink(self, target, path):
        """symlink(): resolve the new name, then create the link."""
        return self.getpn(path).symlink_to(target)

    def readlink(self, path, count=1024):
        """readlink(): resolve, then read the target."""
        return self.getpn(path).readlink(count)

    def truncate(self, path, length):
        """truncate(): resolve, then set the length."""
        return self.getpn(path).truncate(length)

    def mkdir(self, path, mode=0o777):
        """mkdir(): resolve, then create the directory."""
        return self.getpn(path).mkdir(mode)

    def rmdir(self, path):
        """rmdir(): resolve, then remove the directory."""
        return self.getpn(path).rmdir()

    def utimes(self, path, atime_usec, mtime_usec):
        """utimes(): resolve, then set the times."""
        return self.getpn(path).utimes(atime_usec, mtime_usec)

    def execve(self, path, argv=None, envp=None):
        """execve(): resolve, then exec keeping the agent."""
        return self.getpn(path).execve(argv, envp)


class PathSymbolicSyscall(DescSymbolicSyscall):
    """Routes pathname-using system calls through the pathname layer."""

    OBS_LAYER = "pathname+descriptor"

    DESCRIPTOR_SET_CLASS = PathnameSet

    def __init__(self, pset=None):
        super().__init__(dset=pset)

    @property
    def pset(self):
        return self.dset

    def sys_open(self, path, flags=0, mode=0o666):
        return self.pset.open(path, flags, mode)

    def sys_link(self, path, newpath):
        return self.pset.link(path, newpath)

    def sys_unlink(self, path):
        return self.pset.unlink(path)

    def sys_rename(self, path, newpath):
        return self.pset.rename(path, newpath)

    def sys_chdir(self, path):
        return self.pset.chdir(path)

    def sys_chroot(self, path):
        return self.pset.chroot(path)

    def sys_mknod(self, path, mode, dev=0):
        return self.pset.mknod(path, mode, dev)

    def sys_chmod(self, path, mode):
        return self.pset.chmod(path, mode)

    def sys_chown(self, path, uid, gid):
        return self.pset.chown(path, uid, gid)

    def sys_access(self, path, mode):
        return self.pset.access(path, mode)

    def sys_stat(self, path):
        return self.pset.stat(path)

    def sys_lstat(self, path):
        return self.pset.lstat(path)

    def sys_symlink(self, target, path):
        return self.pset.symlink(target, path)

    def sys_readlink(self, path, count=1024):
        return self.pset.readlink(path, count)

    def sys_truncate(self, path, length):
        return self.pset.truncate(path, length)

    def sys_mkdir(self, path, mode=0o777):
        return self.pset.mkdir(path, mode)

    def sys_rmdir(self, path):
        return self.pset.rmdir(path)

    def sys_utimes(self, path, atime_usec, mtime_usec):
        return self.pset.utimes(path, atime_usec, mtime_usec)

    def sys_execve(self, path, argv=None, envp=None):
        return self.pset.execve(path, argv, envp)
