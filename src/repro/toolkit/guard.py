"""Agent fault containment: guarded agent stacks and trap-spine guard rails.

The paper's same-address-space placement (Sections 2.2, 3.5.1) buys its
speed by running agent code on the client's own thread, inside the
client's own trap.  The price is safety: a buggy agent handler that
raises something other than a :class:`~repro.kernel.errno.SyscallError`
unwinds straight through the trap spine into the client program, which
the kernel then records as a *client* crash — one bad agent takes the
whole interposed process tree with it.  "Making 'syscall' a privilege
rather than a right" argues the interposition layer must fail closed
with enforced policy rather than trust interposed code; this module is
that policy layer for the reproduction.

Two complementary mechanisms, one policy vocabulary:

* :class:`GuardedAgent` — a toolkit wrapper (stacking like
  :class:`~repro.toolkit.remote.SeparateSpaceAgent`) that interposes the
  *wrapper* in the emulation vector and catches the inner agent's
  unexpected exceptions at the boundary.
* :class:`GuardRail` — a machine-wide guard installed as
  ``kernel.guard`` (``Kernel(guard="fail-stop")``) that catches handler
  exceptions in the trap spine itself, covering agents that were never
  individually wrapped.  Containment behaves identically on every
  dispatch path — the plain trap, the observed trap, and the fast-path
  trap (whose interposed calls fall through to the same handler site).

Both convert an unexpected agent exception per :class:`GuardPolicy`:

``fail-stop``
    Deliver a fatal ``SIGSYS``-style kill to the *client process* — the
    classic "the agent is part of the client's TCB" stance.  The machine
    keeps running; only the faulting client dies (cleanly, through the
    normal exit path, not as a host-level panic).
``fail-open``
    Complete the call without the faulty agent: delegate past it to the
    next level of the system interface (a lower agent or the kernel),
    preserving availability at the price of the agent's semantics.
``quarantine``
    ``fail-open`` per fault until the agent crosses its fault budget
    (``max_faults``), then eject the agent from the interposition stack
    entirely — its emulation-vector entries are restored to whatever
    interface was below it — and emit an eviction event.

``SyscallError`` (the protocol's error convention) and the control
transfers ``ExecImage``/``ProcessExit`` always propagate untouched.

Pay-per-use, the repo's standing discipline: with no guard installed
(``kernel.guard is None``, no wrapper in the stack) every trap runs the
seed code path bit for bit; the guard hook in the trap spine is one
attribute load and ``is None`` test on *interposed* calls only.  All
guard actions emit ``guard.*`` events and counters through the
observability bus when it is enabled (see :mod:`repro.obs.events`).
"""

from repro.kernel import signals as sig
from repro.kernel.errno import SyscallError
from repro.kernel.faultsite import MachineCrash
from repro.kernel.proc import ExecImage, ProcessExit
from repro.kernel.sysent import name_of, number_of
from repro.obs import events as ev
from repro.toolkit.boilerplate import Agent

FAIL_STOP = "fail-stop"
FAIL_OPEN = "fail-open"
QUARANTINE = "quarantine"

#: the three containment policies, mildest consequence first
POLICIES = (FAIL_OPEN, QUARANTINE, FAIL_STOP)

#: default fault budget before a quarantine policy ejects the agent
DEFAULT_MAX_FAULTS = 3

_NR_EXECVE = number_of("execve")

#: exceptions that are protocol, not faults: they always pass through.
#: MachineCrash is the power cord being pulled — containment must never
#: swallow it, or a "contained" agent would outlive the machine.
PASS_THROUGH = (SyscallError, ExecImage, ProcessExit, MachineCrash)


class GuardPolicy:
    """One containment policy: the mode plus its quarantine fault budget."""

    __slots__ = ("mode", "max_faults")

    def __init__(self, mode=FAIL_STOP, max_faults=DEFAULT_MAX_FAULTS):
        if mode not in POLICIES:
            raise ValueError("unknown guard policy %r (want one of %s)"
                             % (mode, ", ".join(POLICIES)))
        if max_faults < 1:
            raise ValueError("max_faults must be >= 1")
        self.mode = mode
        self.max_faults = int(max_faults)

    @classmethod
    def parse(cls, spec):
        """Build a policy from *spec*.

        Accepts an existing :class:`GuardPolicy` (returned as is) or a
        string: a policy name (``"fail-stop"``, ``"fail-open"``,
        ``"quarantine"``), optionally with a fault budget after a colon
        (``"quarantine:5"``).
        """
        if isinstance(spec, cls):
            return spec
        if not isinstance(spec, str):
            raise TypeError("guard policy must be a GuardPolicy or str")
        text = spec.strip().lower()
        budget = DEFAULT_MAX_FAULTS
        if ":" in text:
            text, _, value = text.partition(":")
            budget = int(value)
        return cls(text.strip(), budget)

    def __repr__(self):
        if self.mode == QUARANTINE:
            return "<GuardPolicy %s:%d>" % (self.mode, self.max_faults)
        return "<GuardPolicy %s>" % self.mode


class GuardStats:
    """Containment counters shared by both guard mechanisms."""

    __slots__ = ("faults", "kills", "ejections")

    def __init__(self):
        self.faults = 0
        self.kills = 0
        self.ejections = 0

    def snapshot(self):
        """The counters as a plain dict (for reports and kernel_stats)."""
        return {"faults": self.faults, "kills": self.kills,
                "ejections": self.ejections}


def _note(kernel, proc, kind, name, detail):
    """Emit one guard event + counter through the obs bus (if enabled)."""
    obs = kernel.obs
    if obs is not None:
        if obs.metrics_on:
            obs.metrics.inc((kind, name))
        if obs.wants(proc):
            obs.emit(kind, proc, name, detail)


def _describe(exc):
    """A short single-line rendering of the contained exception."""
    text = repr(exc)
    if len(text) > 96:
        text = text[:96] + "..."
    return text


class GuardedAgent(Agent):
    """Run *inner* behind a containment boundary, per *policy*.

    The wrapper is itself a toolkit ``Agent``: it stacks above or below
    other agents like any other, and — like
    :class:`~repro.toolkit.remote.SeparateSpaceAgent` — splices the
    inner agent's registration seams so the emulation vector points at
    the *wrapper's* entry points.  Unexpected exceptions from the inner
    agent's handlers are therefore caught here, at the interposition
    boundary, before they can unwind into the client program.
    """

    OBS_LAYER = "guard"

    def __init__(self, inner, policy=FAIL_STOP, max_faults=None):
        super().__init__()
        self.inner = inner
        policy = GuardPolicy.parse(policy)
        if max_faults is not None:
            policy = GuardPolicy(policy.mode, max_faults)
        self.policy = policy
        self.stats = GuardStats()
        #: True once the inner agent has been ejected: the wrapper stays
        #: in the emulation vector but delegates everything straight down
        self.quarantined = False
        #: ``(call name, exception repr)`` of the most recent fault
        self.last_fault = None

    # -- attachment: splice the registration seams ------------------------

    def attach(self, ctx, agentargv=()):
        """Bind to *ctx* and attach the inner agent through the wrapper."""
        self._bind(ctx)
        inner = self.inner
        inner.register_interest_many = self.register_interest_many
        inner.register_signal_interest = self.register_signal_interest
        inner.unregister_interest = self.unregister_interest
        inner.unregister_signal_interest = self.unregister_signal_interest
        inner.wrap_fork_entry = self.wrap_fork_entry
        # Share one downcall-chain map so agents stacked below this one
        # still receive the inner agent's downcalls — and so containment
        # can delegate past the inner agent to exactly the layer below.
        self._down = inner._down
        try:
            inner.attach(ctx, agentargv)
        except PASS_THROUGH:
            raise
        except BaseException as exc:
            # A fault during the inner agent's own init.  fail-stop
            # kills the client as usual (inside _register_fault); the
            # open policies leave the wrapper attached but quarantined —
            # whatever interception the inner agent managed to register
            # simply passes through from now on.
            self._register_fault("init", exc)
            self._eject("init")

    # -- containment ------------------------------------------------------

    def _register_fault(self, name, exc):
        """Count one fault and apply the policy's immediate consequence.

        Under ``fail-stop`` this call does not return: the client
        process is terminated (cleanly, machine unaffected).  Under
        ``quarantine`` the agent is ejected once the budget is crossed.
        The caller then completes the interrupted operation one level
        down, whatever that means at its site.
        """
        ctx = self.ctx
        kernel = ctx.kernel
        self.stats.faults += 1
        self.last_fault = (name, _describe(exc))
        policy = self.policy
        _note(kernel, ctx.proc, ev.GUARD_FAULT, name,
              "%s: %s" % (policy.mode, _describe(exc)))
        if policy.mode == FAIL_STOP:
            self.stats.kills += 1
            _note(kernel, ctx.proc, ev.GUARD_KILL, name,
                  "agent fault: killing pid %d" % ctx.proc.pid)
            kernel.terminate(ctx.proc, sig.SIGSYS)
        if (policy.mode == QUARANTINE and not self.quarantined
                and self.stats.faults >= policy.max_faults):
            self._eject(name)

    def _eject(self, name):
        """Quarantine the inner agent: the wrapper passes through from
        here on, which removes the agent from the effective stack."""
        if self.quarantined:
            return
        self.quarantined = True
        self.stats.ejections += 1
        ctx = self.ctx
        _note(ctx.kernel, ctx.proc, ev.GUARD_QUARANTINE, name,
              "agent %s ejected after %d fault(s)"
              % (type(self.inner).__name__, self.stats.faults))

    # -- the interposed entry points --------------------------------------

    def handle_syscall(self, number, args):
        """One intercepted call, contained per the policy."""
        if self.quarantined:
            return self.syscall_down_numeric(number, args)
        inner = self.inner
        inner._bind(self.ctx)
        try:
            return inner.handle_syscall(number, args)
        except PASS_THROUGH:
            raise
        except BaseException as exc:
            self._register_fault(name_of(number), exc)
            # fail-open (and quarantine, before and after ejection):
            # finish the call without the faulty agent, one level down.
            return self.syscall_down_numeric(number, args)

    def handle_signal(self, signum, action):
        """One intercepted signal, contained per the policy."""
        if self.quarantined:
            self.signal_up(signum)
            return
        inner = self.inner
        inner._bind(self.ctx)
        try:
            inner.handle_signal(signum, action)
        except PASS_THROUGH:
            raise
        except BaseException as exc:
            self._register_fault(sig.signal_name(signum), exc)
            # Containment must not swallow the signal itself: forward it
            # to the application's disposition, as an absent agent would.
            self.signal_up(signum)

    def init_child(self):
        """Bind and notify the inner agent in a fresh fork child."""
        if self.quarantined:
            return
        inner = self.inner
        inner._bind(self.ctx)
        try:
            inner.init_child()
        except PASS_THROUGH:
            raise
        except BaseException as exc:
            self._register_fault("init_child", exc)

    def exec_client(self, path, argv=None, envp=None):
        """Exec through the inner agent, falling back to the toolkit's
        own exec reimplementation if the inner agent faults."""
        if self.quarantined:
            return self.reexec(path, argv, envp)
        inner = self.inner
        inner._bind(self.ctx)
        try:
            return inner.exec_client(path, argv, envp)
        except PASS_THROUGH:
            raise
        except BaseException as exc:
            self._register_fault(name_of(_NR_EXECVE), exc)
            # Perform exec's component steps ourselves, keeping the
            # wrapper (and any lower agents) interposed.
            return self.reexec(path, argv, envp)


class GuardRail:
    """Machine-wide trap-spine containment, installed as ``kernel.guard``.

    Where :class:`GuardedAgent` protects one agent by wrapping it, the
    guard rail protects the *machine* from every agent: the trap spine
    routes each emulation-vector handler invocation through
    :meth:`run_handler` (and each signal redirection through
    :meth:`run_signal`) whenever ``kernel.guard`` is set.  The same
    three policies apply; quarantine ejection is per *process* and per
    *agent* — the faulting agent's vector entries are restored to
    whatever interface was below them, so lower agents keep working.
    """

    def __init__(self, policy=FAIL_STOP, max_faults=None):
        policy = GuardPolicy.parse(policy)
        if max_faults is not None:
            policy = GuardPolicy(policy.mode, max_faults)
        self.policy = policy
        self.stats = GuardStats()
        #: fault count per contained agent instance (id -> count)
        self._fault_counts = {}
        #: agent instances this rail has ejected (ids)
        self._ejected = set()

    # -- the trap spine's entry points ------------------------------------

    def run_handler(self, ctx, handler, number, args):
        """Invoke an emulation-vector *handler*, containing its faults."""
        try:
            return handler(ctx, number, args)
        except PASS_THROUGH:
            raise
        except BaseException as exc:
            owner = getattr(handler, "__self__", None)
            self._register_fault(ctx, owner, name_of(number), exc)
            return self._delegate(ctx, owner, number, args)

    def run_signal(self, ctx, redirect, signum, action):
        """Invoke a signal redirection, containing its faults."""
        try:
            redirect(ctx, signum, action)
        except PASS_THROUGH:
            raise
        except BaseException as exc:
            owner = getattr(redirect, "__self__", None)
            self._register_fault(ctx, owner, sig.signal_name(signum), exc)
            # Deliver the signal as an absent agent would have.
            from repro.kernel.trap import deliver_signal_to_application
            deliver_signal_to_application(ctx.kernel, ctx.proc, signum)

    # -- containment ------------------------------------------------------

    def _register_fault(self, ctx, owner, name, exc):
        """Count one fault against *owner* and apply the policy.

        Under ``fail-stop`` this call does not return (the client is
        terminated).  Under ``quarantine`` the owning agent is ejected
        from the calling process once its budget is crossed.
        """
        kernel = ctx.kernel
        self.stats.faults += 1
        policy = self.policy
        _note(kernel, ctx.proc, ev.GUARD_FAULT, name,
              "%s: %s" % (policy.mode, _describe(exc)))
        if policy.mode == FAIL_STOP:
            self.stats.kills += 1
            _note(kernel, ctx.proc, ev.GUARD_KILL, name,
                  "agent fault: killing pid %d" % ctx.proc.pid)
            kernel.terminate(ctx.proc, sig.SIGSYS)
        if policy.mode == QUARANTINE and owner is not None:
            key = id(owner)
            count = self._fault_counts.get(key, 0) + 1
            self._fault_counts[key] = count
            if count >= policy.max_faults and key not in self._ejected:
                self._eject(ctx, owner, name)

    def _eject(self, ctx, owner, name):
        """Remove *owner*'s interception from the calling process.

        Each emulation-vector entry owned by the agent is restored to
        the interface below it (the agent's ``_down`` map) when known,
        or deleted outright — either way the calls reach what they
        reached before the agent registered.  The fast dispatch table is
        invalidated so the ejection is visible on every dispatch path.
        """
        self._ejected.add(id(owner))
        self.stats.ejections += 1
        proc = ctx.proc
        down = getattr(owner, "_down", {})
        vector = proc.emulation_vector
        entry = getattr(owner, "_emulation_entry", None)
        for number in [n for n, h in vector.items() if h == entry]:
            below = down.get(number)
            if below is not None:
                vector[number] = below
            else:
                del vector[number]
        if getattr(proc.signal_redirect, "__self__", None) is owner:
            proc.signal_redirect = None
        proc.fast_dispatch = None
        proc.compiled_dispatch = None
        _note(ctx.kernel, proc, ev.GUARD_QUARANTINE, name,
              "agent %s ejected from pid %d"
              % (type(owner).__name__, proc.pid))

    def _delegate(self, ctx, owner, number, args):
        """Complete the call one level below the faulty agent.

        When the handler's owning agent and its downcall chain are
        recoverable, the call goes to exactly the layer the agent would
        have called down to; otherwise it goes straight to the kernel
        through the htg downcall.
        """
        down = getattr(owner, "_down", None)
        if down is not None:
            below = down.get(number)
            if below is not None:
                return below(ctx, number, tuple(args))
        from repro.kernel.trap import htg_unix_syscall
        return htg_unix_syscall(ctx.kernel, ctx.proc, number, args)


def install_guard(kernel, spec):
    """Install a guard rail on *kernel* from a policy spec; returns it.

    *spec* is a :class:`GuardRail` (installed as is), a
    :class:`GuardPolicy`, or a policy string accepted by
    :meth:`GuardPolicy.parse`.  ``Kernel(guard=...)`` calls this at
    boot; it may equally be called on a running kernel.
    """
    if isinstance(spec, GuardRail):
        kernel.guard = spec
    else:
        kernel.guard = GuardRail(spec)
    return kernel.guard


def uninstall_guard(kernel):
    """Remove the guard rail; returns the detached rail (or None).

    After this the trap spine is back to the seed behaviour — agent
    exceptions propagate raw, exactly as before the guard existed.
    """
    rail = kernel.guard
    kernel.guard = None
    return rail
