"""Transparency analysis for compiled agent-stack dispatch.

:mod:`repro.kernel.compile` flattens a process's agent tower into one
closure per syscall number.  It can only do that for layers it can
*prove* add nothing beyond a fixed, replayable transform — this module
is that proof.  :func:`peel` inspects one emulation-vector handler and
answers: is this a toolkit boilerplate entry whose whole contribution
to *this* call number is (a) filling defaulted arguments, (b) the
numeric layer's errno/two-register marshalling, and (c) forwarding down
— or does agent code actually run here?

The grading ladder, from cheapest to deepest:

* **boilerplate passthrough** — ``handle_syscall`` is
  :meth:`Agent.handle_syscall`: the layer forwards the raw vector with
  no transform at all.
* **numeric passthrough** — ``handle_syscall`` is
  :meth:`NumericSyscall.handle_syscall` with the base ``syscall``:
  the layer contributes only the errno/two-register normalization.
* **symbolic forward** — the routed ``sys_*`` method is the base
  :class:`SymbolicSyscall` body: default-fill plus normalize, then
  forward under the same name with the same argument order.
* **descriptor/pathname routed** — the ``sys_*`` method routes through
  a :class:`DescriptorSet`/:class:`PathnameSet` whose every configured
  class is the toolkit default, so the table bookkeeping (materialised
  default descriptors, no-op refcounts) is observably invisible and the
  route reduces to the same downcall the symbolic body would make.

``fork``/``vfork``/``execve`` are *never* collapsed: their symbolic
bodies wrap the child entry or re-exec the image — real agent
machinery, not a forward.  Anything the analysis cannot positively
identify is opaque, and opaque is always correct: the compiler simply
keeps calling the original handler there.
"""

import inspect

from repro.kernel.sysent import SYSCALLS
from repro.toolkit.boilerplate import Agent
from repro.toolkit.descriptors import (
    DescriptorSet,
    DescSymbolicSyscall,
    OpenObject,
)
from repro.toolkit.numeric import BSDNumericSyscall, NumericSyscall
from repro.toolkit.pathnames import (
    Pathname,
    PathnameSet,
    PathSymbolicSyscall,
)
from repro.toolkit.symbolic import SymbolicSyscall

#: symbolic methods that do more than forward — fork/vfork wrap the
#: child entry so the agent rebinds in the child, execve runs the
#: toolkit's reexec — these always run as real agent code
NONLINEAR = frozenset({"fork", "vfork", "execve"})

#: descriptor-routed calls that act through a per-fd open object and
#: never touch the set-level table state (open/close/dup/pipe/fcntl do)
DESC_ROUTE = frozenset({
    "read", "write", "readv", "writev", "lseek", "fstat", "fsync",
    "ftruncate", "fchmod", "fchown", "ioctl", "getdirentries",
})

#: pathname-routed calls whose Pathname methods are pure forwards with
#: the argument vector preserved (open is set-level: it installs)
PATH_ROUTE = frozenset({
    "link", "unlink", "rename", "chdir", "chroot", "mknod", "chmod",
    "chown", "access", "stat", "lstat", "symlink", "readlink",
    "truncate", "mkdir", "rmdir", "utimes",
})


class LayerPlan:
    """What one transparent layer contributes to one call number.

    ``fill`` is ``None`` (no argument shaping) or a
    ``(required, nparams, defaults)`` triple replaying the ``sys_*``
    signature's default-filling; ``normalize`` says the layer passes
    results through the numeric marshalling (errno-only SyscallError,
    two-register tupling).
    """

    __slots__ = ("agent", "fill", "normalize")

    def __init__(self, agent, fill, normalize):
        self.agent = agent
        self.fill = fill
        self.normalize = normalize


#: function -> fill spec; signatures are immutable, so memoize globally
_FILL_CACHE = {}


def fill_for(func):
    """The ``(required, nparams, defaults)`` spec of a ``sys_*`` body.

    Returns ``None`` for signatures the replay cannot model (keyword-
    only, varargs, defaults before positionals) — the caller treats
    that as opaque.  ``self`` is dropped; every remaining parameter must
    be plain positional-or-keyword, with defaults only at the tail.
    """
    try:
        return _FILL_CACHE[func]
    except KeyError:
        pass
    try:
        sig = inspect.signature(func)
    except (TypeError, ValueError):
        _FILL_CACHE[func] = None
        return None
    params = list(sig.parameters.values())[1:]
    defaults = []
    required = 0
    spec = None
    for param in params:
        if param.kind is not inspect.Parameter.POSITIONAL_OR_KEYWORD:
            break
        if param.default is inspect.Parameter.empty:
            if defaults:
                break
            required += 1
        else:
            defaults.append(param.default)
    else:
        spec = (required, required + len(defaults), tuple(defaults))
    _FILL_CACHE[func] = spec
    return spec


def peel_entry_method(handler, number):
    """Grade an *opaque-method* layer for direct invocation.

    The ``sys_*`` body is real agent code — nothing to peel — but when
    the machinery around it is stock (boilerplate entry, symbolic
    handle, stock numeric layer), the compiler may bind the context and
    call the bound method directly, replaying the default-fill and the
    numeric normalization itself and skipping the per-call tower walk
    above the method.  Returns ``(agent, method, fill)`` or ``None``.

    Unlike :func:`peel`, the downcall methods need no check: the method
    runs verbatim, so its downcalls go through the agent's own
    machinery exactly as the tower's would.
    """
    if getattr(handler, "__func__", None) is not Agent._emulation_entry:
        return None
    agent = handler.__self__
    cls = type(agent)
    if cls.handle_syscall is not SymbolicSyscall.handle_syscall:
        return None
    numeric = getattr(agent, "_numeric", None)
    if (type(numeric) is not BSDNumericSyscall
            or numeric.symbolic is not agent
            or numeric._down is not agent._down):
        return None
    method = numeric._methods.get(number)
    if method is None:
        return None
    fill = fill_for(method.__func__)
    if fill is None:
        return None
    return (agent, method, fill)


def _routing_transparent(agent, route):
    """True when *agent*'s descriptor/pathname set is all toolkit-default.

    With every configured class the base one, the set's bookkeeping is
    observably invisible for the routed calls: ``lookup`` materialises
    default descriptors whose operations are pure forwards, refcounts
    guard a no-op ``last_close``, and ``getpn`` builds base
    :class:`Pathname` objects whose methods forward verbatim.
    """
    dset = getattr(agent, "dset", None)
    kind = type(dset)
    if kind is DescriptorSet:
        pathish = False
    elif kind is PathnameSet:
        pathish = True
    else:
        return False
    if route == "path" and not pathish:
        return False
    if dset.sym is not agent or dset.OPEN_OBJECT_CLASS is not OpenObject:
        return False
    if pathish and (dset.PATHNAME_CLASS is not Pathname
                    or dset.DIRECTORY_CLASS is not None):
        return False
    return True


def peel(handler, number):
    """Grade one emulation-vector *handler* for call *number*.

    Returns a :class:`LayerPlan` when the layer is provably transparent
    for this number, else ``None`` (opaque: real agent code runs).
    """
    if getattr(handler, "__func__", None) is not Agent._emulation_entry:
        return None
    agent = handler.__self__
    cls = type(agent)
    # Downcall routing must be the stock boilerplate, or the "forward"
    # this analysis assumes is not what actually happens.
    if (cls.syscall_down_numeric is not Agent.syscall_down_numeric
            or cls.syscall_down is not Agent.syscall_down):
        return None
    handle = cls.handle_syscall
    if handle is Agent.handle_syscall:
        return LayerPlan(agent, None, False)
    if handle is NumericSyscall.handle_syscall:
        if (cls.syscall is not NumericSyscall.syscall
                or cls.syscall_down_raw is not NumericSyscall.syscall_down_raw):
            return None
        return LayerPlan(agent, None, True)
    if handle is not SymbolicSyscall.handle_syscall:
        return None
    numeric = getattr(agent, "_numeric", None)
    if (type(numeric) is not BSDNumericSyscall
            or numeric.symbolic is not agent
            or numeric._down is not agent._down):
        return None
    method = numeric._methods.get(number)
    if method is None:
        # No sys_* body: the stock unknown_syscall is a raw forward.
        if cls.unknown_syscall is not SymbolicSyscall.unknown_syscall:
            return None
        return LayerPlan(agent, None, True)
    entry = SYSCALLS.get(number)
    if entry is None or entry.name in NONLINEAR:
        return None
    func = method.__func__
    base = getattr(SymbolicSyscall, "sys_" + entry.name, None)
    if func is base:
        fill = fill_for(func)
        if fill is None:
            return None
        return LayerPlan(agent, fill, True)
    # Descriptor routing reads the set's mutable per-fd table, so any
    # agent code anywhere on the class could have installed a custom
    # open object: only the stock toolkit classes are provably clean.
    if (entry.name in DESC_ROUTE
            and func is getattr(DescSymbolicSyscall, "sys_" + entry.name, None)
            and cls in (DescSymbolicSyscall, PathSymbolicSyscall)
            and _routing_transparent(agent, "desc")):
        fill = fill_for(func)
        if fill is not None:
            return LayerPlan(agent, fill, True)
        return None
    # Pathname routing never consults the table — getpn builds a fresh
    # Pathname per call — so a subclassed agent with the base sys_*
    # body stays transparent as long as the set itself is stock.
    if (entry.name in PATH_ROUTE
            and func is getattr(PathSymbolicSyscall, "sys_" + entry.name, None)
            and _routing_transparent(agent, "path")):
        fill = fill_for(func)
        if fill is not None:
            return LayerPlan(agent, fill, True)
    return None
