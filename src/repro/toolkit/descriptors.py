"""Layer 2, descriptor side: the descriptor name space and open objects.

Three interrelated classes, exactly as in the paper:

* :class:`DescriptorSet` — operations that affect the *set* of
  descriptors (open slots, dup, pipe, close) plus the routing state:
  one descriptor table per client process, copied on fork.
* :class:`Descriptor` — one active descriptor: a name (the fd number)
  for a reference-counted open object.
* :class:`OpenObject` — the object a descriptor references.  Shared by
  descriptors created through ``dup``/``fork``; reclaimed on last close.
  Default operations make the same call on the next-level interface.

:class:`DescSymbolicSyscall` is the toolkit-supplied symbolic layer
derivative that maps descriptor-using system calls onto these objects.
"""

from repro.kernel.errno import EBADF, SyscallError
from repro.kernel.ofile import F_DUPFD
from repro.toolkit.symbolic import SymbolicSyscall


class OpenObject:
    """A reference-counted open object (paper: ``open_object``).

    Operations receive the descriptor number they were invoked through,
    because several descriptors — possibly in several processes — may
    name this one object.
    """

    def __init__(self, dset, kind="file"):
        self.dset = dset
        self.kind = kind
        self.refcount = 0

    # -- reference management ------------------------------------------

    def incref(self):
        """Add a reference (a descriptor now names this object)."""
        self.refcount += 1
        return self

    def decref(self):
        """Drop a reference; the last one triggers :meth:`last_close`."""
        assert self.refcount > 0
        self.refcount -= 1
        if self.refcount == 0:
            self.last_close()

    def last_close(self):
        """The final descriptor naming this object was closed."""

    # -- operations (defaults take the normal action) ----------------------

    def read(self, fd, count):
        """Read *count* bytes through descriptor *fd*; default takes the normal action."""
        return self.dset.syscall_down("read", fd, count)

    def write(self, fd, data):
        """Write *data* through descriptor *fd*; default takes the normal action."""
        return self.dset.syscall_down("write", fd, data)

    def readv(self, fd, counts):
        """Scatter read, built on :meth:`read` so derived objects that
        change read behaviour cover the vector forms automatically."""
        if (type(self).read is OpenObject.read
                and self.dset.ctx.kernel.fastpaths.compiled):
            # Stock reads reduce to the next level's own vectored call:
            # one downcall — one compiled chain, when one is baked —
            # instead of one per iovec.  The kernel's sys_readv applies
            # the same short-read cutoff, so the buffers are identical;
            # only block accounting coarsens (one ru_inblock per vector
            # rather than per fragment — see docs/PERFORMANCE.md).
            return self.dset.syscall_down("readv", fd, counts)
        buffers = []
        for count in counts:
            data = self.read(fd, count)
            buffers.append(data)
            if len(data) < count:
                break
        return buffers

    def writev(self, fd, buffers):
        """Gather write, built on :meth:`write` (see :meth:`readv`)."""
        if (type(self).write is OpenObject.write
                and self.dset.ctx.kernel.fastpaths.compiled):
            return self.dset.syscall_down("writev", fd, buffers)
        return sum(self.write(fd, buffer) for buffer in buffers)

    def lseek(self, fd, offset, whence):
        """Reposition the shared offset; default takes the normal action."""
        return self.dset.syscall_down("lseek", fd, offset, whence)

    def fstat(self, fd):
        """Return the object's ``struct stat``; default takes the normal action."""
        return self.dset.syscall_down("fstat", fd)

    def fsync(self, fd):
        """Flush the object to stable storage; default takes the normal action."""
        return self.dset.syscall_down("fsync", fd)

    def ftruncate(self, fd, length):
        """Set the object's length; default takes the normal action."""
        return self.dset.syscall_down("ftruncate", fd, length)

    def fchmod(self, fd, mode):
        """Change the object's mode; default takes the normal action."""
        return self.dset.syscall_down("fchmod", fd, mode)

    def fchown(self, fd, uid, gid):
        """Change the object's ownership; default takes the normal action."""
        return self.dset.syscall_down("fchown", fd, uid, gid)

    def ioctl(self, fd, request, arg):
        """Device control on the object; default takes the normal action."""
        return self.dset.syscall_down("ioctl", fd, request, arg)

    def getdirentries(self, fd, count):
        """Read directory entries; default takes the normal action."""
        return self.dset.syscall_down("getdirentries", fd, count)

    def close_slot(self, fd):
        """Release the underlying kernel descriptor slot for *fd*."""
        return self.dset.syscall_down("close", fd)


class Descriptor:
    """One active descriptor (paper: ``descriptor``)."""

    __slots__ = ("fd", "open_object")

    # repro-lint: disable=L003 -- the constructor *takes ownership*: this
    # reference is released by DescriptorSet.drop/release_process.
    def __init__(self, fd, open_object):
        self.fd = fd
        self.open_object = open_object.incref()

    # Delegation: a descriptor's operations act on its open object.

    def read(self, count):
        """Read through this descriptor's open object."""
        return self.open_object.read(self.fd, count)

    def write(self, data):
        """Write through this descriptor's open object."""
        return self.open_object.write(self.fd, data)

    def readv(self, counts):
        """Scatter read through this descriptor's open object."""
        return self.open_object.readv(self.fd, counts)

    def writev(self, buffers):
        """Gather write through this descriptor's open object."""
        return self.open_object.writev(self.fd, buffers)

    def lseek(self, offset, whence):
        """Seek through this descriptor's open object."""
        return self.open_object.lseek(self.fd, offset, whence)

    def fstat(self):
        """Stat through this descriptor's open object."""
        return self.open_object.fstat(self.fd)

    def fsync(self):
        """Sync through this descriptor's open object."""
        return self.open_object.fsync(self.fd)

    def ftruncate(self, length):
        """Truncate through this descriptor's open object."""
        return self.open_object.ftruncate(self.fd, length)

    def fchmod(self, mode):
        """Chmod through this descriptor's open object."""
        return self.open_object.fchmod(self.fd, mode)

    def fchown(self, uid, gid):
        """Chown through this descriptor's open object."""
        return self.open_object.fchown(self.fd, uid, gid)

    def ioctl(self, request, arg):
        """Ioctl through this descriptor's open object."""
        return self.open_object.ioctl(self.fd, request, arg)

    def getdirentries(self, count):
        """List entries through this descriptor's open object."""
        return self.open_object.getdirentries(self.fd, count)


class DescriptorSet:
    """The descriptor name space (paper: ``descriptor_set``).

    Keeps one ``{fd: Descriptor}`` table per client process.  Descriptors
    the agent never saw opened (stdin/stdout/stderr inherited from the
    loader, say) materialise on first use with default open objects, so
    partial knowledge is never fatal.
    """

    OPEN_OBJECT_CLASS = OpenObject

    def __init__(self):
        self.sym = None
        self._tables = {}

    def bind(self, sym):
        """Attach to the symbolic router that feeds this set."""
        self.sym = sym

    # -- downcall plumbing (via the router's boilerplate) ------------------

    def syscall_down(self, name, *args):
        """Make a call on the next-level interface via the router."""
        return self.sym.syscall_down(name, *args)

    @property
    def ctx(self):
        return self.sym.ctx

    # -- table management ---------------------------------------------------

    def table(self):
        """The current process's ``{fd: Descriptor}`` table."""
        pid = self.ctx.proc.pid
        table = self._tables.get(pid)
        if table is None:
            table = {}
            self._tables[pid] = table
        return table

    def lookup(self, fd):
        """The Descriptor for *fd*, materialising a default if unseen."""
        table = self.table()
        desc = table.get(fd)
        if desc is None:
            desc = Descriptor(fd, self.OPEN_OBJECT_CLASS(self))
            table[fd] = desc
        return desc

    # repro-lint: disable=L003 -- releases only the *replaced* entry's
    # reference; the new reference is taken by Descriptor.__init__.
    def install(self, fd, open_object):
        """Bind *fd* to *open_object*, dropping any stale entry."""
        table = self.table()
        old = table.pop(fd, None)
        if old is not None:
            old.open_object.decref()
        desc = Descriptor(fd, open_object)
        table[fd] = desc
        return desc

    # repro-lint: disable=L003 -- the release point pairing
    # Descriptor.__init__'s incref (descriptor forgotten).
    def drop(self, fd):
        """Forget *fd*, releasing its open-object reference."""
        old = self.table().pop(fd, None)
        if old is not None:
            old.open_object.decref()

    def fork_child_table(self, parent_pid, child_pid):
        """Duplicate the parent's table for a new child (shared objects)."""
        parent = self._tables.get(parent_pid, {})
        self._tables[child_pid] = {
            fd: Descriptor(fd, desc.open_object) for fd, desc in parent.items()
        }

    # repro-lint: disable=L003 -- exit-time bulk release pairing each
    # Descriptor.__init__ incref the dead process still held.
    def release_process(self, pid):
        """Release every descriptor a process held (at its exit)."""
        table = self._tables.pop(pid, None)
        if table:
            for desc in table.values():
                desc.open_object.decref()

    # -- set-level system calls -----------------------------------------------

    def dup(self, fd):
        """dup(): a new descriptor naming the same open object."""
        desc = self.lookup(fd)
        newfd = self.syscall_down("dup", fd)
        self.install(newfd, desc.open_object)
        return newfd

    def dup2(self, fd, newfd):
        """dup2(): bind *newfd* to *fd*'s open object."""
        desc = self.lookup(fd)
        result = self.syscall_down("dup2", fd, newfd)
        if newfd != fd:
            self.install(newfd, desc.open_object)
        return result

    def fcntl(self, fd, cmd, arg=0):
        """fcntl(): descriptor control; F_DUPFD shares the object."""
        desc = self.lookup(fd)
        result = self.syscall_down("fcntl", fd, cmd, arg)
        if cmd == F_DUPFD:
            self.install(result, desc.open_object)
        return result

    def close(self, fd):
        """close(): release the slot and its object reference."""
        desc = self.table().get(fd)
        if desc is None:
            # Unseen descriptor: take the normal action only.
            return self.syscall_down("close", fd)
        result = desc.open_object.close_slot(fd)
        self.drop(fd)
        return result

    def pipe(self):
        """pipe(): two fresh descriptors with pipe open objects."""
        rfd, wfd = self.syscall_down("pipe")
        self.install(rfd, self.OPEN_OBJECT_CLASS(self, kind="pipe"))
        self.install(wfd, self.OPEN_OBJECT_CLASS(self, kind="pipe"))
        return (rfd, wfd)


class DescSymbolicSyscall(SymbolicSyscall):
    """Routes descriptor-using system calls through the descriptor layer.

    The 48-call descriptor subset of the interface is mapped onto
    :class:`Descriptor`/:class:`OpenObject` methods; everything else
    inherits the plain symbolic behaviour.
    """

    OBS_LAYER = "descriptor"

    DESCRIPTOR_SET_CLASS = DescriptorSet

    def __init__(self, dset=None):
        super().__init__()
        self.dset = dset if dset is not None else self.DESCRIPTOR_SET_CLASS()
        self.dset.bind(self)

    # fork/exit bookkeeping so per-process tables track reality

    def init_child(self):
        """Copy the parent's descriptor table for a new child."""
        super().init_child()
        ppid = self.syscall_down("getppid")
        pid = self.syscall_down("getpid")
        self.dset.fork_child_table(ppid, pid)

    def sys_exit(self, status=0):
        """Release the exiting process's table, then exit."""
        self.dset.release_process(self.syscall_down("getpid"))
        return super().sys_exit(status)

    def exec_close_descriptor(self, fd):
        """Exec teardown: drop table state along with the slot."""
        self.dset.drop(fd)
        return self.syscall_down("close", fd)

    # descriptor-using calls

    def sys_read(self, fd, count):
        return self.dset.lookup(fd).read(count)

    def sys_write(self, fd, data):
        return self.dset.lookup(fd).write(data)

    def sys_readv(self, fd, counts):
        return self.dset.lookup(fd).readv(counts)

    def sys_writev(self, fd, buffers):
        return self.dset.lookup(fd).writev(buffers)

    def sys_lseek(self, fd, offset, whence):
        return self.dset.lookup(fd).lseek(offset, whence)

    def sys_fstat(self, fd):
        return self.dset.lookup(fd).fstat()

    def sys_fsync(self, fd):
        return self.dset.lookup(fd).fsync()

    def sys_ftruncate(self, fd, length):
        return self.dset.lookup(fd).ftruncate(length)

    def sys_fchmod(self, fd, mode):
        return self.dset.lookup(fd).fchmod(mode)

    def sys_fchown(self, fd, uid, gid):
        return self.dset.lookup(fd).fchown(uid, gid)

    def sys_ioctl(self, fd, request, arg=None):
        return self.dset.lookup(fd).ioctl(request, arg)

    def sys_getdirentries(self, fd, count):
        return self.dset.lookup(fd).getdirentries(count)

    def sys_close(self, fd):
        return self.dset.close(fd)

    def sys_dup(self, fd):
        return self.dset.dup(fd)

    def sys_dup2(self, fd, newfd):
        return self.dset.dup2(fd, newfd)

    def sys_fcntl(self, fd, cmd, arg=0):
        return self.dset.fcntl(fd, cmd, arg)

    def sys_pipe(self):
        return self.dset.pipe()
