"""The boilerplate layers: everything Mach- and machine-specific.

These layers perform agent invocation, system call interception,
incoming signal handling, downcalls on behalf of the agent, and signal
delivery to applications running under agent code (paper Section 2.3).
They hide which interception mechanism is used, how downcalls bypass it,
and whether the agent shares the client's address space.  Agents do not
normally use this module directly — they derive from the numeric or
symbolic layers, which are built on it.
"""

import threading
import time

from repro.kernel import signals as sig
from repro.kernel.errno import EBADF, SyscallError
from repro.kernel.ofile import F_GETFD, FD_CLOEXEC
from repro.kernel.compile import note_down_mutation
from repro.kernel.sysent import name_of, number_of
from repro.kernel.trap import deliver_signal_to_application

_NR_TASK_SET_EMULATION = number_of("task_set_emulation")
_NR_TASK_GET_EMULATION = number_of("task_get_emulation")
_NR_TASK_SET_SIGNAL_REDIRECT = number_of("task_set_signal_redirect")
_NR_IMAGE_HEADER = number_of("image_header")
_NR_TASK_GET_DESCRIPTORS = number_of("task_get_descriptors")
_NR_JUMP_TO_IMAGE = number_of("jump_to_image")
_NR_FCNTL = number_of("fcntl")
_NR_CLOSE = number_of("close")
_NR_SIGVEC = number_of("sigvec")
_NR_GETDTABLESIZE = number_of("getdtablesize")


class Agent:
    """Base class for every interposition agent.

    One agent instance may serve several client processes (the processes
    created under it by fork — paper Figure 1-4).  The boilerplate keeps
    a per-thread binding from the executing process to its user context,
    hiding that multiplicity from higher layers: within any handler,
    ``self.ctx`` is the context of the process whose call is being
    handled.
    """

    #: which toolkit layer this agent is written at, for the observability
    #: registry's per-layer cost attribution (each layer class overrides)
    OBS_LAYER = "boilerplate"

    def __init__(self):
        self._tls = threading.local()
        #: the previous instance of the system interface for each call
        #: number this agent intercepts (None means the kernel): agents
        #: stack by chaining their downcalls through this map
        self._down = {}
        #: flattened downcall chains baked by repro.kernel.compile
        #: (number → closure); ``None`` until a compiled build walks
        #: through this agent, reset on any ``_down`` change
        self._down_compiled = None

    # -- context plumbing (hidden mechanism) -----------------------------

    @property
    def ctx(self):
        """The user context of the process currently executing agent code."""
        return self._tls.ctx

    def _bind(self, ctx):
        self._tls.ctx = ctx

    def attach(self, ctx, agentargv=()):
        """Agent invocation: bind to a process and run agent ``init``."""
        self._bind(ctx)
        self.init(list(agentargv))

    # -- hooks for agent layers to override ---------------------------------

    def init(self, agentargv):
        """Agent-specific startup; register interception here."""

    def init_child(self):
        """Called in a newly forked child before it runs any client code."""

    def handle_syscall(self, number, args):
        """An intercepted call (already bound to the calling context)."""
        return self.syscall_down_numeric(number, args)

    def handle_signal(self, signum, action):
        """An intercepted incoming signal; default forwards it upward."""
        self.signal_up(signum)

    # -- interception registration ----------------------------------------------

    def _emulation_entry(self, ctx, number, args):
        self._bind(ctx)
        kernel = ctx.kernel
        prof = kernel.profiler
        if prof is not None:
            # The sampling profiler's agent frame: any virtual time the
            # kernel advances while this handler (and its downcalls)
            # run is attributed under agent:<layer>.  The same prof
            # reference pops in ``finally`` so push/pop always pair,
            # even if the profiler detaches mid-handler.
            prof.push(ctx.proc.pid, "agent:" + self.OBS_LAYER)
        try:
            obs = kernel.obs
            if obs is None:
                return self.handle_syscall(number, args)
            # Attribute the agent handler's *host* time to this agent's
            # toolkit layer — the virtual clock cannot see agent Python
            # code, so wall-clock is the honest measure (it is also what
            # bench_ablation_layers measures from outside).
            start = time.perf_counter()
            try:
                return self.handle_syscall(number, args)
            finally:
                usec = (time.perf_counter() - start) * 1e6
                obs.layer_usec(self.OBS_LAYER, name_of(number), usec)
        finally:
            if prof is not None:
                prof.pop(ctx.proc.pid)

    def _signal_entry(self, ctx, signum, action):
        self._bind(ctx)
        self.handle_signal(signum, action)

    def register_interest(self, number):
        """Intercept system call *number* for the bound process."""
        self.register_interest_many([number])

    def register_interest_range(self, low, high):
        """Intercept every call number in ``[low, high]``."""
        self.register_interest_many(range(low, high + 1))

    def register_interest_many(self, numbers):
        """Intercept each listed call number, chaining below any agent already interposed on it."""
        numbers = list(numbers)
        ctx = self.ctx
        for number in numbers:
            previous = ctx.htg(_NR_TASK_GET_EMULATION, number)
            if previous is not None and previous is not self._emulation_entry:
                self._down[number] = previous
        # The downcall chain changed: retire every compiled chain that
        # baked the old one — this agent serves every process forked
        # under it, so a local reset is not enough (see
        # repro.kernel.compile.DOWN_EPOCH).
        self._down_compiled = None
        note_down_mutation()
        ctx.htg(_NR_TASK_SET_EMULATION, numbers, self._emulation_entry)

    def unregister_interest(self, numbers):
        """Stop intercepting the listed call numbers."""
        self._down_compiled = None
        note_down_mutation()
        self.ctx.htg(_NR_TASK_SET_EMULATION, list(numbers), None)

    def register_signal_interest(self):
        """Route the process's incoming signals through this agent."""
        self.ctx.htg(_NR_TASK_SET_SIGNAL_REDIRECT, self._signal_entry)

    def unregister_signal_interest(self):
        """Stop receiving signal upcalls."""
        self.ctx.htg(_NR_TASK_SET_SIGNAL_REDIRECT, None)

    # -- calling down to the next-level system interface -------------------------

    def syscall_down(self, name, *args):
        """Make system call *name* on the next-level system interface.

        If another agent was interposed below this one, the call goes to
        that agent's handler; otherwise it goes to the kernel via
        ``htg_unix_syscall`` (bypassing this agent's own interception).
        """
        return self.syscall_down_numeric(number_of(name), args)

    def syscall_down_numeric(self, number, args):
        """Downcall by raw number with an argument vector."""
        compiled = self._down_compiled
        if compiled is not None:
            flat = compiled.get(number)
            if flat is not None:
                # A baked chain for the stack below this agent; it
                # stands down by itself under recorder/obs/dfstrace or
                # a stale epoch (see repro.kernel.compile._make_down).
                return flat(self.ctx, args)
        below = self._down.get(number)
        if below is not None:
            return below(self.ctx, number, tuple(args))
        return self.ctx.htg(number, *args)

    # -- sending signals up to the application --------------------------------------

    def exec_close_descriptor(self, fd):
        """Close one descriptor during exec teardown (layers with
        descriptor state override this to stay consistent)."""
        return self.syscall_down_numeric(_NR_CLOSE, (fd,))

    def signal_up(self, signum):
        """Deliver *signum* to the application's own disposition."""
        ctx = self.ctx
        deliver_signal_to_application(ctx.kernel, ctx.proc, signum)

    # -- fork and exec support ----------------------------------------------------------

    def wrap_fork_entry(self, entry):
        """Wrap a fork child entry so the agent is bound (and told) in
        the child before any client code runs."""

        def child_entry(ctx):
            self._bind(ctx)
            self.init_child()
            return entry(ctx) if entry is not None else 0

        return child_entry

    def reexec(self, path, argv=None, envp=None):
        """The toolkit's reimplementation of ``execve``.

        The native call would replace the whole address space — agent
        included — and clear the emulation vector.  Instead the toolkit
        performs exec's component steps individually (paper Section
        3.5.1): validate the image, close close-on-exec descriptors,
        reset caught signal handlers, then jump into the loaded image,
        leaving the interposition machinery in place.
        """
        ctx = self.ctx
        # 1. Validate first, so failure leaves the caller intact.
        ctx.htg(_NR_IMAGE_HEADER, path)
        # 2. Close the subset of descriptors marked close-on-exec, found
        # from the emulator's own view of the descriptor table.  The
        # closes go through syscall_down so that any agent interposed
        # *below* this one observes them, as the kernel otherwise would.
        for fd, cloexec in ctx.htg(_NR_TASK_GET_DESCRIPTORS):
            if cloexec:
                self.exec_close_descriptor(fd)
        # 3. Reset caught handlers to the default; leave SIG_IGN alone.
        for signum in range(1, sig.NSIG):
            if signum in sig.UNCATCHABLE:
                continue
            old = self.syscall_down_numeric(_NR_SIGVEC, (signum, sig.SIG_DFL, 0))
            if old == sig.SIG_IGN:
                self.syscall_down_numeric(_NR_SIGVEC, (signum, sig.SIG_IGN, 0))
        # 4. Load the arguments and transfer control into the new image.
        ctx.htg(_NR_JUMP_TO_IMAGE, path, argv, envp)
        raise AssertionError("jump_to_image returned")

    def exec_client(self, path, argv=None, envp=None):
        """Exec the client binary, keeping this agent interposed."""
        return self.reexec(path, argv, envp)


def run_under_agent(kernel, agent, path, argv=None, envp=None,
                    agentargv=(), uid=0, timeout=120.0):
    """The agent loader: run the binary at *path* under *agent*.

    Equivalent to the paper's general agent loader program: it attaches
    the agent to a fresh process (which installs the agent's
    interception) and then execs the unmodified client binary through
    the agent's exec path, so interposition survives into the client.

    Returns the client's wait status.
    """
    argv = list(argv) if argv is not None else [path]

    def loader(ctx):
        agent.attach(ctx, agentargv)
        agent.exec_client(path, argv, envp)

    return kernel.run_entry(loader, uid=uid, timeout=timeout)
