"""The interposition toolkit — the paper's contribution.

An object-oriented toolkit for writing *system interface interposition
agents*: programs that both use and provide the 4.3BSD system interface,
transparently interposed between unmodified applications and the kernel.

The toolkit is layered exactly as in the paper (Figure 2-1):

* **boilerplate** (:mod:`~repro.toolkit.boilerplate`) — agent invocation,
  system call interception, incoming signal handling, downcalls to the
  next-level system interface, signal delivery up to applications, and
  the reimplementation of ``execve`` that lets agents survive exec.
  Hides every Mach-specific mechanism; not normally used directly.
* **layer 0, numeric** (:mod:`~repro.toolkit.numeric`) — the system
  interface as a single entry point taking vectors of untyped arguments:
  :class:`~repro.toolkit.numeric.NumericSyscall` and the toolkit-supplied
  :class:`~repro.toolkit.numeric.BSDNumericSyscall` that maps numbers to
  the symbolic layer.
* **layer 1, symbolic** (:mod:`~repro.toolkit.symbolic`) — one ``sys_*``
  method per 4.3BSD system call on
  :class:`~repro.toolkit.symbolic.SymbolicSyscall`, plus signal upcalls.
* **layer 2, primary objects** (:mod:`~repro.toolkit.pathnames`,
  :mod:`~repro.toolkit.descriptors`) — ``PathnameSet``/``Pathname`` with
  the pivotal ``getpn()``, ``DescriptorSet``/``Descriptor``, and
  reference-counted ``OpenObject``.
* **layer 3, secondary objects** (:mod:`~repro.toolkit.directory`) —
  ``Directory`` with ``next_direntry()``.

Agents derive from whichever layer's objects fit their task and inherit
default behaviour for everything they leave alone — that is how agent
code stays proportional to new functionality (paper Goal 3).
"""

from repro.toolkit.boilerplate import Agent, run_under_agent
from repro.toolkit.numeric import BSDNumericSyscall, NumericSyscall
from repro.toolkit.symbolic import SymbolicSyscall
from repro.toolkit.pathnames import Pathname, PathnameSet, PathSymbolicSyscall
from repro.toolkit.descriptors import (
    Descriptor,
    DescriptorSet,
    DescSymbolicSyscall,
    OpenObject,
)
from repro.toolkit.directory import Directory
from repro.toolkit.remote import SeparateSpaceAgent

__all__ = [
    "SeparateSpaceAgent",
    "Agent",
    "BSDNumericSyscall",
    "Descriptor",
    "DescriptorSet",
    "DescSymbolicSyscall",
    "Directory",
    "NumericSyscall",
    "OpenObject",
    "Pathname",
    "PathnameSet",
    "PathSymbolicSyscall",
    "SymbolicSyscall",
    "run_under_agent",
]
