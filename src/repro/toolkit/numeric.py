"""Layer 0: the numeric system call layer.

Presents the system interface as a single entry point accepting vectors
of untyped arguments (paper Section 2.3).  Agents that care only about
call numbers — remappers, raw tracers, foreign-OS emulators — derive
from :class:`NumericSyscall` and override :meth:`NumericSyscall.syscall`.

:class:`BSDNumericSyscall` is the toolkit-supplied derived version that
maps numeric calls onto the symbolic layer's per-call methods.
"""

from repro.kernel.errno import ENOSYS, SyscallError
from repro.kernel.sysent import SYSCALLS, TWO_REGISTER_CALLS
from repro.toolkit.boilerplate import Agent


class EmulRegs:
    """The opaque register-state argument of the numeric signature.

    In the Mach toolkit this is the saved processor state; here it
    carries the user context, which is exactly what "the registers"
    denote a process's identity for.
    """

    __slots__ = ("ctx",)

    def __init__(self, ctx):
        self.ctx = ctx


def marshal_result(number, value, rv):
    """Store a call's Python-level value into the two return registers."""
    if number in TWO_REGISTER_CALLS and isinstance(value, tuple):
        rv[0], rv[1] = value
    else:
        rv[0] = value
        rv[1] = 0


def unmarshal_result(number, rv):
    """Rebuild the Python-level value from the return registers."""
    if number in TWO_REGISTER_CALLS:
        return (rv[0], rv[1])
    return rv[0]


class NumericSyscall(Agent):
    """The lowest agent-visible layer: untyped numeric system calls.

    ``OBS_LAYER`` is ``"numeric"``: agents derived here are charged to
    the numeric layer in the observability registry's cost attribution.

    Subclasses override :meth:`syscall` (and/or :meth:`signal_handler`)
    and call :meth:`register_interest` for the numbers they want.  The
    method signature follows the paper —

        ``syscall(number, args, rv, regs) -> error``

    — returning 0 with ``rv`` filled on success, or an errno value on
    failure.
    """

    OBS_LAYER = "numeric"

    # -- the paper's interface ---------------------------------------------

    def syscall(self, number, args, rv, regs):
        """Handle one intercepted call; default takes the normal action."""
        return self.syscall_down_raw(number, args, rv)

    def signal_handler(self, signum, context):
        """Handle one incoming signal; default forwards to the client."""
        self.signal_up(signum)

    # -- helpers for derived agents --------------------------------------------

    def syscall_down_raw(self, number, args, rv):
        """Downcall and marshal the result into *rv*; returns an errno."""
        try:
            value = self.syscall_down_numeric(number, args)
        except SyscallError as err:
            return err.errno
        marshal_result(number, value, rv)
        return 0

    # -- boilerplate glue (converts between conventions) -------------------------

    def handle_syscall(self, number, args):
        rv = [0, 0]
        error = self.syscall(number, list(args), rv, EmulRegs(self.ctx))
        if error:
            raise SyscallError(error)
        return unmarshal_result(number, rv)

    def handle_signal(self, signum, action):
        self.signal_handler(signum, context=action)


class BSDNumericSyscall(NumericSyscall):
    """Toolkit-supplied: maps 4.3BSD call numbers to symbolic methods.

    This is the "toolkit-supplied derived version of the numeric_syscall
    object" that performs the mapping from application system calls to
    invocations on a symbolic system call object (paper Section 2.3).
    """

    def __init__(self, symbolic):
        super().__init__()
        self.symbolic = symbolic
        # Decode table: call number -> bound sys_* method (the mapping the
        # paper's bsd_numeric_syscall performs), built once at link time.
        self._methods = {}
        for number, entry in SYSCALLS.items():
            method = getattr(symbolic, "sys_" + entry.name, None)
            if method is not None:
                self._methods[number] = method

    def syscall(self, number, args, rv, regs):
        method = self._methods.get(number)
        try:
            if method is None:
                value = self.symbolic.unknown_syscall(number, list(args), regs)
            else:
                value = method(*args)
        except SyscallError as err:
            return err.errno
        marshal_result(number, value, rv)
        return 0

    def signal_handler(self, signum, context):
        self.symbolic.signal_handler(signum, 0, context)
