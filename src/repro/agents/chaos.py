"""A deliberately faulty agent: seeded random crashes at the boundary.

Every other agent in this package tries to be correct; this one tries
to be *incorrect on schedule*.  :class:`ChaosAgent` interposes on a
broad set of calls, forwards them untouched — and, with seeded
probability, raises a :class:`ChaosFault` (a plain ``RuntimeError``
subclass, deliberately **not** a ``SyscallError``) from inside the
handler instead.  That is precisely the misbehaviour the containment
subsystem (:mod:`repro.toolkit.guard`) exists to absorb, and the chaos
harness (:mod:`repro.workloads.chaos`) drives workloads under this
agent to prove machine invariants survive it.

The fault stream is a pure function of the seed, so any chaos scenario
replays exactly.  With ``rate=0`` the agent is a pass-through
interposer, useful as a guarded-but-never-faulting baseline.
"""

import random

from repro.agents import agent
from repro.kernel.sysent import name_of, number_of
from repro.toolkit.boilerplate import Agent


class ChaosFault(RuntimeError):
    """The unexpected exception a chaotic agent handler raises."""


#: the calls chaos interposes on by default: the traffic real workloads
#: generate, covering files, directories, descriptors, processes, pipes
DEFAULT_CALLS = tuple(number_of(name) for name in (
    "read", "write", "open", "close", "stat", "lstat", "fstat",
    "lseek", "dup", "dup2", "pipe", "link", "unlink", "rename",
    "mkdir", "rmdir", "chdir", "access", "chmod", "getpid",
    "fork", "wait", "kill", "sigvec",
))


@agent("chaos")
class ChaosAgent(Agent):
    """Forward every intercepted call, failing at random per the seed.

    *rate* is the per-call probability of raising :class:`ChaosFault`
    instead of forwarding; *numbers* overrides the intercepted call set.
    ``agentargv`` accepts ``seed=N`` / ``rate=F`` words so the generic
    agent loader can configure it from a command line.
    """

    OBS_LAYER = "chaos"

    def __init__(self, seed=0, rate=0.02, numbers=None):
        super().__init__()
        self.seed = seed
        self.rate = rate
        self.numbers = tuple(numbers) if numbers is not None else DEFAULT_CALLS
        self._rng = random.Random(seed)
        #: how many faults this agent has raised so far
        self.faults_raised = 0

    def init(self, agentargv):
        """Parse ``seed=``/``rate=`` words, then register interception."""
        for word in agentargv:
            if word.startswith("seed="):
                self.seed = int(word[5:])
                self._rng = random.Random(self.seed)
            elif word.startswith("rate="):
                self.rate = float(word[5:])
        self.register_interest_many(self.numbers)
        self.register_signal_interest()

    def _misbehave(self, what):
        """Draw from the seeded stream; raise when chaos strikes."""
        if self._rng.random() < self.rate:
            self.faults_raised += 1
            raise ChaosFault("chaos fault #%d in %s"
                             % (self.faults_raised, what))

    def handle_syscall(self, number, args):
        """Forward the call — unless the seed says to crash here."""
        self._misbehave(name_of(number))
        return self.syscall_down_numeric(number, args)

    def handle_signal(self, signum, action):
        """Forward the signal — unless the seed says to crash here."""
        self._misbehave("signal %d" % signum)
        self.signal_up(signum)
