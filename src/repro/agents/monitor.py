"""The monitor agent: system call and resource usage monitoring.

The paper's first demonstration agent (Section 2.4): intercepts the
full system call interface and accumulates per-call counts, error
counts, bytes read/written, per-file open counts, and child process
statistics.  A report is written when the client exits.

The counters live in a private :class:`repro.obs.metrics.MetricsRegistry`
(the same machinery the kernel's observability layer uses), with the
original attribute surface — ``call_counts``, ``error_counts`` and
friends — preserved as read-only views.  Passing ``--json`` in the
agent's ``agentargv`` switches the exit report from the classic text
rendering to a machine-readable JSON document; any non-flag argument
still names the report path.
"""

import json

from repro.agents import agent
from repro.kernel import signals as sig
from repro.kernel.errno import SyscallError, errno_name
from repro.kernel.ofile import F_DUPFD, O_CREAT, O_TRUNC, O_WRONLY
from repro.kernel.sysent import name_of
from repro.obs.metrics import MetricsRegistry
from repro.toolkit.symbolic import SymbolicSyscall

LOG_FD = 44


@agent("monitor")
class MonitorAgent(SymbolicSyscall):
    """Count every system call and summarise resource usage at exit."""

    def __init__(self, report_path="/tmp/monitor.out"):
        super().__init__()
        self.report_path = report_path
        self.report_fd = None
        self.json_report = False
        self.metrics = MetricsRegistry()

    # -- the classic counter attributes, now registry views ---------------

    @property
    def call_counts(self):
        """Per-call invocation counts (``{"open": 3, ...}``)."""
        return self.metrics.group("call")

    @property
    def error_counts(self):
        """Failed-call counts keyed by ``(name, errno_name)``."""
        return self.metrics.group("error")

    @property
    def bytes_read(self):
        """Total bytes the client read."""
        return self.metrics.counter(("bytes.read",))

    @property
    def bytes_written(self):
        """Total bytes the client wrote."""
        return self.metrics.counter(("bytes.written",))

    @property
    def opens_by_path(self):
        """Open counts per pathname."""
        return self.metrics.group("open.path")

    @property
    def forks(self):
        """How many children the client forked."""
        return self.metrics.counter(("fork",))

    @property
    def signals(self):
        """Delivered signal counts keyed by signal number."""
        return self.metrics.group("signal")

    def init(self, agentargv):
        for arg in agentargv:
            if arg == "--json":
                self.json_report = True
            else:
                self.report_path = arg
        fd = self.syscall_down(
            "open", self.report_path, O_WRONLY | O_CREAT | O_TRUNC, 0o644
        )
        self.report_fd = self.syscall_down("fcntl", fd, F_DUPFD, LOG_FD)
        self.syscall_down("close", fd)
        super().init(agentargv)

    # -- counting at the dispatch spine ----------------------------------

    def handle_syscall(self, number, args):
        name = name_of(number)
        self.metrics.inc(("call", name))
        try:
            return super().handle_syscall(number, args)
        except SyscallError as err:
            self.metrics.inc(("error", name, errno_name(err.errno)))
            raise

    # -- detail hooks ---------------------------------------------------------

    def sys_open(self, path, flags=0, mode=0o666):
        fd = super().sys_open(path, flags, mode)
        self.metrics.inc(("open.path", path))
        return fd

    def sys_read(self, fd, count):
        data = super().sys_read(fd, count)
        self.metrics.inc(("bytes.read",), len(data))
        return data

    def sys_write(self, fd, data):
        written = super().sys_write(fd, data)
        self.metrics.inc(("bytes.written",), written)
        return written

    def sys_fork(self, entry=None):
        self.metrics.inc(("fork",))
        return super().sys_fork(entry)

    def signal_handler(self, signum, code, context):
        self.metrics.inc(("signal", signum))
        super().signal_handler(signum, code, context)

    # -- reporting ----------------------------------------------------------------

    def report_text(self):
        """Render the accumulated counters as the exit report."""
        call_counts = self.call_counts
        error_counts = self.error_counts
        opens_by_path = self.opens_by_path
        lines = ["system call usage:"]
        for name in sorted(call_counts, key=lambda n: -call_counts[n]):
            lines.append("  %6d %s" % (call_counts[name], name))
        if error_counts:
            lines.append("errors:")
            for (name, err), count in sorted(error_counts.items()):
                lines.append("  %6d %s -> %s" % (count, name, err))
        lines.append("bytes read: %d" % self.bytes_read)
        lines.append("bytes written: %d" % self.bytes_written)
        lines.append("forks: %d" % self.forks)
        if opens_by_path:
            lines.append("most-opened files:")
            ranked = sorted(opens_by_path.items(), key=lambda kv: -kv[1])
            for path, count in ranked[:10]:
                lines.append("  %6d %s" % (count, path))
        return "\n".join(lines) + "\n"

    def report_json(self):
        """The same report as a machine-readable JSON document.

        ``schema_version`` is bumped whenever a key is added, renamed,
        or changes meaning (see the golden test in
        ``tests/test_monitor_and_loader.py``); version 2 added it along
        with the ``spans`` section, a copy of the kernel's causal span
        counters (``{"enabled": false}`` when span tracing is off);
        version 3 added ``recorder``, the record/replay counters
        (``{"enabled": false}`` when no recorder is attached); version
        4 added ``procfs``, ``profile``, and ``watch``, copies of the
        kernel's live-introspection sections (each ``{"enabled":
        false}`` when the facility is off).
        """
        doc = {
            "schema_version": 4,
            "calls": dict(self.call_counts),
            "errors": {
                "%s %s" % key: count
                for key, count in self.error_counts.items()
            },
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "forks": self.forks,
            "opens_by_path": dict(self.opens_by_path),
            "signals": {
                sig.signal_name(signum): count
                for signum, count in self.signals.items()
            },
        }
        try:
            # Kernel-side fast-path counters (name cache hit rate, fast
            # dispatch) ride along so one report covers both sides of
            # the interface.  Fetched in-world via extension trap 207.
            doc["kernel"] = self.syscall_down("kernel_stats")
            doc["spans"] = doc["kernel"].get("spans", {"enabled": False})
            doc["recorder"] = doc["kernel"].get("recorder",
                                                {"enabled": False})
            doc["procfs"] = doc["kernel"].get("procfs", {"enabled": False})
            doc["profile"] = doc["kernel"].get("profile",
                                               {"enabled": False})
            doc["watch"] = doc["kernel"].get("watch", {"enabled": False})
        except SyscallError:
            doc["spans"] = {"enabled": False}
            doc["recorder"] = {"enabled": False}
            doc["procfs"] = {"enabled": False}
            doc["profile"] = {"enabled": False}
            doc["watch"] = {"enabled": False}
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def sys_exit(self, status=0):
        if self.report_fd is not None:
            # Rewrite the cumulative report; the last exiting client wins.
            self.syscall_down("lseek", self.report_fd, 0, 0)
            render = self.report_json if self.json_report else self.report_text
            text = render().encode()
            self.syscall_down("write", self.report_fd, text)
            self.syscall_down("ftruncate", self.report_fd, len(text))
        return super().sys_exit(status)
