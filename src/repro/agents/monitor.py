"""The monitor agent: system call and resource usage monitoring.

The paper's first demonstration agent (Section 2.4): intercepts the
full system call interface and accumulates per-call counts, error
counts, bytes read/written, per-file open counts, and child process
statistics.  A report is written when the client exits.
"""

from repro.agents import agent
from repro.kernel.errno import SyscallError, errno_name
from repro.kernel.ofile import F_DUPFD, O_CREAT, O_TRUNC, O_WRONLY
from repro.kernel.sysent import name_of
from repro.toolkit.symbolic import SymbolicSyscall

LOG_FD = 44


@agent("monitor")
class MonitorAgent(SymbolicSyscall):
    """Count every system call and summarise resource usage at exit."""

    def __init__(self, report_path="/tmp/monitor.out"):
        super().__init__()
        self.report_path = report_path
        self.report_fd = None
        self.call_counts = {}
        self.error_counts = {}
        self.bytes_read = 0
        self.bytes_written = 0
        self.opens_by_path = {}
        self.forks = 0
        self.signals = {}

    def init(self, agentargv):
        if agentargv:
            self.report_path = agentargv[0]
        fd = self.syscall_down(
            "open", self.report_path, O_WRONLY | O_CREAT | O_TRUNC, 0o644
        )
        self.report_fd = self.syscall_down("fcntl", fd, F_DUPFD, LOG_FD)
        self.syscall_down("close", fd)
        super().init(agentargv)

    # -- counting at the dispatch spine ----------------------------------

    def handle_syscall(self, number, args):
        name = name_of(number)
        self.call_counts[name] = self.call_counts.get(name, 0) + 1
        try:
            return super().handle_syscall(number, args)
        except SyscallError as err:
            key = (name, errno_name(err.errno))
            self.error_counts[key] = self.error_counts.get(key, 0) + 1
            raise

    # -- detail hooks ---------------------------------------------------------

    def sys_open(self, path, flags=0, mode=0o666):
        fd = super().sys_open(path, flags, mode)
        self.opens_by_path[path] = self.opens_by_path.get(path, 0) + 1
        return fd

    def sys_read(self, fd, count):
        data = super().sys_read(fd, count)
        self.bytes_read += len(data)
        return data

    def sys_write(self, fd, data):
        written = super().sys_write(fd, data)
        self.bytes_written += written
        return written

    def sys_fork(self, entry=None):
        self.forks += 1
        return super().sys_fork(entry)

    def signal_handler(self, signum, code, context):
        self.signals[signum] = self.signals.get(signum, 0) + 1
        super().signal_handler(signum, code, context)

    # -- reporting ----------------------------------------------------------------

    def report_text(self):
        """Render the accumulated counters as the exit report."""
        lines = ["system call usage:"]
        for name in sorted(self.call_counts, key=lambda n: -self.call_counts[n]):
            lines.append("  %6d %s" % (self.call_counts[name], name))
        if self.error_counts:
            lines.append("errors:")
            for (name, err), count in sorted(self.error_counts.items()):
                lines.append("  %6d %s -> %s" % (count, name, err))
        lines.append("bytes read: %d" % self.bytes_read)
        lines.append("bytes written: %d" % self.bytes_written)
        lines.append("forks: %d" % self.forks)
        if self.opens_by_path:
            lines.append("most-opened files:")
            ranked = sorted(self.opens_by_path.items(), key=lambda kv: -kv[1])
            for path, count in ranked[:10]:
                lines.append("  %6d %s" % (count, path))
        return "\n".join(lines) + "\n"

    def sys_exit(self, status=0):
        if self.report_fd is not None:
            # Rewrite the cumulative report; the last exiting client wins.
            self.syscall_down("lseek", self.report_fd, 0, 0)
            text = self.report_text().encode()
            self.syscall_down("write", self.report_fd, text)
            self.syscall_down("ftruncate", self.report_fd, len(text))
        return super().sys_exit(status)
