"""The time_symbolic agent (paper Section 3.5.1).

Intercepts each system call, decodes the call and arguments, and calls
the virtual method corresponding to the call — which just takes the
default action, making the same call on the next level of the system
interface.  This measures the minimum toolkit overhead for each
intercepted system call (Table 3-5's "with agent" column).
"""

from repro.agents import agent
from repro.toolkit.symbolic import SymbolicSyscall


@agent("time_symbolic")
class TimeSymbolic(SymbolicSyscall):
    """A pure pass-through agent at the symbolic layer."""
