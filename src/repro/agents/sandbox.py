"""The sandbox agent: a protected environment for untrusted binaries.

One of the paper's motivating examples (Section 1.4): "a wrapper
environment ... that allows untrusted, possibly malicious, binaries to
be run within a restricted environment that monitors and emulates the
actions they take, possibly without actually performing them, and
limits the resources they can use in such a way that the untrusted
binaries are unaware of the restrictions."

Policy knobs:

* pathname rules — readable prefixes, writable prefixes, hidden
  prefixes (which simply appear not to exist);
* *emulated* writes — writes outside the writable set can be silently
  redirected into a private shadow area instead of being denied, so the
  untrusted binary believes its writes succeeded;
* resource limits — system calls, forks, opens, bytes written;
* a review hook for interactive decisions during protected execution.

Violations raise the errno a real kernel would have raised (``EACCES``/
``ENOENT``), or terminate the client when ``kill_on_violation`` is set.
"""

from repro.agents import agent
from repro.kernel import signals as sig
from repro.kernel.errno import EACCES, ENOENT, EPERM, SyscallError
from repro.kernel.ofile import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY, open_mode_bits, FWRITE
from repro.agents.union_dirs import normalize
from repro.toolkit.pathnames import Pathname, PathnameSet, PathSymbolicSyscall


class SandboxViolation(SyscallError):
    """A policy violation, surfaced to the client as a plain errno."""

    def __init__(self, errno_value, op, path):
        super().__init__(errno_value, "%s %s" % (op, path))
        self.op = op
        self.path = path


class SandboxPolicy:
    """What the untrusted binary is allowed to do."""

    def __init__(
        self,
        readable=("/",),
        writable=("/tmp", "/dev"),
        hidden=(),
        emulate_writes_to=None,
        max_syscalls=None,
        max_forks=None,
        max_opens=None,
        max_bytes_written=None,
        kill_on_violation=False,
        reviewer=None,
    ):
        self.readable = tuple(normalize(p) for p in readable)
        self.writable = tuple(normalize(p) for p in writable)
        self.hidden = tuple(normalize(p) for p in hidden)
        self.emulate_writes_to = (
            normalize(emulate_writes_to) if emulate_writes_to else None
        )
        self.max_syscalls = max_syscalls
        self.max_forks = max_forks
        self.max_opens = max_opens
        self.max_bytes_written = max_bytes_written
        self.kill_on_violation = kill_on_violation
        self.reviewer = reviewer

    @staticmethod
    def _match(path, prefixes):
        for prefix in prefixes:
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                return True
        return False

    def is_hidden(self, path):
        """True when *path* falls under a hidden prefix."""
        return self._match(path, self.hidden)

    def may_read(self, path):
        """True when reading *path* is permitted."""
        return self._match(path, self.readable) and not self.is_hidden(path)

    def may_write(self, path):
        """True when writing *path* is permitted."""
        return self._match(path, self.writable) and not self.is_hidden(path)


class SandboxPathname(Pathname):
    """A pathname checked (and possibly redirected) by the policy."""

    def __init__(self, pset, logical, real, writing_redirected):
        super().__init__(pset, real)
        self.logical = logical
        self.redirected = writing_redirected

    def open(self, flags=0, mode=0o666):
        self.pset.check_open(self.logical, flags)
        if self.pset.agent_wants_redirect(self.logical, flags):
            self.path = self.pset.shadow_path(self.logical, populate=True)
        return super().open(flags, mode)


class SandboxPathnameSet(PathnameSet):
    """A pathname set that enforces the sandbox policy."""
    PATHNAME_CLASS = SandboxPathname

    def __init__(self, policy):
        super().__init__()
        self.policy = policy
        self.cwd = "/"
        self.violations = []

    # -- path mapping ------------------------------------------------------

    def getpn(self, path, flags=0):
        logical = normalize(path, self.cwd)
        if self.policy.is_hidden(logical):
            self.note_violation("lookup", logical)
            raise SandboxViolation(ENOENT, "lookup", logical)
        real = logical
        if self._shadowed(logical):
            real = self.shadow_path(logical, populate=False)
        return SandboxPathname(self, logical, real, real != logical)

    def chdir(self, path):
        result = super().chdir(path)
        self.cwd = normalize(path, self.cwd)
        return result

    # -- policy checks -----------------------------------------------------------

    def note_violation(self, op, path):
        """Record a violation (and kill, if the policy says so)."""
        self.violations.append((op, path))
        if self.policy.kill_on_violation:
            self.syscall_down("kill", self.ctx.proc.pid, sig.SIGKILL)

    def review(self, op, path):
        """Consult the interactive reviewer hook, if any."""
        reviewer = self.policy.reviewer
        if reviewer is not None and not reviewer(op, path):
            self.note_violation(op, path)
            raise SandboxViolation(EACCES, op, path)

    def check_open(self, logical, flags):
        """Policy check for an open with the given flags."""
        wants_write = bool(open_mode_bits(flags) & FWRITE or flags & (O_CREAT | O_TRUNC))
        if wants_write and not self.policy.may_write(logical):
            if self.policy.emulate_writes_to is None:
                self.note_violation("write", logical)
                raise SandboxViolation(EACCES, "write", logical)
        if not wants_write and not self.policy.may_read(logical):
            self.note_violation("read", logical)
            raise SandboxViolation(EACCES, "read", logical)
        self.review("open", logical)

    def check_mutate(self, op, logical):
        """A name-space mutation (unlink, mkdir, rename target, ...)."""
        if not self.policy.may_write(logical):
            if self.policy.emulate_writes_to is not None:
                return  # redirected into the shadow area
            self.note_violation(op, logical)
            raise SandboxViolation(EACCES, op, logical)
        self.review(op, logical)

    # -- write emulation (the shadow area) ------------------------------------------

    def agent_wants_redirect(self, logical, flags):
        """True when this write should go to the shadow area."""
        if self.policy.emulate_writes_to is None:
            return False
        wants_write = bool(
            open_mode_bits(flags) & FWRITE or flags & (O_CREAT | O_TRUNC)
        )
        return wants_write and not self.policy.may_write(logical)

    def _shadow_name(self, logical):
        return self.policy.emulate_writes_to.rstrip("/") + "/" + (
            logical.strip("/").replace("/", "__") or "__root__"
        )

    def _shadowed(self, logical):
        if self.policy.emulate_writes_to is None:
            return False
        try:
            self.syscall_down("lstat", self._shadow_name(logical))
            return True
        except SyscallError:
            return False

    def shadow_path(self, logical, populate):
        """The shadow file backing writes to *logical*."""
        shadow = self._shadow_name(logical)
        if populate and not self._shadowed(logical):
            # First write to this file: seed the shadow with the original
            # contents so partial overwrites behave as the client expects.
            try:
                original = self._slurp(logical)
            except SyscallError:
                original = None
            if original is not None:
                self._spill(shadow, original)
        return shadow

    def _slurp(self, path):
        fd = self.syscall_down("open", path, O_RDONLY, 0)
        try:
            chunks = []
            while True:
                chunk = self.syscall_down("read", fd, 8192)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)
        finally:
            self.syscall_down("close", fd)

    def _spill(self, path, data):
        fd = self.syscall_down("open", path, O_WRONLY | O_CREAT | O_TRUNC, 0o600)
        try:
            self.syscall_down("write", fd, data)
        finally:
            self.syscall_down("close", fd)

    # -- mutating pathname calls get checked --------------------------------------------

    def unlink(self, path):
        logical = normalize(path, self.cwd)
        self.check_mutate("unlink", logical)
        if self.agent_wants_redirect(logical, O_WRONLY) and self._shadowed(logical):
            return self.syscall_down("unlink", self._shadow_name(logical))
        return super().unlink(path)

    def mkdir(self, path, mode=0o777):
        self.check_mutate("mkdir", normalize(path, self.cwd))
        return super().mkdir(path, mode)

    def rmdir(self, path):
        self.check_mutate("rmdir", normalize(path, self.cwd))
        return super().rmdir(path)

    def rename(self, path, newpath):
        self.check_mutate("rename", normalize(path, self.cwd))
        self.check_mutate("rename", normalize(newpath, self.cwd))
        return super().rename(path, newpath)

    def link(self, path, newpath):
        self.check_mutate("link", normalize(newpath, self.cwd))
        return super().link(path, newpath)

    def symlink(self, target, path):
        self.check_mutate("symlink", normalize(path, self.cwd))
        return super().symlink(target, path)

    def chmod(self, path, mode):
        self.check_mutate("chmod", normalize(path, self.cwd))
        return super().chmod(path, mode)

    def truncate(self, path, length):
        self.check_mutate("truncate", normalize(path, self.cwd))
        return super().truncate(path, length)


@agent("sandbox")
class SandboxAgent(PathSymbolicSyscall):
    """Run untrusted binaries in a restricted, monitored environment."""

    DESCRIPTOR_SET_CLASS = SandboxPathnameSet

    def __init__(self, policy=None):
        self.policy = policy if policy is not None else SandboxPolicy()
        self._counts = {"syscalls": 0, "forks": 0, "opens": 0, "bytes": 0}
        super().__init__(pset=SandboxPathnameSet(self.policy))

    def init(self, agentargv):
        # agentargv syntax: ro=/a:rw=/b:hide=/c (optional; usually the
        # policy object is passed programmatically)
        for spec in agentargv:
            kind, _, value = spec.partition("=")
            if kind == "rw":
                self.policy.writable += (normalize(value),)
            elif kind == "hide":
                self.policy.hidden += (normalize(value),)
        super().init(agentargv)

    @property
    def violations(self):
        return self.dset.violations

    def _limit(self, name, maximum):
        self._counts[name] += 1
        if maximum is not None and self._counts[name] > maximum:
            self.dset.note_violation("limit:" + name, str(self._counts[name]))
            raise SandboxViolation(EPERM, "limit:" + name, "")

    def handle_syscall(self, number, args):
        from repro.kernel.sysent import number_of

        # exit is always allowed: a process over its limits must still be
        # able to die (and the kernel could not refuse it anyway).
        if number != number_of("exit"):
            self._limit("syscalls", self.policy.max_syscalls)
        return super().handle_syscall(number, args)

    def sys_fork(self, entry=None):
        self._limit("forks", self.policy.max_forks)
        return super().sys_fork(entry)

    def sys_open(self, path, flags=0, mode=0o666):
        self._limit("opens", self.policy.max_opens)
        return super().sys_open(path, flags, mode)

    def sys_write(self, fd, data):
        written = super().sys_write(fd, data)
        self._counts["bytes"] += written
        if (
            self.policy.max_bytes_written is not None
            and self._counts["bytes"] > self.policy.max_bytes_written
        ):
            self.dset.note_violation("limit:bytes", str(self._counts["bytes"]))
            raise SandboxViolation(EPERM, "limit:bytes", "")
        return written

    def sys_kill(self, pid, signum):
        # The untrusted binary may signal only itself and its descendants.
        if pid not in self._descendants():
            self.dset.note_violation("kill", str(pid))
            raise SandboxViolation(EPERM, "kill", str(pid))
        return super().sys_kill(pid, signum)

    def sys_setuid(self, uid):
        self.dset.note_violation("setuid", str(uid))
        raise SandboxViolation(EPERM, "setuid", str(uid))

    def sys_chroot(self, path):
        self.dset.note_violation("chroot", path)
        raise SandboxViolation(EPERM, "chroot", path)

    def sys_settimeofday(self, sec, usec):
        self.dset.note_violation("settimeofday", "")
        raise SandboxViolation(EPERM, "settimeofday", "")

    def _descendants(self):
        kernel = self.ctx.kernel
        me = self.ctx.proc.pid
        family = {me}
        with kernel._sleepq:
            grew = True
            while grew:
                grew = False
                for proc in kernel._procs.values():
                    if proc.ppid in family and proc.pid not in family:
                        family.add(proc.pid)
                        grew = True
        return family
