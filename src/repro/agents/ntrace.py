"""ntrace: a system call tracer written at the numeric layer.

The ablation counterpart to :mod:`repro.agents.trace`.  Working at
layer 0, the agent sees only call numbers and untyped argument vectors
— so it is a fraction of the size of the symbolic trace agent (whose
code is proportional to the interface because it formats each call's
arguments), but its output is correspondingly raw: numbers and reprs,
no symbolic names for flags, modes, or signals beyond the call name
itself.

This is the trade the paper's layering argument is about: choose the
layer whose objects match the functionality, and pay (in code) only for
what the agent actually interprets.
"""

from repro.agents import agent
from repro.kernel.errno import errno_name
from repro.kernel.ofile import F_DUPFD, O_CREAT, O_TRUNC, O_WRONLY
from repro.kernel.sysent import bsd_numbers, name_of, number_of
from repro.toolkit.numeric import NumericSyscall

LOG_FD = 47
NR_EXECVE = number_of("execve")


def _brief(value):
    text = repr(value)
    return text if len(text) <= 32 else text[:29] + "..."


@agent("ntrace")
class NumericTraceAgent(NumericSyscall):
    """Print every call as ``name<number>(raw args) -> rv / errno``."""

    def __init__(self, log_path="/tmp/ntrace.out"):
        super().__init__()
        self.log_path = log_path
        self.log_fd = None

    def init(self, agentargv):
        if agentargv:
            self.log_path = agentargv[0]
        if self.log_path == "-":
            self.log_fd = 2
        else:
            fd = self.syscall_down(
                "open", self.log_path, O_WRONLY | O_CREAT | O_TRUNC, 0o644
            )
            self.log_fd = self.syscall_down("fcntl", fd, F_DUPFD, LOG_FD)
            self.syscall_down("close", fd)
        self.register_interest_many(bsd_numbers())
        self.register_signal_interest()

    def _emit(self, text):
        self.syscall_down("write", self.log_fd, text.encode())

    def syscall(self, number, args, rv, regs):
        if number == NR_EXECVE:
            # The native exec would wipe this agent; even a layer-0 agent
            # must use the boilerplate's reimplementation to survive it.
            self._emit("execve<%d>(%s)\n"
                       % (number, ", ".join(_brief(a) for a in args)))
            self.reexec(*args)
        error = self.syscall_down_raw(number, args, rv)
        shown = ", ".join(_brief(a) for a in args)
        if error:
            outcome = errno_name(error)
        else:
            outcome = "%s %s" % (_brief(rv[0]), _brief(rv[1]))
        self._emit(
            "%s<%d>(%s) -> %s\n" % (name_of(number), number, shown, outcome)
        )
        return error

    def signal_handler(self, signum, context):
        self._emit("signal<%d>\n" % signum)
        super().signal_handler(signum, context)
