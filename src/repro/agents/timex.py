"""The timex agent: changes the apparent time of day (paper Section 3.3.1).

The whole agent is an initialization routine that accepts the desired
offset and one derived system call method; every other behaviour of the
system interface is inherited from the toolkit.  The paper measures
this agent at 35 statements of agent-specific code over 2467 statements
of toolkit code.
"""

from repro.agents import agent
from repro.toolkit.symbolic import SymbolicSyscall


@agent("timex")
class TimexSymbolicSyscall(SymbolicSyscall):
    """Shift gettimeofday()'s result by a fixed number of seconds."""

    def __init__(self, offset=0):
        super().__init__()
        self.offset = offset  # difference between real and funky time

    def init(self, agentargv):
        super().init(agentargv)
        if agentargv:
            self.offset = int(agentargv[0])

    def sys_gettimeofday(self):
        tv = super().sys_gettimeofday()
        tv.tv_sec += self.offset
        return tv
