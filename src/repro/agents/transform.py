"""Transparent data-transformation agents: compression and encryption.

Two more of the paper's motivating examples (Section 1.4): "transparent
data compression and/or encryption agents."  Files under a configured
subtree are *stored* in transformed form but *observed* by applications
in plain form: opens slurp and decode the stored bytes into an
in-memory open object, reads/writes/seeks are served from that buffer,
and the final close encodes and writes the bytes back.

:class:`CompressAgent` stores zlib-compressed files;
:class:`CryptAgent` stores files encrypted with a keyed stream cipher.
Both derive from :class:`TransformAgent`, which holds all of the
interposition logic — the two agents differ only in their
``encode``/``decode`` pair, a direct demonstration of toolkit reuse.
"""

import zlib

from repro.agents import agent
from repro.kernel.errno import EINVAL, SyscallError
from repro.kernel.ofile import (
    FREAD,
    FWRITE,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    open_mode_bits,
)
from repro.agents.union_dirs import normalize
from repro.toolkit.descriptors import OpenObject
from repro.toolkit.pathnames import Pathname, PathnameSet, PathSymbolicSyscall

#: stored-form magic so plain files under the subtree stay readable
MAGIC = b"#xform1\n"


class TransformOpenObject(OpenObject):
    """An open object whose contents live decoded in agent memory.

    Derives from the toolkit's :class:`OpenObject`, overriding the data
    path (read/write/seek/stat/truncate) while inheriting the reference
    counting and the vector forms built on read/write.
    """

    def __init__(self, pset, logical, stored_path, data, writable):
        super().__init__(pset, kind="file")
        self.pset = pset
        self.logical = logical
        self.stored_path = stored_path
        self.data = bytearray(data)
        self.writable = writable
        self.dirty = False
        #: one shared offset, as in a kernel open-file entry: descriptors
        #: created by dup/fork share it
        self.offset = 0

    def last_close(self):
        if self.dirty:
            self.pset.store(self.stored_path, bytes(self.data))
            self.dirty = False

    # -- descriptor operations served from the buffer --------------------

    def read(self, fd, count):
        chunk = bytes(self.data[self.offset : self.offset + count])
        self.offset += len(chunk)
        return chunk

    def write(self, fd, data):
        if isinstance(data, str):
            data = data.encode()
        end = self.offset + len(data)
        if self.offset > len(self.data):
            self.data.extend(b"\0" * (self.offset - len(self.data)))
        self.data[self.offset:end] = data
        self.offset = end
        self.dirty = True
        return len(data)

    def lseek(self, fd, offset, whence):
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self.offset + offset
        elif whence == SEEK_END:
            new = len(self.data) + offset
        else:
            raise SyscallError(EINVAL)
        if new < 0:
            raise SyscallError(EINVAL)
        self.offset = new
        return new

    def fstat(self, fd):
        record = self.pset.syscall_down("fstat", fd)
        record.st_size = len(self.data)  # the logical (decoded) size
        return record

    def ftruncate(self, fd, length):
        if length < 0:
            raise SyscallError(EINVAL)
        if length < len(self.data):
            del self.data[length:]
        else:
            self.data.extend(b"\0" * (length - len(self.data)))
        self.dirty = True
        return 0

    def fsync(self, fd):
        if self.dirty:
            self.pset.store(self.stored_path, bytes(self.data))
            self.dirty = False
        return 0

    def fchmod(self, fd, mode):
        return self.pset.syscall_down("fchmod", fd, mode)

    def fchown(self, fd, uid, gid):
        return self.pset.syscall_down("fchown", fd, uid, gid)

    def ioctl(self, fd, request, arg):
        return self.pset.syscall_down("ioctl", fd, request, arg)

    def getdirentries(self, fd, count):
        raise SyscallError(EINVAL, "not a directory")

    def close_slot(self, fd):
        return self.pset.syscall_down("close", fd)


class TransformPathname(Pathname):
    """A pathname whose file contents are transformed at rest."""
    def open(self, flags=0, mode=0o666):
        if not self.pset.in_subtree(self.path):
            return super().open(flags, mode)
        # Open the stored file to reserve the descriptor slot and check
        # permissions, then serve contents from the decoded buffer.
        fd = self.pset.syscall_down("open", self.path, flags & ~O_APPEND, mode)
        record = self.pset.syscall_down("fstat", fd)
        from repro.kernel import stat as st

        if st.S_ISDIR(record.st_mode):
            return fd, self.pset.OPEN_OBJECT_CLASS(self.pset)
        bits = open_mode_bits(flags)
        data = b"" if flags & O_TRUNC else self.pset.load(self.path)
        open_object = TransformOpenObject(
            self.pset, self.path, self.path, data, writable=bool(bits & FWRITE)
        )
        if flags & O_APPEND:
            open_object.offset = len(open_object.data)
        if flags & O_TRUNC:
            open_object.dirty = True
        return fd, open_object

    def stat(self):
        record = super().stat()
        return self.pset.patch_size(self.path, record)

    def lstat(self):
        record = super().lstat()
        return self.pset.patch_size(self.path, record)


class TransformPathnameSet(PathnameSet):
    """A pathname set applying an encode/decode pair under a subtree."""
    PATHNAME_CLASS = TransformPathname

    def __init__(self, subtree, encode, decode):
        super().__init__()
        self.subtree = normalize(subtree)
        self.encode = encode
        self.decode = decode
        self.cwd = "/"

    def getpn(self, path, flags=0):
        return TransformPathname(self, normalize(path, self.cwd))

    def chdir(self, path):
        result = super().chdir(path)
        self.cwd = normalize(path, self.cwd)
        return result

    def in_subtree(self, path):
        """True when *path* falls under the transformed subtree."""
        return path == self.subtree or path.startswith(self.subtree + "/")

    # -- stored-form access ---------------------------------------------------

    def load(self, path):
        """Read a stored file and return its decoded contents."""
        fd = self.syscall_down("open", path, O_RDONLY, 0)
        try:
            chunks = []
            while True:
                chunk = self.syscall_down("read", fd, 8192)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            self.syscall_down("close", fd)
        raw = b"".join(chunks)
        if raw.startswith(MAGIC):
            return self.decode(raw[len(MAGIC):])
        return raw  # not yet transformed: read it plain

    def store(self, path, data):
        """Encode *data* and write it as the stored form."""
        encoded = MAGIC + self.encode(data)
        fd = self.syscall_down("open", path, O_WRONLY | O_CREAT | O_TRUNC, 0o644)
        try:
            offset = 0
            while offset < len(encoded):
                offset += self.syscall_down(
                    "write", fd, encoded[offset : offset + 8192]
                )
        finally:
            self.syscall_down("close", fd)

    def patch_size(self, path, record):
        """Report the decoded size in stat results."""
        if self.in_subtree(path):
            from repro.kernel import stat as st

            if st.S_ISREG(record.st_mode):
                try:
                    record.st_size = len(self.load(path))
                except SyscallError:
                    pass
        return record


class TransformAgent(PathSymbolicSyscall):
    """Base for agents that transparently transform file contents."""

    DESCRIPTOR_SET_CLASS = TransformPathnameSet

    def __init__(self, subtree):
        super().__init__(
            pset=TransformPathnameSet(subtree, self.encode, self.decode)
        )

    def encode(self, data):
        """Plain bytes -> stored bytes (subclasses decide how)."""
        raise NotImplementedError

    def decode(self, data):
        """Stored bytes -> plain bytes (inverse of encode)."""
        raise NotImplementedError


@agent("compress")
class CompressAgent(TransformAgent):
    """Store files under the subtree zlib-compressed, transparently."""

    def encode(self, data):
        """zlib-compress the plain bytes."""
        return zlib.compress(bytes(data), 6)

    def decode(self, data):
        """zlib-decompress the stored bytes."""
        return zlib.decompress(bytes(data))


def _keystream_xor(data, key):
    if not key:
        raise ValueError("empty key")
    out = bytearray(len(data))
    state = 0x5DEECE66D
    key_bytes = key.encode() if isinstance(key, str) else bytes(key)
    for k in key_bytes:
        state = (state * 6364136223846793005 + k) & (1 << 64) - 1
    for i, byte in enumerate(bytes(data)):
        state = (state * 6364136223846793005 + 1442695040888963407) & (1 << 64) - 1
        out[i] = byte ^ (state >> 33) & 0xFF
    return bytes(out)


@agent("crypt")
class CryptAgent(TransformAgent):
    """Store files under the subtree enciphered with a keyed stream.

    (A toy keystream — the point is the interposition structure, not
    the cryptography.)
    """

    def __init__(self, subtree, key="mach2.5"):
        self.key = key
        super().__init__(subtree)

    def encode(self, data):
        """Encipher with the keyed stream (an involution)."""
        return _keystream_xor(data, self.key)

    def decode(self, data):
        """Decipher with the keyed stream (same involution)."""
        return _keystream_xor(data, self.key)
