"""The transactional agent: run unmodified programs transactionally.

One of the paper's motivating examples (Section 1.4): "a simple
``run_transaction`` command could be constructed that runs arbitrary
unmodified programs (e.g., /bin/csh) such that all persistent execution
side effects (e.g., filesystem writes) are remembered and appear within
the transactional environment to have been performed normally, but
where in actuality the user is presented with a commit-or-abort choice
at the end of such a session.  Indeed, one such transactional program
invocation could occur within another, transparently providing nested
transactions."

Mechanism: an overlay.  Writes go to shadow files in a private scratch
directory; removals become whiteouts; reads and directory listings
consult the overlay first, so the client observes its own effects.  On
``commit()`` the overlay is applied to the underlying system interface
— which, thanks to agent stacking, may itself be another transactional
agent: nested transactions fall out of the toolkit's downcall chaining.
"""

from repro.agents import agent
from repro.kernel.errno import (
    EDEADLK,
    EEXIST,
    EINVAL,
    ENOENT,
    ENOTDIR,
    SyscallError,
)
from repro.kernel.ofile import (
    FWRITE,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    open_mode_bits,
)
from repro.agents.union_dirs import normalize
from repro.kernel.inode import Dirent
from repro.toolkit.directory import Directory
from repro.toolkit.pathnames import Pathname, PathnameSet, PathSymbolicSyscall


class TxnPathname(Pathname):
    """A pathname resolved through the transaction overlay."""

    def __init__(self, pset, logical):
        super().__init__(pset, pset.backing_path(logical))
        self.logical = logical

    def _check_visible(self):
        if self.pset.is_whited_out(self.logical):
            raise SyscallError(ENOENT, self.logical)

    def open(self, flags=0, mode=0o666):
        wants_write = bool(
            open_mode_bits(flags) & FWRITE or flags & (O_CREAT | O_TRUNC)
        )
        if self.pset.is_whited_out(self.logical):
            if not flags & O_CREAT:
                raise SyscallError(ENOENT, self.logical)
            # Creating over a whiteout: fresh shadow, no seeding.
            self.pset.clear_whiteout(self.logical)
            self.path = self.pset.shadow_for(self.logical, seed=False)
        elif wants_write:
            seed = not flags & O_TRUNC
            self.path = self.pset.shadow_for(self.logical, seed=seed)
        return super().open(flags, mode)

    def stat(self):
        self._check_visible()
        return super().stat()

    def lstat(self):
        self._check_visible()
        return super().lstat()

    def access(self, mode):
        self._check_visible()
        return super().access(mode)

    def unlink(self):
        self._check_visible()
        # Verify the object exists somewhere, then remember the removal.
        self.pset.syscall_down("lstat", self.path)
        self.pset.record_unlink(self.logical)
        return 0

    def mkdir(self, mode=0o777):
        if self.pset.exists_logically(self.logical):
            raise SyscallError(EEXIST, self.logical)
        self.pset.clear_whiteout(self.logical)
        self.pset.record_mkdir(self.logical)
        return 0

    def rmdir(self):
        self._check_visible()
        self.pset.record_rmdir(self.logical)
        return 0

    def rename(self, newpn):
        self._check_visible()
        self.pset.record_rename(self.logical, newpn.logical)
        return 0

    def chmod(self, mode):
        self._check_visible()
        self.pset.record_chmod(self.logical, mode)
        return 0

    def truncate(self, length):
        self._check_visible()
        data = self.pset.slurp_logical(self.logical)
        padded = data[:length] + b"\0" * max(0, length - len(data))
        self.pset.spill_logical(self.logical, padded)
        return 0


class TxnDirectory(Directory):
    """A directory listing adjusted for the overlay: whiteouts removed,
    transaction-created names added."""

    def __init__(self, dset, pathname):
        super().__init__(dset, pathname)
        self.logical = getattr(pathname, "logical", pathname.path)
        self._extra = None

    def next_direntry(self, fd):
        while True:
            if self._extra is None:
                self._extra = self.dset.overlay_names_in(self.logical)
                self._emitted = set()
            status = super().next_direntry(fd)
            if not status:
                # Underlying entries done; emit transaction-created names.
                while self._extra:
                    name = self._extra.pop(0)
                    if name in self._emitted:
                        continue
                    self.direntry = Dirent(0, name)
                    return 1
                self.direntry = None
                return 0
            name = self.direntry.d_name
            child = self.logical.rstrip("/") + "/" + name
            if name not in (".", "..") and self.dset.is_whited_out(
                normalize(child)
            ):
                continue
            self._emitted.add(name)
            if name in self._extra:
                self._extra.remove(name)
            return 1


class TxnPathnameSet(PathnameSet):
    """A pathname set that remembers effects in an overlay."""
    PATHNAME_CLASS = TxnPathname
    DIRECTORY_CLASS = TxnDirectory

    def __init__(self, scratch_dir):
        super().__init__()
        self.scratch_dir = scratch_dir.rstrip("/")
        self.cwd = "/"
        #: logical path -> shadow path, for every file written
        self.shadows = {}
        #: logical paths removed within the transaction
        self.whiteouts = set()
        #: directories created within the transaction, in order
        self.made_dirs = []
        #: logical path -> mode, for chmods within the transaction
        self.modes = {}
        #: (logical, SyscallError) pairs from the last commit: effects the
        #: next-level interface refused (a sandbox below, permissions, ...)
        self.commit_failures = []
        self._serial = 0
        self._scratch_ready = False
        #: savepoint frames: {"name", "mark" (undo-list length), "cowed"}
        self._sp_stack = []
        #: undo closures, appended only while savepoints are active
        self._undo = []
        #: shadow files kept alive for possible rollback; unlinked when the
        #: savepoint stack drains or the transaction ends
        self._trash = []
        self._sp_serial = 0

    # -- resolution ---------------------------------------------------

    def getpn(self, path, flags=0):
        return TxnPathname(self, normalize(path, self.cwd))

    def chdir(self, path):
        result = super().chdir(path)
        self.cwd = normalize(path, self.cwd)
        return result

    def backing_path(self, logical):
        """Where reads of *logical* actually go (shadow or real)."""
        if logical in self.shadows:
            return self.shadows[logical]
        for made in self.made_dirs:
            if logical == made:
                # A directory created in the transaction is backed by a
                # scratch directory so opens and listings work.
                return self._dir_shadow(made)
            if logical.startswith(made + "/"):
                break
        return logical

    # -- overlay state ------------------------------------------------------

    def _ensure_scratch(self):
        if not self._scratch_ready:
            try:
                self.syscall_down("mkdir", self.scratch_dir, 0o700)
            except SyscallError as err:
                if err.errno != EEXIST:
                    raise
            self._scratch_ready = True

    def _new_shadow(self):
        self._ensure_scratch()
        self._serial += 1
        return "%s/shadow.%d" % (self.scratch_dir, self._serial)

    def _dir_shadow(self, logical):
        self._ensure_scratch()
        shadow = "%s/dir.%s" % (
            self.scratch_dir,
            logical.strip("/").replace("/", "__"),
        )
        try:
            self.syscall_down("mkdir", shadow, 0o700)
        except SyscallError as err:
            if err.errno != EEXIST:
                raise
        return shadow

    def is_whited_out(self, logical):
        """True when the transaction removed *logical*."""
        return logical in self.whiteouts

    def clear_whiteout(self, logical):
        """Forget a removal (the name was recreated)."""
        if self._sp_stack and logical in self.whiteouts:
            self._note_undo(lambda logical=logical: self.whiteouts.add(logical))
        self.whiteouts.discard(logical)

    def exists_logically(self, logical):
        """Does *logical* exist in the client's view?"""
        if self.is_whited_out(logical):
            return False
        try:
            self.syscall_down("lstat", self.backing_path(logical))
            return True
        except SyscallError:
            return False

    def shadow_for(self, logical, seed):
        """The shadow file backing writes to *logical* (created on first use).

        While savepoints are active an existing shadow is copied on first
        write per frame, so ``rollback_to`` can restore the pre-savepoint
        contents by pointing the mapping back at the old shadow file.
        """
        shadow = self.shadows.get(logical)
        if shadow is not None:
            if self._sp_stack and logical not in self._sp_stack[-1]["cowed"]:
                self._sp_stack[-1]["cowed"].add(logical)
                fresh = self._new_shadow()
                self._spill(fresh, self._slurp(shadow))
                self._trash.append(shadow)

                def undo(logical=logical, old=shadow, fresh=fresh):
                    self.shadows[logical] = old
                    if old in self._trash:
                        self._trash.remove(old)
                    self._unlink_quiet(fresh)

                self._note_undo(undo)
                self.shadows[logical] = fresh
            return self.shadows[logical]
        shadow = self._new_shadow()
        if seed:
            try:
                data = self._slurp(logical)
            except SyscallError:
                data = None
            if data is not None:
                self._spill(shadow, data)
        if self._sp_stack:
            self._sp_stack[-1]["cowed"].add(logical)

            def undo(logical=logical, shadow=shadow):
                if self.shadows.get(logical) == shadow:
                    del self.shadows[logical]
                self._unlink_quiet(shadow)

            self._note_undo(undo)
        self.shadows[logical] = shadow
        return shadow

    def record_unlink(self, logical):
        """Remember a removal as a whiteout."""
        shadow = self.shadows.pop(logical, None)
        if self._sp_stack:
            # Keep the shadow file around: a rollback may resurrect it.
            was_white = logical in self.whiteouts
            if shadow is not None:
                self._trash.append(shadow)

            def undo(logical=logical, shadow=shadow, was_white=was_white):
                if shadow is not None:
                    self.shadows[logical] = shadow
                    if shadow in self._trash:
                        self._trash.remove(shadow)
                if not was_white:
                    self.whiteouts.discard(logical)

            self._note_undo(undo)
        elif shadow is not None:
            self._unlink_quiet(shadow)
        self.whiteouts.add(logical)

    def record_mkdir(self, logical):
        """Remember a directory creation."""
        self.made_dirs.append(logical)
        if self._sp_stack:
            def undo(logical=logical):
                if logical in self.made_dirs:
                    self.made_dirs.remove(logical)

            self._note_undo(undo)
        self._dir_shadow(logical)

    def record_rmdir(self, logical):
        """Remember a directory removal."""
        made_at = self.made_dirs.index(logical) if logical in self.made_dirs else None
        was_white = logical in self.whiteouts
        if made_at is not None:
            del self.made_dirs[made_at]
        if self._sp_stack:
            def undo(logical=logical, made_at=made_at, was_white=was_white):
                if made_at is not None and logical not in self.made_dirs:
                    self.made_dirs.insert(made_at, logical)
                if not was_white:
                    self.whiteouts.discard(logical)

            self._note_undo(undo)
        self.whiteouts.add(logical)

    def record_chmod(self, logical, mode):
        """Remember a mode change for commit time."""
        if self._sp_stack:
            had, old = logical in self.modes, self.modes.get(logical)

            def undo(logical=logical, had=had, old=old):
                if had:
                    self.modes[logical] = old
                else:
                    self.modes.pop(logical, None)

            self._note_undo(undo)
        self.modes[logical] = mode

    def _forget_chmod(self, logical):
        """Drop a remembered mode change (the name went away)."""
        if logical not in self.modes:
            return
        if self._sp_stack:
            old = self.modes[logical]
            self._note_undo(
                lambda logical=logical, old=old: self.modes.__setitem__(logical, old)
            )
        del self.modes[logical]

    def record_rename(self, old, new):
        """Remember a rename: contents and mode move to *new*, *old* goes away.

        The destination may have been unlinked earlier in the transaction;
        recreating the name must clear that whiteout or the renamed file
        would be invisible (and the commit-time unlink would destroy it).
        """
        data = self.slurp_logical(old)
        self.clear_whiteout(new)
        self.spill_logical(new, data)
        mode = self.modes.get(old)
        if mode is not None:
            self.record_chmod(new, mode)
            self._forget_chmod(old)
        self.record_unlink(old)

    def overlay_names_in(self, logical_dir):
        """Names created by the transaction that belong in *logical_dir*."""
        prefix = logical_dir.rstrip("/") + "/" if logical_dir != "/" else "/"
        names = []
        for logical in list(self.shadows) + self.made_dirs:
            if logical.startswith(prefix):
                rest = logical[len(prefix):]
                if "/" not in rest and rest not in names:
                    names.append(rest)
        return sorted(names)

    # -- savepoints ---------------------------------------------------

    def _note_undo(self, fn):
        self._undo.append(fn)

    def _unlink_quiet(self, path):
        try:
            self.syscall_down("unlink", path)
        except SyscallError:
            pass

    def _drain_trash(self):
        for shadow in self._trash:
            self._unlink_quiet(shadow)
        self._trash = []

    def _frame_index(self, name):
        for index in range(len(self._sp_stack) - 1, -1, -1):
            if self._sp_stack[index]["name"] == name:
                return index
        raise SyscallError(EINVAL, "no savepoint %r" % name)

    def savepoint(self, name=None):
        """Mark a point the overlay can be rolled back to.  Returns the name."""
        if name is None:
            self._sp_serial += 1
            name = "sp.%d" % self._sp_serial
        self._sp_stack.append(
            {"name": name, "mark": len(self._undo), "cowed": set()}
        )
        return name

    def release(self, name):
        """Drop savepoint *name* (and any nested inside it), keeping changes."""
        index = self._frame_index(name)
        del self._sp_stack[index:]
        if not self._sp_stack:
            self._undo = []
            self._drain_trash()

    def rollback_to(self, name):
        """Restore the overlay to its state at savepoint *name*.

        SQL semantics: savepoints nested inside *name* are destroyed, but
        *name* itself survives and can be rolled back to again.
        """
        index = self._frame_index(name)
        frame = self._sp_stack[index]
        while len(self._undo) > frame["mark"]:
            self._undo.pop()()
        del self._sp_stack[index + 1:]
        frame["cowed"] = set()

    # -- data movement helpers -------------------------------------------------

    def _slurp(self, path):
        fd = self.syscall_down("open", path, O_RDONLY, 0)
        try:
            chunks = []
            while True:
                chunk = self.syscall_down("read", fd, 8192)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)
        finally:
            self.syscall_down("close", fd)

    def _spill(self, path, data):
        fd = self.syscall_down("open", path, O_WRONLY | O_CREAT | O_TRUNC, 0o600)
        try:
            offset = 0
            while offset < len(data):
                offset += self.syscall_down("write", fd, data[offset:offset + 8192])
        finally:
            self.syscall_down("close", fd)

    def slurp_logical(self, logical):
        """Read *logical*'s current (overlay-aware) contents."""
        return self._slurp(self.backing_path(logical))

    def spill_logical(self, logical, data):
        """Write *data* as *logical*'s new overlay contents."""
        self._spill(self.shadow_for(logical, seed=False), data)

    # -- transaction outcome ----------------------------------------------------------

    def commit(self, deadline_usec=None):
        """Apply every remembered effect to the next-level interface.

        Effects the next level refuses (a sandbox interposed below, say)
        are recorded in :attr:`commit_failures` rather than crashing the
        exiting client; the rest of the transaction still applies.

        When *deadline_usec* is given and virtual time passes it mid-way
        (another transaction holding what we need, a slow interface
        below), the remaining effects are abandoned and recorded with
        ``EDEADLK`` instead of blocking forever.
        """
        self.commit_failures = []
        expired = SyscallError(EDEADLK, "commit deadline passed")
        effects = []
        for made in self.made_dirs:
            effects.append(("mkdir", made))
        for logical, shadow in sorted(self.shadows.items()):
            effects.append(("spill", logical, shadow))
        for logical in sorted(self.whiteouts, key=len, reverse=True):
            effects.append(("whiteout", logical))
        for logical, mode in sorted(self.modes.items()):
            effects.append(("chmod", logical, mode))
        for index, effect in enumerate(effects):
            if deadline_usec is not None and self._now_usec() > deadline_usec:
                for late in effects[index:]:
                    self.commit_failures.append((late[1], expired))
                break
            self._apply_effect(effect)
        self._discard()

    def _now_usec(self):
        return self.syscall_down("gettimeofday").to_usec()

    def _apply_effect(self, effect):
        kind, logical = effect[0], effect[1]
        if kind == "mkdir":
            try:
                self.syscall_down("mkdir", logical, 0o755)
            except SyscallError as err:
                if err.errno != EEXIST:
                    self.commit_failures.append((logical, err))
        elif kind == "spill":
            try:
                self._spill(logical, self._slurp(effect[2]))
            except SyscallError as err:
                self.commit_failures.append((logical, err))
        elif kind == "whiteout":
            try:
                self.syscall_down("unlink", logical)
            except SyscallError as err:
                try:
                    self.syscall_down("rmdir", logical)
                except SyscallError as dir_err:
                    if dir_err.errno == ENOENT and err.errno == ENOENT:
                        # Created and destroyed within the transaction:
                        # nothing below to remove, nothing went wrong.
                        return
                    if dir_err.errno in (ENOENT, ENOTDIR):
                        # Not a directory, so the unlink error is the
                        # meaningful one.
                        self.commit_failures.append((logical, err))
                    else:
                        self.commit_failures.append((logical, dir_err))
        else:
            try:
                self.syscall_down("chmod", logical, effect[2])
            except SyscallError as err:
                if err.errno != ENOENT:
                    self.commit_failures.append((logical, err))

    def abort(self):
        """Forget every remembered effect."""
        self._discard()

    def _discard(self):
        for shadow in self.shadows.values():
            self._unlink_quiet(shadow)
        self.shadows = {}
        self.whiteouts = set()
        self.made_dirs = []
        self.modes = {}
        self._sp_stack = []
        self._undo = []
        self._drain_trash()


@agent("txn")
class TxnAgent(PathSymbolicSyscall):
    """Run clients transactionally; decide commit or abort at the end.

    ``outcome`` may be ``"commit"``, ``"abort"``, or ``"ask"`` — the
    latter prints a prompt and reads the choice from the client's
    terminal when the initial client exits, the interactive session the
    paper describes.
    """

    DESCRIPTOR_SET_CLASS = TxnPathnameSet

    def __init__(self, scratch_dir="/tmp/txn.scratch", outcome="commit"):
        super().__init__(pset=TxnPathnameSet(scratch_dir))
        self.outcome = outcome
        self.decided = None
        self._client_pid = None
        #: virtual-time budget for commit(); ``None`` means unbounded
        self.commit_timeout_usec = None
        self._commit_hooks = []
        self._abort_hooks = []
        #: (fn, exception) pairs from hooks that raised at decision time
        self.hook_failures = []
        self._nested = []

    def init(self, agentargv):
        if agentargv:
            self.outcome = agentargv[0]
        if len(agentargv) > 1:
            self.pset.scratch_dir = agentargv[1].rstrip("/")
        super().init(agentargv)
        self._client_pid = self.syscall_down("getpid")

    def commit(self, timeout_usec=None):
        """Apply the session's remembered effects now.

        *timeout_usec* (or :attr:`commit_timeout_usec`) bounds the apply
        phase in virtual time; effects past the deadline land in
        ``pset.commit_failures`` with ``EDEADLK`` — the deadlock-avoidance
        shape: give up and report rather than hold the interface forever.
        """
        self.decided = "commit"
        if timeout_usec is None:
            timeout_usec = self.commit_timeout_usec
        deadline = None
        if timeout_usec is not None:
            deadline = self.pset._now_usec() + timeout_usec
        self.pset.commit(deadline_usec=deadline)
        self._run_hooks(self._commit_hooks)

    def abort(self):
        """Discard the session's remembered effects now."""
        self.decided = "abort"
        self.pset.abort()
        self._run_hooks(self._abort_hooks)

    # -- hooks and nesting --------------------------------------------

    def on_commit(self, fn):
        """Call *fn()* after a successful commit decision."""
        self._commit_hooks.append(fn)

    def on_abort(self, fn):
        """Call *fn()* after an abort decision."""
        self._abort_hooks.append(fn)

    def _run_hooks(self, hooks):
        for fn in hooks:
            try:
                fn()
            except Exception as err:  # a hook must not undo the decision
                self.hook_failures.append((fn, err))

    def savepoint(self, name=None):
        """Mark a rollback point in the live overlay."""
        return self.pset.savepoint(name)

    def release(self, name):
        """Drop savepoint *name*, keeping the changes made since."""
        self.pset.release(name)

    def rollback_to(self, name):
        """Restore the overlay to its state at savepoint *name*."""
        self.pset.rollback_to(name)

    def begin_nested(self):
        """Start a nested transaction (§1.4: "one such transactional
        program invocation could occur within another").  Nested
        transactions map onto savepoints in this agent's overlay."""
        name = self.pset.savepoint()
        self._nested.append(name)
        return name

    def commit_nested(self):
        """Commit the innermost nested transaction into its parent."""
        self.pset.release(self._nested.pop())

    def abort_nested(self):
        """Abort the innermost nested transaction."""
        name = self._nested.pop()
        self.pset.rollback_to(name)
        self.pset.release(name)

    def sys_exit(self, status=0):
        if self.syscall_down("getpid") == self._client_pid and self.decided is None:
            choice = self.outcome
            if choice == "ask":
                self.syscall_down(
                    "write", 2, b"txn: commit changes? [y/n] "
                )
                answer = self.syscall_down("read", 0, 16)
                choice = "commit" if answer[:1].lower() == b"y" else "abort"
            if choice == "commit":
                self.commit()
            else:
                self.abort()
        return super().sys_exit(status)
