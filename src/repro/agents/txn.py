"""The transactional agent: run unmodified programs transactionally.

One of the paper's motivating examples (Section 1.4): "a simple
``run_transaction`` command could be constructed that runs arbitrary
unmodified programs (e.g., /bin/csh) such that all persistent execution
side effects (e.g., filesystem writes) are remembered and appear within
the transactional environment to have been performed normally, but
where in actuality the user is presented with a commit-or-abort choice
at the end of such a session.  Indeed, one such transactional program
invocation could occur within another, transparently providing nested
transactions."

Mechanism: an overlay.  Writes go to shadow files in a private scratch
directory; removals become whiteouts; reads and directory listings
consult the overlay first, so the client observes its own effects.  On
``commit()`` the overlay is applied to the underlying system interface
— which, thanks to agent stacking, may itself be another transactional
agent: nested transactions fall out of the toolkit's downcall chaining.
"""

from repro.agents import agent
from repro.kernel.errno import EEXIST, ENOENT, SyscallError
from repro.kernel.ofile import (
    FWRITE,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    open_mode_bits,
)
from repro.agents.union_dirs import normalize
from repro.kernel.inode import Dirent
from repro.toolkit.directory import Directory
from repro.toolkit.pathnames import Pathname, PathnameSet, PathSymbolicSyscall


class TxnPathname(Pathname):
    """A pathname resolved through the transaction overlay."""

    def __init__(self, pset, logical):
        super().__init__(pset, pset.backing_path(logical))
        self.logical = logical

    def _check_visible(self):
        if self.pset.is_whited_out(self.logical):
            raise SyscallError(ENOENT, self.logical)

    def open(self, flags=0, mode=0o666):
        wants_write = bool(
            open_mode_bits(flags) & FWRITE or flags & (O_CREAT | O_TRUNC)
        )
        if self.pset.is_whited_out(self.logical):
            if not flags & O_CREAT:
                raise SyscallError(ENOENT, self.logical)
            # Creating over a whiteout: fresh shadow, no seeding.
            self.pset.clear_whiteout(self.logical)
            self.path = self.pset.shadow_for(self.logical, seed=False)
        elif wants_write:
            seed = not flags & O_TRUNC
            self.path = self.pset.shadow_for(self.logical, seed=seed)
        return super().open(flags, mode)

    def stat(self):
        self._check_visible()
        return super().stat()

    def lstat(self):
        self._check_visible()
        return super().lstat()

    def access(self, mode):
        self._check_visible()
        return super().access(mode)

    def unlink(self):
        self._check_visible()
        # Verify the object exists somewhere, then remember the removal.
        self.pset.syscall_down("lstat", self.path)
        self.pset.record_unlink(self.logical)
        return 0

    def mkdir(self, mode=0o777):
        if self.pset.exists_logically(self.logical):
            raise SyscallError(EEXIST, self.logical)
        self.pset.clear_whiteout(self.logical)
        self.pset.record_mkdir(self.logical)
        return 0

    def rmdir(self):
        self._check_visible()
        self.pset.record_rmdir(self.logical)
        return 0

    def rename(self, newpn):
        self._check_visible()
        data = self.pset.slurp_logical(self.logical)
        self.pset.spill_logical(newpn.logical, data)
        self.pset.record_unlink(self.logical)
        return 0

    def chmod(self, mode):
        self._check_visible()
        self.pset.record_chmod(self.logical, mode)
        return 0

    def truncate(self, length):
        self._check_visible()
        data = self.pset.slurp_logical(self.logical)
        padded = data[:length] + b"\0" * max(0, length - len(data))
        self.pset.spill_logical(self.logical, padded)
        return 0


class TxnDirectory(Directory):
    """A directory listing adjusted for the overlay: whiteouts removed,
    transaction-created names added."""

    def __init__(self, dset, pathname):
        super().__init__(dset, pathname)
        self.logical = getattr(pathname, "logical", pathname.path)
        self._extra = None

    def next_direntry(self, fd):
        while True:
            if self._extra is None:
                self._extra = self.dset.overlay_names_in(self.logical)
                self._emitted = set()
            status = super().next_direntry(fd)
            if not status:
                # Underlying entries done; emit transaction-created names.
                while self._extra:
                    name = self._extra.pop(0)
                    if name in self._emitted:
                        continue
                    self.direntry = Dirent(0, name)
                    return 1
                self.direntry = None
                return 0
            name = self.direntry.d_name
            child = self.logical.rstrip("/") + "/" + name
            if name not in (".", "..") and self.dset.is_whited_out(
                normalize(child)
            ):
                continue
            self._emitted.add(name)
            if name in self._extra:
                self._extra.remove(name)
            return 1


class TxnPathnameSet(PathnameSet):
    """A pathname set that remembers effects in an overlay."""
    PATHNAME_CLASS = TxnPathname
    DIRECTORY_CLASS = TxnDirectory

    def __init__(self, scratch_dir):
        super().__init__()
        self.scratch_dir = scratch_dir.rstrip("/")
        self.cwd = "/"
        #: logical path -> shadow path, for every file written
        self.shadows = {}
        #: logical paths removed within the transaction
        self.whiteouts = set()
        #: directories created within the transaction, in order
        self.made_dirs = []
        #: logical path -> mode, for chmods within the transaction
        self.modes = {}
        #: (logical, SyscallError) pairs from the last commit: effects the
        #: next-level interface refused (a sandbox below, permissions, ...)
        self.commit_failures = []
        self._serial = 0
        self._scratch_ready = False

    # -- resolution ---------------------------------------------------

    def getpn(self, path, flags=0):
        return TxnPathname(self, normalize(path, self.cwd))

    def chdir(self, path):
        result = super().chdir(path)
        self.cwd = normalize(path, self.cwd)
        return result

    def backing_path(self, logical):
        """Where reads of *logical* actually go (shadow or real)."""
        if logical in self.shadows:
            return self.shadows[logical]
        for made in self.made_dirs:
            if logical == made:
                # A directory created in the transaction is backed by a
                # scratch directory so opens and listings work.
                return self._dir_shadow(made)
            if logical.startswith(made + "/"):
                break
        return logical

    # -- overlay state ------------------------------------------------------

    def _ensure_scratch(self):
        if not self._scratch_ready:
            try:
                self.syscall_down("mkdir", self.scratch_dir, 0o700)
            except SyscallError as err:
                if err.errno != EEXIST:
                    raise
            self._scratch_ready = True

    def _new_shadow(self):
        self._ensure_scratch()
        self._serial += 1
        return "%s/shadow.%d" % (self.scratch_dir, self._serial)

    def _dir_shadow(self, logical):
        self._ensure_scratch()
        shadow = "%s/dir.%s" % (
            self.scratch_dir,
            logical.strip("/").replace("/", "__"),
        )
        try:
            self.syscall_down("mkdir", shadow, 0o700)
        except SyscallError as err:
            if err.errno != EEXIST:
                raise
        return shadow

    def is_whited_out(self, logical):
        """True when the transaction removed *logical*."""
        return logical in self.whiteouts

    def clear_whiteout(self, logical):
        """Forget a removal (the name was recreated)."""
        self.whiteouts.discard(logical)

    def exists_logically(self, logical):
        """Does *logical* exist in the client's view?"""
        if self.is_whited_out(logical):
            return False
        try:
            self.syscall_down("lstat", self.backing_path(logical))
            return True
        except SyscallError:
            return False

    def shadow_for(self, logical, seed):
        """The shadow file backing writes to *logical* (created on first use)."""
        shadow = self.shadows.get(logical)
        if shadow is not None:
            return shadow
        shadow = self._new_shadow()
        if seed:
            try:
                data = self._slurp(logical)
            except SyscallError:
                data = None
            if data is not None:
                self._spill(shadow, data)
        self.shadows[logical] = shadow
        return shadow

    def record_unlink(self, logical):
        """Remember a removal as a whiteout."""
        shadow = self.shadows.pop(logical, None)
        if shadow is not None:
            try:
                self.syscall_down("unlink", shadow)
            except SyscallError:
                pass
        self.whiteouts.add(logical)

    def record_mkdir(self, logical):
        """Remember a directory creation."""
        self.made_dirs.append(logical)
        self._dir_shadow(logical)

    def record_rmdir(self, logical):
        """Remember a directory removal."""
        if logical in self.made_dirs:
            self.made_dirs.remove(logical)
        self.whiteouts.add(logical)

    def record_chmod(self, logical, mode):
        """Remember a mode change for commit time."""
        self.modes[logical] = mode

    def overlay_names_in(self, logical_dir):
        """Names created by the transaction that belong in *logical_dir*."""
        prefix = logical_dir.rstrip("/") + "/" if logical_dir != "/" else "/"
        names = []
        for logical in list(self.shadows) + self.made_dirs:
            if logical.startswith(prefix):
                rest = logical[len(prefix):]
                if "/" not in rest and rest not in names:
                    names.append(rest)
        return sorted(names)

    # -- data movement helpers -------------------------------------------------

    def _slurp(self, path):
        fd = self.syscall_down("open", path, O_RDONLY, 0)
        try:
            chunks = []
            while True:
                chunk = self.syscall_down("read", fd, 8192)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)
        finally:
            self.syscall_down("close", fd)

    def _spill(self, path, data):
        fd = self.syscall_down("open", path, O_WRONLY | O_CREAT | O_TRUNC, 0o600)
        try:
            offset = 0
            while offset < len(data):
                offset += self.syscall_down("write", fd, data[offset:offset + 8192])
        finally:
            self.syscall_down("close", fd)

    def slurp_logical(self, logical):
        """Read *logical*'s current (overlay-aware) contents."""
        return self._slurp(self.backing_path(logical))

    def spill_logical(self, logical, data):
        """Write *data* as *logical*'s new overlay contents."""
        self._spill(self.shadow_for(logical, seed=False), data)

    # -- transaction outcome ----------------------------------------------------------

    def commit(self):
        """Apply every remembered effect to the next-level interface.

        Effects the next level refuses (a sandbox interposed below, say)
        are recorded in :attr:`commit_failures` rather than crashing the
        exiting client; the rest of the transaction still applies.
        """
        self.commit_failures = []
        for made in self.made_dirs:
            try:
                self.syscall_down("mkdir", made, 0o755)
            except SyscallError as err:
                if err.errno != EEXIST:
                    self.commit_failures.append((made, err))
        for logical, shadow in sorted(self.shadows.items()):
            try:
                self._spill(logical, self._slurp(shadow))
            except SyscallError as err:
                self.commit_failures.append((logical, err))
        for logical in sorted(self.whiteouts, key=len, reverse=True):
            try:
                self.syscall_down("unlink", logical)
            except SyscallError:
                try:
                    self.syscall_down("rmdir", logical)
                except SyscallError:
                    pass
        for logical, mode in self.modes.items():
            try:
                self.syscall_down("chmod", logical, mode)
            except SyscallError:
                pass
        self._discard()

    def abort(self):
        """Forget every remembered effect."""
        self._discard()

    def _discard(self):
        for shadow in self.shadows.values():
            try:
                self.syscall_down("unlink", shadow)
            except SyscallError:
                pass
        self.shadows = {}
        self.whiteouts = set()
        self.made_dirs = []
        self.modes = {}


@agent("txn")
class TxnAgent(PathSymbolicSyscall):
    """Run clients transactionally; decide commit or abort at the end.

    ``outcome`` may be ``"commit"``, ``"abort"``, or ``"ask"`` — the
    latter prints a prompt and reads the choice from the client's
    terminal when the initial client exits, the interactive session the
    paper describes.
    """

    DESCRIPTOR_SET_CLASS = TxnPathnameSet

    def __init__(self, scratch_dir="/tmp/txn.scratch", outcome="commit"):
        super().__init__(pset=TxnPathnameSet(scratch_dir))
        self.outcome = outcome
        self.decided = None
        self._client_pid = None

    def init(self, agentargv):
        if agentargv:
            self.outcome = agentargv[0]
        if len(agentargv) > 1:
            self.pset.scratch_dir = agentargv[1].rstrip("/")
        super().init(agentargv)
        self._client_pid = self.syscall_down("getpid")

    def commit(self):
        """Apply the session's remembered effects now."""
        self.decided = "commit"
        self.pset.commit()

    def abort(self):
        """Discard the session's remembered effects now."""
        self.decided = "abort"
        self.pset.abort()

    def sys_exit(self, status=0):
        if self.syscall_down("getpid") == self._client_pid and self.decided is None:
            choice = self.outcome
            if choice == "ask":
                self.syscall_down(
                    "write", 2, b"txn: commit changes? [y/n] "
                )
                answer = self.syscall_down("read", 0, 16)
                choice = "commit" if answer[:1].lower() == b"y" else "abort"
            if choice == "commit":
                self.commit()
            else:
                self.abort()
        return super().sys_exit(status)
