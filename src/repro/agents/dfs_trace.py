"""The dfs_trace agent: file reference tracing (paper Section 3.5.3).

Implements file reference tracing tools compatible with the existing
kernel-based DFSTrace tools originally implemented for the Coda
filesystem project — the paper's "best available implementation"
comparison.  Records use the same format as the in-kernel collector
(:mod:`repro.kernel.dfstrace`), so the two traces can be compared
record for record.

Where the kernel implementation appends to an in-kernel buffer from
inside the dispatch path, the agent must intercept each relevant call,
assemble the record in user code, and periodically write the log out
through the system interface — the source of its higher overhead, and
of its portability: no kernel files modified, no machine-dependent
code.
"""

from repro.agents import agent
from repro.kernel.dfstrace import DFSRecord, detail_for
from repro.kernel.errno import SyscallError
from repro.kernel.ofile import F_DUPFD, O_APPEND, O_CREAT, O_TRUNC, O_WRONLY
from repro.toolkit.descriptors import OpenObject
from repro.toolkit.pathnames import Pathname, PathnameSet, PathSymbolicSyscall

#: descriptor the trace log is parked at, above the client's range
LOG_FD = 46
#: records buffered before writing the log (DFSTrace used a small
#: user-level buffer too; trace data must not be lost wholesale)
FLUSH_EVERY = 32


class DfsPathname(Pathname):
    """A pathname whose operations are recorded as file references."""

    def open(self, flags=0, mode=0o666):
        try:
            fd, open_object = super().open(flags, mode)
        except SyscallError as err:
            self.pset.log("open", (self.path, flags), None, err)
            raise
        self.pset.log("open", (self.path, flags), fd, None)
        return fd, open_object

    def _record(self, opcode, args, thunk):
        try:
            result = thunk()
        except SyscallError as err:
            self.pset.log(opcode, args, None, err)
            raise
        self.pset.log(opcode, args, result, None)
        return result

    def stat(self):
        return self._record("stat", (self.path,), lambda: super(DfsPathname, self).stat())

    def lstat(self):
        return self._record("lstat", (self.path,), lambda: super(DfsPathname, self).lstat())

    def access(self, mode):
        return self._record(
            "access", (self.path,), lambda: super(DfsPathname, self).access(mode)
        )

    def chdir(self):
        return self._record("chdir", (self.path,), lambda: super(DfsPathname, self).chdir())

    def chroot(self):
        return self._record(
            "chroot", (self.path,), lambda: super(DfsPathname, self).chroot()
        )

    def unlink(self):
        return self._record(
            "unlink", (self.path,), lambda: super(DfsPathname, self).unlink()
        )

    def link(self, newpn):
        return self._record(
            "link", (self.path, newpn.path),
            lambda: super(DfsPathname, self).link(newpn),
        )

    def rename(self, newpn):
        return self._record(
            "rename", (self.path, newpn.path),
            lambda: super(DfsPathname, self).rename(newpn),
        )

    def symlink_to(self, target):
        return self._record(
            "symlink", (target, self.path),
            lambda: super(DfsPathname, self).symlink_to(target),
        )

    def readlink(self, count=1024):
        return self._record(
            "readlink", (self.path,),
            lambda: super(DfsPathname, self).readlink(count),
        )

    def mkdir(self, mode=0o777):
        return self._record(
            "mkdir", (self.path,), lambda: super(DfsPathname, self).mkdir(mode)
        )

    def rmdir(self):
        return self._record("rmdir", (self.path,), lambda: super(DfsPathname, self).rmdir())

    def chmod(self, mode):
        return self._record(
            "chmod", (self.path,), lambda: super(DfsPathname, self).chmod(mode)
        )

    def chown(self, uid, gid):
        return self._record(
            "chown", (self.path,), lambda: super(DfsPathname, self).chown(uid, gid)
        )

    def truncate(self, length):
        return self._record(
            "truncate", (self.path,),
            lambda: super(DfsPathname, self).truncate(length),
        )

    def utimes(self, atime_usec, mtime_usec):
        return self._record(
            "utimes", (self.path,),
            lambda: super(DfsPathname, self).utimes(atime_usec, mtime_usec),
        )

    def execve(self, argv=None, envp=None):
        self.pset.log("execve", (self.path,), 0, None)
        return super().execve(argv, envp)


class DfsOpenObject(OpenObject):
    """An open object that records closes and seeks."""

    def lseek(self, fd, offset, whence):
        result = super().lseek(fd, offset, whence)
        self.dset.log("lseek", (fd, offset, whence), result, None)
        return result

    def ftruncate(self, fd, length):
        result = super().ftruncate(fd, length)
        self.dset.log("ftruncate", (fd, length), result, None)
        return result

    def close_slot(self, fd):
        result = super().close_slot(fd)
        self.dset.log("close", (fd,), result, None)
        return result


class DfsPathnameSet(PathnameSet):
    """A pathname set whose objects record every file reference."""
    PATHNAME_CLASS = DfsPathname
    OPEN_OBJECT_CLASS = DfsOpenObject

    def log(self, opcode, args, result, error):
        """Forward a record to the owning agent's log."""
        self.sym.log(opcode, args, result, error)


@agent("dfs_trace")
class DfsTraceAgent(PathSymbolicSyscall):
    """Collect a DFSTrace-format file reference trace of client processes."""

    DESCRIPTOR_SET_CLASS = DfsPathnameSet

    def __init__(self, log_path="/tmp/dfstrace.log"):
        super().__init__()
        self.log_path = log_path
        self.log_fd = None
        self.records = []
        self._unflushed = []

    def init(self, agentargv):
        if agentargv:
            self.log_path = agentargv[0]
        fd = self.syscall_down(
            "open", self.log_path, O_WRONLY | O_CREAT | O_TRUNC, 0o644
        )
        self.log_fd = self.syscall_down("fcntl", fd, F_DUPFD, LOG_FD)
        self.syscall_down("close", fd)
        super().init(agentargv)

    # -- record assembly ---------------------------------------------------

    def log(self, opcode, args, result, error):
        """Assemble one DFSTrace record and buffer it."""
        record = DFSRecord(
            self.ctx.kernel.clock.usec(),
            self.ctx.proc.pid,
            opcode,
            error.errno if error is not None else 0,
            detail_for(opcode, args, result),
        )
        self.records.append(record)
        self._unflushed.append(record)
        if len(self._unflushed) >= FLUSH_EVERY:
            self.flush()

    def flush(self):
        """Write buffered records to the trace log file."""
        if not self._unflushed or self.log_fd is None:
            return
        text = "".join(record.to_line() + "\n" for record in self._unflushed)
        self._unflushed = []
        self.syscall_down("write", self.log_fd, text.encode())

    # -- process events recorded at the symbolic level -------------------------

    def sys_fork(self, entry=None):
        result = super().sys_fork(entry)
        self.log("fork", (), result, None)
        return result

    def sys_exit(self, status=0):
        self.log("exit", (status,), 0, None)
        self.flush()
        return super().sys_exit(status)
