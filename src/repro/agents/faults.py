"""The fault-injection agent: rehearse failures against unmodified programs.

A natural member of the paper's "alternate or enhanced semantics"
family (Section 1.4): the agent makes chosen system calls fail with
chosen errnos on a schedule, so error-handling paths that almost never
run in practice can be driven deterministically — no kernel changes, no
program changes.

Rules are ``(call_name, errno, schedule)`` where the schedule selects
which occurrences fail:

* ``"always"`` — every call;
* ``"once"`` — only the first call;
* ``("after", n)`` — every call after the first *n* succeed (disk-full
  style);
* ``("every", n)`` — every n-th call (flaky-device style).

A path predicate can narrow pathname-taking calls to matching paths.
"""

from repro.agents import agent
from repro.kernel.errno import SyscallError
from repro.kernel.sysent import BY_NAME
from repro.toolkit.symbolic import SymbolicSyscall


class FaultRule:
    """One injected failure: which call, which errno, on what schedule."""

    def __init__(self, call_name, errno_value, schedule="always",
                 path_prefix=None):
        if call_name not in BY_NAME:
            raise ValueError("unknown system call %r" % call_name)
        self.call_name = call_name
        self.number = BY_NAME[call_name].number
        self.errno_value = errno_value
        self.schedule = schedule
        self.path_prefix = path_prefix
        self.seen = 0
        self.injected = 0

    def _path_matches(self, args):
        if self.path_prefix is None:
            return True
        return bool(args) and isinstance(args[0], str) and args[0].startswith(
            self.path_prefix
        )

    def should_fail(self, args):
        """Count this occurrence; True when the schedule says fail."""
        if not self._path_matches(args):
            return False
        self.seen += 1
        schedule = self.schedule
        if schedule == "always":
            fail = True
        elif schedule == "once":
            fail = self.seen == 1
        elif isinstance(schedule, tuple) and schedule[0] == "after":
            fail = self.seen > schedule[1]
        elif isinstance(schedule, tuple) and schedule[0] == "every":
            fail = self.seen % schedule[1] == 0
        else:
            raise ValueError("bad schedule %r" % (schedule,))
        if fail:
            self.injected += 1
        return fail


@agent("faults")
class FaultAgent(SymbolicSyscall):
    """Inject failures into chosen system calls of unmodified clients."""

    def __init__(self, rules=()):
        super().__init__()
        self.rules = list(rules)

    def add_rule(self, call_name, errno_value, schedule="always",
                 path_prefix=None):
        """Add an injection rule; returns it for inspection."""
        rule = FaultRule(call_name, errno_value, schedule, path_prefix)
        self.rules.append(rule)
        return rule

    def init(self, agentargv):
        # agentargv syntax: call=errno (always-fail), e.g. "open=28"
        for spec in agentargv:
            name, _, value = spec.partition("=")
            if value:
                self.add_rule(name, int(value))
        super().init(agentargv)

    def handle_syscall(self, number, args):
        for rule in self.rules:
            if rule.number == number and rule.should_fail(args):
                raise SyscallError(
                    rule.errno_value,
                    "injected into %s" % rule.call_name,
                )
        return super().handle_syscall(number, args)

    def report(self):
        """Per-rule ``(call, errno, seen, injected)`` counters."""
        return [
            (rule.call_name, rule.errno_value, rule.seen, rule.injected)
            for rule in self.rules
        ]
