"""The trace agent: prints every system call and signal (Section 3.3.2).

Like the paper's trace agent, this is built on the symbolic system call
level, and — unlike timex — its agent-specific code is proportional to
the size of the entire system interface: a derived method per call is
needed to print each call's name and arguments, since each call has a
different name and typically different parameters.

Each traced call produces two write() system calls on the trace log
(the pre-call line and the result line); trace output is not buffered
across system calls so it will not be lost if the process is killed.
"""

from repro.agents import agent
from repro.kernel.errno import SyscallError, errno_name
from repro.kernel.inode import Dirent
from repro.kernel.ktrace import (
    KTROP_CLEAR,
    KTROP_CLEARALL,
    KTROP_CLEARBUF,
    KTROP_SET,
)
from repro.kernel.ofile import (
    F_DUPFD,
    F_GETFD,
    F_GETFL,
    F_SETFD,
    F_SETFL,
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_NONBLOCK,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.kernel.signals import signal_name
from repro.kernel.stat import Stat
from repro.kernel.clock import Timeval
from repro.toolkit.symbolic import SymbolicSyscall

#: descriptor the trace log is parked at, above the client's range
LOG_FD = 48

_OPEN_FLAG_NAMES = (
    (O_WRONLY, "O_WRONLY"),
    (O_RDWR, "O_RDWR"),
    (O_NONBLOCK, "O_NONBLOCK"),
    (O_APPEND, "O_APPEND"),
    (O_CREAT, "O_CREAT"),
    (O_TRUNC, "O_TRUNC"),
    (O_EXCL, "O_EXCL"),
)

_WHENCE_NAMES = {SEEK_SET: "SEEK_SET", SEEK_CUR: "SEEK_CUR",
                 SEEK_END: "SEEK_END"}

_FCNTL_NAMES = {F_DUPFD: "F_DUPFD", F_GETFD: "F_GETFD", F_SETFD: "F_SETFD",
                F_GETFL: "F_GETFL", F_SETFL: "F_SETFL"}

_KTROP_NAMES = {KTROP_SET: "KTROP_SET", KTROP_CLEAR: "KTROP_CLEAR",
                KTROP_CLEARALL: "KTROP_CLEARALL",
                KTROP_CLEARBUF: "KTROP_CLEARBUF"}


def _open_flags(flags):
    """Decode open(2) flag bits symbolically, as the call's man page would."""
    names = [name for bit, name in _OPEN_FLAG_NAMES if flags & bit]
    if not flags & 0x3:
        names.insert(0, "O_RDONLY")
    return "|".join(names) if names else "O_RDONLY"


def _show(value):
    """Render a system call result compactly."""
    if isinstance(value, (bytes, bytearray)):
        return "[%d bytes]" % len(value)
    if isinstance(value, Stat):
        return "{ino=%d size=%d mode=%o}" % (
            value.st_ino, value.st_size, value.st_mode
        )
    if isinstance(value, Timeval):
        return "%d.%06d" % (value.tv_sec, value.tv_usec)
    if isinstance(value, list) and value and isinstance(value[0], Dirent):
        return "[%d entries]" % len(value)
    return repr(value)


def _data(value):
    """Render a written buffer argument."""
    if isinstance(value, (bytes, bytearray)):
        return "[%d bytes]" % len(value)
    return repr(value)


@agent("trace")
class TraceSymbolicSyscall(SymbolicSyscall):
    """Trace client system calls and signals to a log file."""

    def __init__(self, log_path="/tmp/trace.out"):
        super().__init__()
        self.log_path = log_path
        self.log_fd = None

    def init(self, agentargv):
        if agentargv:
            self.log_path = agentargv[0]
        if self.log_path == "-":
            self.log_fd = 2
        else:
            fd = self.syscall_down(
                "open", self.log_path, O_WRONLY | O_CREAT | O_TRUNC, 0o644
            )
            self.log_fd = self.syscall_down("fcntl", fd, F_DUPFD, LOG_FD)
            self.syscall_down("close", fd)
        super().init(agentargv)

    # -- log plumbing ----------------------------------------------------

    def _emit(self, text):
        self.syscall_down("write", self.log_fd, text.encode())

    def _pre(self, text):
        pid = self.ctx.proc.pid
        self._tls.label = text.split("(", 1)[0]
        self._emit("[%d] %s ...\n" % (pid, text))

    def handle_syscall(self, number, args):
        try:
            result = super().handle_syscall(number, args)
        except SyscallError as err:
            label = getattr(self._tls, "label", None)
            if label is not None:
                self._emit(
                    "[%d] ... %s -> %s\n"
                    % (self.ctx.proc.pid, label, errno_name(err.errno))
                )
                self._tls.label = None
            raise
        label = getattr(self._tls, "label", None)
        if label is not None:
            self._emit(
                "[%d] ... %s -> %s\n"
                % (self.ctx.proc.pid, label, _show(result))
            )
            self._tls.label = None
        return result

    # -- signals ------------------------------------------------------------

    def signal_handler(self, signum, code, context):
        self._emit(
            "[%d] signal %s received\n" % (self.ctx.proc.pid, signal_name(signum))
        )
        super().signal_handler(signum, code, context)

    def init_child(self):
        self._emit("[%d] (child of fork starts)\n" % self.ctx.proc.pid)
        super().init_child()

    # -- one derived method per system call, to print its arguments -----------

    def sys_exit(self, status=0):
        self._pre("exit(%d)" % status)
        return super().sys_exit(status)

    def sys_fork(self, entry=None):
        self._pre("fork()")
        return super().sys_fork(entry)

    def sys_vfork(self, entry=None):
        self._pre("vfork()")
        return super().sys_vfork(entry)

    def sys_wait(self):
        self._pre("wait()")
        return super().sys_wait()

    def sys_execve(self, path, argv=None, envp=None):
        self._pre("execve(%r, %r)" % (path, argv))
        return super().sys_execve(path, argv, envp)

    def sys_read(self, fd, count):
        self._pre("read(%d, %d)" % (fd, count))
        return super().sys_read(fd, count)

    def sys_write(self, fd, data):
        self._pre("write(%d, %s)" % (fd, _data(data)))
        return super().sys_write(fd, data)

    def sys_readv(self, fd, counts):
        self._pre("readv(%d, %r)" % (fd, list(counts)))
        return super().sys_readv(fd, counts)

    def sys_writev(self, fd, buffers):
        self._pre("writev(%d, [%d buffers])" % (fd, len(buffers)))
        return super().sys_writev(fd, buffers)

    def sys_open(self, path, flags=0, mode=0o666):
        self._pre("open(%r, %s, %03o)" % (path, _open_flags(flags), mode))
        return super().sys_open(path, flags, mode)

    def sys_close(self, fd):
        self._pre("close(%d)" % fd)
        return super().sys_close(fd)

    def sys_link(self, path, newpath):
        self._pre("link(%r, %r)" % (path, newpath))
        return super().sys_link(path, newpath)

    def sys_unlink(self, path):
        self._pre("unlink(%r)" % path)
        return super().sys_unlink(path)

    def sys_rename(self, path, newpath):
        self._pre("rename(%r, %r)" % (path, newpath))
        return super().sys_rename(path, newpath)

    def sys_chdir(self, path):
        self._pre("chdir(%r)" % path)
        return super().sys_chdir(path)

    def sys_chroot(self, path):
        self._pre("chroot(%r)" % path)
        return super().sys_chroot(path)

    def sys_mknod(self, path, mode, dev=0):
        self._pre("mknod(%r, %o, %d)" % (path, mode, dev))
        return super().sys_mknod(path, mode, dev)

    def sys_chmod(self, path, mode):
        self._pre("chmod(%r, %03o)" % (path, mode))
        return super().sys_chmod(path, mode)

    def sys_chown(self, path, uid, gid):
        self._pre("chown(%r, %d, %d)" % (path, uid, gid))
        return super().sys_chown(path, uid, gid)

    def sys_access(self, path, mode):
        self._pre("access(%r, %d)" % (path, mode))
        return super().sys_access(path, mode)

    def sys_stat(self, path):
        self._pre("stat(%r)" % path)
        return super().sys_stat(path)

    def sys_lstat(self, path):
        self._pre("lstat(%r)" % path)
        return super().sys_lstat(path)

    def sys_fstat(self, fd):
        self._pre("fstat(%d)" % fd)
        return super().sys_fstat(fd)

    def sys_symlink(self, target, path):
        self._pre("symlink(%r, %r)" % (target, path))
        return super().sys_symlink(target, path)

    def sys_readlink(self, path, count=1024):
        self._pre("readlink(%r, %d)" % (path, count))
        return super().sys_readlink(path, count)

    def sys_truncate(self, path, length):
        self._pre("truncate(%r, %d)" % (path, length))
        return super().sys_truncate(path, length)

    def sys_ftruncate(self, fd, length):
        self._pre("ftruncate(%d, %d)" % (fd, length))
        return super().sys_ftruncate(fd, length)

    def sys_mkdir(self, path, mode=0o777):
        self._pre("mkdir(%r, %03o)" % (path, mode))
        return super().sys_mkdir(path, mode)

    def sys_rmdir(self, path):
        self._pre("rmdir(%r)" % path)
        return super().sys_rmdir(path)

    def sys_utimes(self, path, atime_usec, mtime_usec):
        self._pre("utimes(%r, %d, %d)" % (path, atime_usec, mtime_usec))
        return super().sys_utimes(path, atime_usec, mtime_usec)

    def sys_lseek(self, fd, offset, whence):
        self._pre("lseek(%d, %d, %s)"
                  % (fd, offset, _WHENCE_NAMES.get(whence, whence)))
        return super().sys_lseek(fd, offset, whence)

    def sys_dup(self, fd):
        self._pre("dup(%d)" % fd)
        return super().sys_dup(fd)

    def sys_dup2(self, fd, newfd):
        self._pre("dup2(%d, %d)" % (fd, newfd))
        return super().sys_dup2(fd, newfd)

    def sys_pipe(self):
        self._pre("pipe()")
        return super().sys_pipe()

    def sys_fcntl(self, fd, cmd, arg=0):
        self._pre("fcntl(%d, %s, %r)"
                  % (fd, _FCNTL_NAMES.get(cmd, cmd), arg))
        return super().sys_fcntl(fd, cmd, arg)

    def sys_ioctl(self, fd, request, arg=None):
        self._pre("ioctl(%d, %#x)" % (fd, request))
        return super().sys_ioctl(fd, request, arg)

    def sys_fsync(self, fd):
        self._pre("fsync(%d)" % fd)
        return super().sys_fsync(fd)

    def sys_fchmod(self, fd, mode):
        self._pre("fchmod(%d, %03o)" % (fd, mode))
        return super().sys_fchmod(fd, mode)

    def sys_fchown(self, fd, uid, gid):
        self._pre("fchown(%d, %d, %d)" % (fd, uid, gid))
        return super().sys_fchown(fd, uid, gid)

    def sys_getdirentries(self, fd, count):
        self._pre("getdirentries(%d, %d)" % (fd, count))
        return super().sys_getdirentries(fd, count)

    def sys_select(self, timeout_usec):
        self._pre("select(%d)" % timeout_usec)
        return super().sys_select(timeout_usec)

    def sys_getpid(self):
        self._pre("getpid()")
        return super().sys_getpid()

    def sys_getppid(self):
        self._pre("getppid()")
        return super().sys_getppid()

    def sys_getuid(self):
        self._pre("getuid()")
        return super().sys_getuid()

    def sys_geteuid(self):
        self._pre("geteuid()")
        return super().sys_geteuid()

    def sys_getgid(self):
        self._pre("getgid()")
        return super().sys_getgid()

    def sys_getegid(self):
        self._pre("getegid()")
        return super().sys_getegid()

    def sys_setuid(self, uid):
        self._pre("setuid(%d)" % uid)
        return super().sys_setuid(uid)

    def sys_getgroups(self):
        self._pre("getgroups()")
        return super().sys_getgroups()

    def sys_setgroups(self, groups):
        self._pre("setgroups(%r)" % (groups,))
        return super().sys_setgroups(groups)

    def sys_getpgrp(self):
        self._pre("getpgrp()")
        return super().sys_getpgrp()

    def sys_setpgrp(self, pid=0, pgrp=0):
        self._pre("setpgrp(%d, %d)" % (pid, pgrp))
        return super().sys_setpgrp(pid, pgrp)

    def sys_umask(self, mask):
        self._pre("umask(%03o)" % mask)
        return super().sys_umask(mask)

    def sys_ktrace(self, op, pid=0, arg=0):
        self._pre("ktrace(%s, %d, %d)"
                  % (_KTROP_NAMES.get(op, op), pid, arg))
        return super().sys_ktrace(op, pid, arg)

    def sys_brk(self, addr):
        self._pre("brk(%#x)" % addr)
        return super().sys_brk(addr)

    def sys_getpagesize(self):
        self._pre("getpagesize()")
        return super().sys_getpagesize()

    def sys_gethostname(self):
        self._pre("gethostname()")
        return super().sys_gethostname()

    def sys_getdtablesize(self):
        self._pre("getdtablesize()")
        return super().sys_getdtablesize()

    def sys_kill(self, pid, signum):
        self._pre("kill(%d, %s)" % (pid, signal_name(signum) if signum else "0"))
        return super().sys_kill(pid, signum)

    def sys_killpg(self, pgrp, signum):
        self._pre("killpg(%d, %s)" % (pgrp, signal_name(signum) if signum else "0"))
        return super().sys_killpg(pgrp, signum)

    def sys_sigvec(self, signum, handler, mask=0):
        self._pre("sigvec(%s, %r, %#x)" % (signal_name(signum), handler, mask))
        return super().sys_sigvec(signum, handler, mask)

    def sys_sigblock(self, mask):
        self._pre("sigblock(%#x)" % mask)
        return super().sys_sigblock(mask)

    def sys_sigsetmask(self, mask):
        self._pre("sigsetmask(%#x)" % mask)
        return super().sys_sigsetmask(mask)

    def sys_sigpause(self, mask):
        self._pre("sigpause(%#x)" % mask)
        return super().sys_sigpause(mask)

    def sys_alarm(self, seconds):
        self._pre("alarm(%d)" % seconds)
        return super().sys_alarm(seconds)

    def sys_flock(self, fd, operation):
        self._pre("flock(%d, %d)" % (fd, operation))
        return super().sys_flock(fd, operation)

    def sys_setitimer(self, which, interval_usec, value_usec):
        self._pre("setitimer(%d, %d, %d)" % (which, interval_usec, value_usec))
        return super().sys_setitimer(which, interval_usec, value_usec)

    def sys_getitimer(self, which):
        self._pre("getitimer(%d)" % which)
        return super().sys_getitimer(which)

    def sys_gettimeofday(self):
        self._pre("gettimeofday()")
        return super().sys_gettimeofday()

    def sys_settimeofday(self, sec, usec):
        self._pre("settimeofday(%d, %d)" % (sec, usec))
        return super().sys_settimeofday(sec, usec)

    def sys_getrusage(self, who=0):
        self._pre("getrusage(%d)" % who)
        return super().sys_getrusage(who)

    def sys_sync(self):
        self._pre("sync()")
        return super().sys_sync()
