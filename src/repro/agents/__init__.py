"""Interposition agents built with the toolkit.

The four agents measured in the paper:

* :mod:`~repro.agents.timex` — changes the apparent time of day.
* :mod:`~repro.agents.trace` — prints every system call and signal.
* :mod:`~repro.agents.union_dirs` — union directories.
* :mod:`~repro.agents.dfs_trace` — DFSTrace-compatible file reference
  tracing (the "best available implementation" comparison).

Plus :mod:`~repro.agents.time_symbolic` (the pass-through agent used for
the Table 3-5 micro-benchmarks) and the agents the paper lists as
buildable: :mod:`~repro.agents.monitor`, :mod:`~repro.agents.sandbox`,
:mod:`~repro.agents.txn`, :mod:`~repro.agents.transform` (compression /
encryption), and :mod:`~repro.agents.emul` (foreign-OS emulation).

``AGENTS`` maps agent names to factories for the generic agent loader.
"""

AGENTS = {}


def agent(name):
    """Register an agent class under *name* for the agent loader."""

    def register(cls):
        AGENTS[name] = cls
        cls.agent_name = name
        return cls

    return register


def create(name, *args, **kwargs):
    """Instantiate a registered agent by name."""
    return AGENTS[name](*args, **kwargs)


def load_all():
    """Import every agent module (for registration side effects)."""
    from repro.agents import (  # noqa: F401
        chaos,
        dfs_trace,
        emul,
        faults,
        logical_dev,
        monitor,
        ntrace,
        sandbox,
        time_symbolic,
        timex,
        trace,
        transform,
        txn,
        union_dirs,
    )
    return AGENTS
