"""Logical devices implemented entirely in user space (paper Section 1.4).

The agent interposes on a set of device pathnames and serves their
reads, writes, and ioctls from agent code — the kernel never sees a
device at all.  Built-in logical devices:

* ``/dev/fortune`` — each read returns the next fortune cookie;
* ``/dev/counter`` — reads return an incrementing decimal counter;
  writes set it;
* ``/dev/sink``   — discards writes but counts the bytes (readable as
  a report).

``add_device`` registers any object with ``read``/``write`` methods, so
an agent user can put arbitrary logical devices into the name space of
an unmodified program.
"""

from repro.agents import agent
from repro.kernel import stat as st
from repro.kernel.errno import EINVAL, ENOTTY, SyscallError
from repro.kernel.stat import Stat
from repro.agents.union_dirs import normalize
from repro.toolkit.descriptors import OpenObject
from repro.toolkit.pathnames import Pathname, PathnameSet, PathSymbolicSyscall

FORTUNES = (
    "A program is never finished, merely abandoned.\n",
    "The network is the computer; the computer is down.\n",
    "Interposition is the sincerest form of flattery.\n",
    "You are in a maze of twisty little system calls, all alike.\n",
)


class LogicalDevice:
    """Base logical device: byte-stream semantics in agent memory."""

    def __init__(self, name):
        self.name = name

    def read(self, count):
        """Read from the device (EOF unless overridden)."""
        return b""

    def write(self, data):
        """Write to the device (discarded unless overridden)."""
        return len(data)

    def ioctl(self, request, arg):
        """Device control (ENOTTY unless overridden)."""
        raise SyscallError(ENOTTY)

    def stat_record(self):
        """A character-special ``struct stat``."""
        return Stat(st_mode=st.S_IFCHR | 0o666, st_size=0)


class MessageDevice(LogicalDevice):
    """A device that serves one message per "session": after the message
    is consumed, one read returns EOF (so ``cat`` terminates), and the
    next read starts the next message."""

    def __init__(self, name):
        super().__init__(name)
        self._pending = b""
        self._served = False

    def next_message(self):
        """Produce the next message's bytes."""
        raise NotImplementedError

    def read(self, count):
        """Serve the current message, then one EOF, then the next."""
        if not self._pending:
            if self._served:
                self._served = False
                return b""  # end of this message
            self._pending = self.next_message()
            self._served = True
        chunk, self._pending = self._pending[:count], self._pending[count:]
        return chunk


class FortuneDevice(MessageDevice):
    """Each session reads the next fortune cookie."""
    def __init__(self):
        super().__init__("fortune")
        self._next = 0

    def next_message(self):
        """The next fortune in rotation."""
        fortune = FORTUNES[self._next % len(FORTUNES)]
        self._next += 1
        return fortune.encode()


class CounterDevice(MessageDevice):
    """Reads return an incrementing counter; writes set it."""
    def __init__(self):
        super().__init__("counter")
        self.value = 0

    def next_message(self):
        """The current value (then bump it)."""
        text = ("%d\n" % self.value).encode()
        self.value += 1
        return text

    def write(self, data):
        """Set the counter from the written decimal string."""
        try:
            self.value = int(bytes(data).strip() or b"0")
        except ValueError:
            raise SyscallError(EINVAL, "counter wants a number") from None
        return len(data)


class SinkDevice(MessageDevice):
    """Discards writes but counts the bytes; reads report the total."""
    def __init__(self):
        super().__init__("sink")
        self.bytes_sunk = 0

    def write(self, data):
        """Swallow and count the bytes."""
        self.bytes_sunk += len(data)
        return len(data)

    def next_message(self):
        """A one-line report of bytes sunk so far."""
        return ("sunk %d bytes\n" % self.bytes_sunk).encode()


class _DeviceOpenObject(OpenObject):
    """An open logical device: all operations stay in the agent."""

    def __init__(self, pset, device):
        super().__init__(pset, kind="logical-device")
        self.pset = pset
        self.device = device

    def read(self, fd, count):
        return self.device.read(count)

    def write(self, fd, data):
        if isinstance(data, str):
            data = data.encode()
        return self.device.write(data)

    def lseek(self, fd, offset, whence):
        return 0  # devices are unseekable; lseek is a no-op, as for ttys

    def fstat(self, fd):
        return self.device.stat_record()

    def fsync(self, fd):
        return 0

    def ftruncate(self, fd, length):
        raise SyscallError(EINVAL)

    def fchmod(self, fd, mode):
        return 0

    def fchown(self, fd, uid, gid):
        return 0

    def ioctl(self, fd, request, arg):
        return self.device.ioctl(request, arg)

    def getdirentries(self, fd, count):
        raise SyscallError(EINVAL, "not a directory")

    def close_slot(self, fd):
        return self.pset.syscall_down("close", fd)


class DevicePathname(Pathname):
    """A pathname that names a logical device."""
    def __init__(self, pset, logical, device):
        super().__init__(pset, logical)
        self.device = device

    def open(self, flags=0, mode=0o666):
        # Reserve a real descriptor slot so the fd number space stays
        # consistent; /dev/null is a convenient anchor.
        fd = self.pset.syscall_down("open", "/dev/null", flags & 3, 0)
        return fd, _DeviceOpenObject(self.pset, self.device)

    def stat(self):
        return self.device.stat_record()

    def lstat(self):
        return self.device.stat_record()

    def access(self, mode):
        return 0


class DevicePathnameSet(PathnameSet):
    """A pathname set that overlays logical devices on the name space."""
    def __init__(self):
        super().__init__()
        self.devices = {}
        self.cwd = "/"

    def add_device(self, path, device):
        """Place *device* at *path* in the client's view."""
        self.devices[normalize(path)] = device

    def getpn(self, path, flags=0):
        logical = normalize(path, self.cwd)
        device = self.devices.get(logical)
        if device is not None:
            return DevicePathname(self, logical, device)
        return Pathname(self, path)

    def chdir(self, path):
        result = super().chdir(path)
        self.cwd = normalize(path, self.cwd)
        return result


@agent("devices")
class LogicalDeviceAgent(PathSymbolicSyscall):
    """Provide logical devices to unmodified programs."""

    DESCRIPTOR_SET_CLASS = DevicePathnameSet

    def init(self, agentargv):
        # Install the built-in devices at paths not already claimed.
        defaults = (
            ("/dev/fortune", FortuneDevice),
            ("/dev/counter", CounterDevice),
            ("/dev/sink", SinkDevice),
        )
        for path, factory in defaults:
            if normalize(path) not in self.pset.devices:
                self.add_device(path, factory())
        super().init(agentargv)

    def add_device(self, path, device):
        """Place *device* at *path* for this agent's clients."""
        self.pset.add_device(path, device)
