"""The emulation agent: run "foreign-OS" binaries on the native system.

The paper's operating-system-emulation example (Section 1.4): "alternate
system call implementations can be used to concurrently run binaries
from variant operating systems on the same platform — for instance, to
run ULTRIX, HP-UX, or UNIX System V binaries in a Mach/BSD environment",
and its numeric-layer example: "one range of system call numbers could
be remapped to calls on a different range at this level."

Our foreign dialect ("HPX") uses system call numbers offset by 1000 and
a different errno numbering.  The agent registers interest in the
foreign range at the numeric layer, remaps each call to its native
number, forwards it down, and translates native errnos back into the
foreign convention — the application-visible behaviour of a foreign
kernel, implemented entirely in user space.
"""

from repro.agents import agent
from repro.kernel.errno import SyscallError
from repro.kernel.sysent import MAX_BSD_SYSCALL, bsd_numbers
from repro.toolkit.numeric import NumericSyscall, marshal_result

#: the foreign dialect's system call numbers: native + FOREIGN_BASE
FOREIGN_BASE = 1000

#: the foreign dialect's errno numbering differs for a few values
#: (native -> foreign), as real variant Unixes did
NATIVE_TO_FOREIGN_ERRNO = {
    2: 102,   # ENOENT
    9: 109,   # EBADF
    13: 113,  # EACCES
    17: 117,  # EEXIST
    22: 122,  # EINVAL
}
FOREIGN_TO_NATIVE_ERRNO = {v: k for k, v in NATIVE_TO_FOREIGN_ERRNO.items()}


def foreign_number(native):
    """The foreign dialect's number for a native call."""
    return native + FOREIGN_BASE


def foreign_errno(native_errno):
    """Translate a native errno into the foreign convention."""
    return NATIVE_TO_FOREIGN_ERRNO.get(native_errno, native_errno)


@agent("emul")
class EmulAgent(NumericSyscall):
    """Remap the foreign syscall number range onto the native interface."""

    def __init__(self):
        super().__init__()
        self.translated = 0

    def init(self, agentargv):
        low = foreign_number(1)
        high = foreign_number(MAX_BSD_SYSCALL)
        self.register_interest_range(low, high)

    def syscall(self, number, args, rv, regs):
        native = number - FOREIGN_BASE
        if native not in set(bsd_numbers()):
            return foreign_errno(78)  # ENOSYS, in foreign numbering
        self.translated += 1
        try:
            value = self.syscall_down_numeric(native, args)
        except SyscallError as err:
            return foreign_errno(err.errno)
        # marshal under the NATIVE number so two-register calls work
        marshal_result(native, value, rv)
        return 0

    def handle_syscall(self, number, args):
        # Same glue as the base class, but errors surface with foreign
        # errno values, as a foreign binary expects.
        from repro.toolkit.numeric import EmulRegs, unmarshal_result

        rv = [0, 0]
        error = self.syscall(number, list(args), rv, EmulRegs(self.ctx))
        if error:
            raise SyscallError(error)
        return unmarshal_result(number - FOREIGN_BASE, rv)


class ForeignContext:
    """A user context whose trap instruction uses foreign numbering.

    Wrapping a native context with this is our stand-in for loading a
    foreign binary: the program's "instructions" (trap numbers) follow
    the foreign ABI, and only the emulation agent makes them runnable.
    """

    def __init__(self, ctx):
        self._ctx = ctx
        self.kernel = ctx.kernel
        self.proc = ctx.proc

    def trap(self, number, *args):
        """Issue a *foreign-numbered* system call."""
        return self._ctx.trap(number + FOREIGN_BASE, *args)

    def htg(self, number, *args):
        """Native downcall (the emulator's own escape hatch)."""
        return self._ctx.htg(number, *args)

    def consume_cpu(self, usec):
        """Burn user CPU time, as the native context does."""
        self._ctx.consume_cpu(usec)
