"""The union agent: union directories (paper Section 3.3.3).

Provides the ability to view the contents of a list of actual
directories as if their contents were merged into a single union
directory — the "mount a search list of directories" enhancement the
paper's introduction motivates with source/object directories under
make.

Agent-specific code is three things, exactly as in the paper:

* a derived :class:`UnionPathname` that maps operations using names of
  union directories to operations on the underlying objects,
* a derived :class:`UnionDirectory` whose ``next_direntry()`` makes
  ``getdirentries()`` list the merged logical contents, and
* an initialization routine accepting union specifications
  (``logical=member1:member2:...``) from the agent command line.

Everything else — the other ~70 descriptor- and pathname-using calls —
is inherited from the toolkit objects that encapsulate those
abstractions.
"""

from repro.agents import agent
from repro.kernel.errno import ENOENT, SyscallError
from repro.kernel.ofile import O_CREAT, O_RDONLY
from repro.toolkit.directory import Directory
from repro.toolkit.pathnames import Pathname, PathnameSet, PathSymbolicSyscall


def normalize(path, cwd="/"):
    """Resolve a path string to a canonical absolute path (textually)."""
    if not path.startswith("/"):
        path = cwd.rstrip("/") + "/" + path
    parts = []
    for component in path.split("/"):
        if component in ("", "."):
            continue
        if component == "..":
            if parts:
                parts.pop()
            continue
        parts.append(component)
    return "/" + "/".join(parts)


class UnionPathname(Pathname):
    """A pathname inside a union directory.

    ``members`` lists the candidate real paths in search order; the
    first member in which the name exists wins, and names are created
    in the first member.
    """

    def __init__(self, pset, logical, members):
        super().__init__(pset, members[0])
        self.logical = logical
        self.members = members
        self.path = self._resolve()

    def _resolve(self):
        for candidate in self.members:
            try:
                self.pset.syscall_down("lstat", candidate)
                return candidate
            except SyscallError as err:
                if err.errno != ENOENT:
                    raise
        return self.members[0]

    def open(self, flags=0, mode=0o666):
        if flags & O_CREAT:
            # Creation goes to the first member unless the name already
            # exists somewhere in the search list.
            existing = self.path
            try:
                self.pset.syscall_down("lstat", existing)
            except SyscallError:
                self.path = self.members[0]
        if self.pset.is_union_root(self.logical):
            # Opening the union directory itself: merged iteration.
            fd = self.pset.syscall_down("open", self.path, O_RDONLY, 0)
            return fd, UnionDirectory(
                self.pset, self, self.pset.union_members(self.logical)
            )
        return super().open(flags, mode)


class UnionDirectory(Directory):
    """An open union directory: iterates members, merging their entries."""

    def __init__(self, dset, pathname, members):
        super().__init__(dset, pathname)
        self.members = list(members)
        self._member_index = 0
        self._member_fd = None
        self._pending = []
        self._seen = set()

    def next_direntry(self, fd):
        """Produce the next logical entry across all member directories.

        Entries appearing in an earlier member shadow same-named entries
        in later members; ``.`` and ``..`` come from the first member
        only.  (And yes, the per-member iteration is itself accomplished
        via the underlying getdirentries implementation.)
        """
        while True:
            while self._pending:
                entry = self._pending.pop(0)
                name = entry.d_name
                if name in (".", "..") and self._member_index > 0:
                    continue
                if name in self._seen:
                    continue  # an earlier member shadows this entry
                self._seen.add(name)
                self.direntry = entry
                return 1
            if self._member_fd is None:
                if self._member_index >= len(self.members):
                    self.direntry = None
                    return 0
                member = self.members[self._member_index]
                try:
                    self._member_fd = self.dset.syscall_down(
                        "open", member, O_RDONLY, 0
                    )
                except SyscallError:
                    self._member_index += 1
                    continue
            batch = self.dset.syscall_down("getdirentries", self._member_fd, 16)
            if not batch:
                self.dset.syscall_down("close", self._member_fd)
                self._member_fd = None
                self._member_index += 1
                continue
            self._pending.extend(batch)

    def rewind(self, fd):
        if self._member_fd is not None:
            self.dset.syscall_down("close", self._member_fd)
        self._member_fd = None
        self._member_index = 0
        self._pending = []
        self._seen = set()
        self.direntry = None

    def last_close(self):
        if self._member_fd is not None:
            self.dset.syscall_down("close", self._member_fd)
            self._member_fd = None


class UnionPathnameSet(PathnameSet):
    """A pathname set whose ``getpn()`` rearranges the name space."""

    PATHNAME_CLASS = UnionPathname
    DIRECTORY_CLASS = Directory

    def __init__(self, unions=None):
        super().__init__()
        #: logical path -> list of member directory paths
        self.unions = dict(unions or {})
        self.cwd = "/"

    def add_union(self, logical, members):
        """Mount *members* (search order) as the union at *logical*."""
        self.unions[normalize(logical)] = [normalize(m) for m in members]

    def is_union_root(self, logical):
        """True when *logical* is a configured union directory."""
        return logical in self.unions

    def union_members(self, logical):
        """The member list for a union directory."""
        return self.unions[logical]

    def getpn(self, path, flags=0):
        full = normalize(path, self.cwd)
        if full in self.unions:
            return UnionPathname(self, full, list(self.unions[full]))
        for logical, members in self.unions.items():
            prefix = logical.rstrip("/") + "/"
            if full.startswith(prefix):
                rest = full[len(prefix):]
                candidates = [m.rstrip("/") + "/" + rest for m in members]
                return UnionPathname(self, full, candidates)
        return Pathname(self, path)

    def chdir(self, path):
        result = super().chdir(path)
        self.cwd = normalize(path, self.cwd)
        return result


@agent("union")
class UnionAgent(PathSymbolicSyscall):
    """The union directories agent."""

    DESCRIPTOR_SET_CLASS = UnionPathnameSet

    def init(self, agentargv):
        for spec in agentargv:
            logical, _, member_spec = spec.partition("=")
            members = [m for m in member_spec.split(":") if m]
            if not members:
                raise ValueError("bad union spec %r" % spec)
            self.pset.add_union(logical, members)
        super().init(agentargv)

    def add_union(self, logical, members):
        """Configure a union directory on this agent."""
        self.pset.add_union(logical, members)
