"""The 4.3BSD system call table: numbers, names, and argument shapes.

Numbers follow 4.3BSD's ``syscalls.master`` for every call we implement,
so agents written against the numeric layer (`register_interest(5)` for
``open``) read like their 1992 counterparts.

Each argument is described as ``(name, kind)`` where *kind* drives both
the symbolic layer's decode and the trace agent's formatting:

``int``    plain integer
``str``    a pathname or other string
``bytes``  a data buffer (written data; read buffers are return values)
``oflags`` open(2) flag bits
``mode``   a permission mode (printed in octal)
``sig``    a signal number (printed symbolically)
``fd``     a file descriptor
``any``    anything else (printed with ``repr``)
"""

from repro.kernel.errno import ENOSYS, SyscallError


class SysentEntry:
    """One row of the system call table."""

    __slots__ = ("number", "name", "argspec", "nargs")

    def __init__(self, number, name, argspec):
        self.number = number
        self.name = name
        self.argspec = tuple(argspec)
        self.nargs = len(self.argspec)

    def __repr__(self):
        return "<sysent %d %s/%d>" % (self.number, self.name, self.nargs)


def _arg(spec):
    name, kind = spec.split(":")
    return (name, kind)


def _entry(number, name, *specs):
    return SysentEntry(number, name, [_arg(s) for s in specs])


_TABLE = [
    _entry(1, "exit", "status:int"),
    # fork carries the child's entry point: the simulation's stand-in for
    # the child resuming at the same program counter (see DESIGN.md).
    _entry(2, "fork", "entry:any"),
    _entry(3, "read", "fd:fd", "count:int"),
    _entry(4, "write", "fd:fd", "data:bytes"),
    _entry(5, "open", "path:str", "flags:oflags", "mode:mode"),
    _entry(6, "close", "fd:fd"),
    _entry(7, "wait"),
    _entry(9, "link", "path:str", "newpath:str"),
    _entry(10, "unlink", "path:str"),
    _entry(12, "chdir", "path:str"),
    _entry(14, "mknod", "path:str", "mode:mode", "dev:int"),
    _entry(15, "chmod", "path:str", "mode:mode"),
    _entry(16, "chown", "path:str", "uid:int", "gid:int"),
    _entry(17, "brk", "addr:int"),
    _entry(19, "lseek", "fd:fd", "offset:int", "whence:int"),
    _entry(20, "getpid"),
    _entry(23, "setuid", "uid:int"),
    _entry(24, "getuid"),
    _entry(25, "geteuid"),
    _entry(27, "alarm", "seconds:int"),
    _entry(33, "access", "path:str", "mode:int"),
    _entry(36, "sync"),
    _entry(37, "kill", "pid:int", "sig:sig"),
    _entry(38, "stat", "path:str"),
    _entry(39, "getppid"),
    _entry(40, "lstat", "path:str"),
    _entry(41, "dup", "fd:fd"),
    _entry(42, "pipe"),
    _entry(43, "getegid"),
    # 4.3BSD's kernel trace facility, backed by repro.obs (number 45
    # matches real 4.3BSD's ktrace slot).
    _entry(45, "ktrace", "op:int", "pid:int", "arg:int"),
    _entry(47, "getgid"),
    _entry(48, "killpg", "pgrp:int", "sig:sig"),
    _entry(54, "ioctl", "fd:fd", "request:int", "arg:any"),
    _entry(57, "symlink", "target:str", "path:str"),
    _entry(58, "readlink", "path:str", "count:int"),
    _entry(59, "execve", "path:str", "argv:any", "envp:any"),
    _entry(60, "umask", "mask:mode"),
    _entry(61, "chroot", "path:str"),
    _entry(62, "fstat", "fd:fd"),
    _entry(64, "getpagesize"),
    _entry(66, "vfork", "entry:any"),
    _entry(79, "getgroups"),
    _entry(80, "setgroups", "groups:any"),
    _entry(81, "getpgrp"),
    _entry(83, "setitimer", "which:int", "interval_usec:int", "value_usec:int"),
    _entry(86, "getitimer", "which:int"),
    _entry(82, "setpgrp", "pid:int", "pgrp:int"),
    _entry(87, "gethostname"),
    _entry(89, "getdtablesize"),
    _entry(90, "dup2", "fd:fd", "newfd:fd"),
    _entry(92, "fcntl", "fd:fd", "cmd:int", "arg:any"),
    _entry(93, "select", "timeout_usec:int"),
    _entry(95, "fsync", "fd:fd"),
    _entry(108, "sigvec", "sig:sig", "handler:any", "mask:int"),
    _entry(109, "sigblock", "mask:int"),
    _entry(110, "sigsetmask", "mask:int"),
    _entry(111, "sigpause", "mask:int"),
    _entry(116, "gettimeofday"),
    _entry(120, "readv", "fd:fd", "counts:any"),
    _entry(121, "writev", "fd:fd", "buffers:any"),
    _entry(117, "getrusage", "who:int"),
    _entry(122, "settimeofday", "sec:int", "usec:int"),
    _entry(123, "fchown", "fd:fd", "uid:int", "gid:int"),
    _entry(124, "fchmod", "fd:fd", "mode:mode"),
    _entry(128, "rename", "path:str", "newpath:str"),
    _entry(129, "truncate", "path:str", "length:int"),
    _entry(130, "ftruncate", "fd:fd", "length:int"),
    _entry(131, "flock", "fd:fd", "operation:int"),
    _entry(136, "mkdir", "path:str", "mode:mode"),
    _entry(137, "rmdir", "path:str"),
    _entry(138, "utimes", "path:str", "atime_usec:int", "mtime_usec:int"),
    _entry(156, "getdirentries", "fd:fd", "count:int"),
    # Mach-flavoured extension traps used by the interposition machinery;
    # numbered above the BSD range as Mach 2.5 did.
    _entry(200, "task_set_emulation", "numbers:any", "handler:any"),
    _entry(201, "task_set_signal_redirect", "handler:any"),
    _entry(202, "jump_to_image", "path:str", "argv:any", "envp:any"),
    _entry(203, "image_header", "path:str"),
    _entry(204, "task_get_emulation", "number:int"),
    _entry(205, "task_get_descriptors"),
    # Our stand-in for ktrace's vnode stream: readers drain the kernel
    # ring buffer through a trap instead of a file.
    _entry(206, "ktrace_read", "limit:int"),
    _entry(207, "kernel_stats"),
]

SYSCALLS = {entry.number: entry for entry in _TABLE}
BY_NAME = {entry.name: entry for entry in _TABLE}

#: highest BSD call number (the Mach extension traps sit above this)
MAX_BSD_SYSCALL = 199

#: calls whose value fills both return registers rv[0] and rv[1]
TWO_REGISTER_CALLS = frozenset(
    BY_NAME[name].number for name in ("fork", "vfork", "pipe", "wait")
)


def entry_for(number):
    """Look up a table entry, raising ``ENOSYS`` for unknown numbers."""
    try:
        return SYSCALLS[number]
    except KeyError:
        raise SyscallError(ENOSYS, "syscall %r" % (number,)) from None


def number_of(name):
    """The call number for *name* (KeyError for unknown names)."""
    return BY_NAME[name].number


def name_of(number):
    """The call name for *number* (a placeholder if unknown)."""
    entry = SYSCALLS.get(number)
    return entry.name if entry else "syscall#%r" % (number,)


def bsd_numbers():
    """All implemented BSD system call numbers (excluding Mach traps)."""
    return sorted(n for n in SYSCALLS if n <= MAX_BSD_SYSCALL)
