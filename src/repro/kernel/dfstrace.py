"""In-kernel DFSTrace: the monolithic baseline (paper Section 3.5.3).

The original DFSTrace system (Mummert, for the Coda project) collected
file reference traces with data collection code compiled into the
kernel — 26 kernel files modified under conditional compilation, four
machine-dependent files per machine type.  Its agent-based equivalent
(:mod:`repro.agents.dfs_trace`) needs no kernel modification.

This module is our kernel-resident implementation: the record format
(shared with the agent so traces are comparable), and a collector wired
into the system call dispatch path that appends to an in-kernel buffer
— which is why it is fast, and why it had to modify the kernel.
"""

#: system calls DFSTrace records (file reference operations)
TRACED_CALLS = frozenset(
    """open close lseek stat lstat access chdir chroot execve exit fork
       link unlink rename mkdir rmdir symlink readlink chmod chown
       truncate ftruncate utimes""".split()
)


class DFSRecord:
    """One file-reference trace record."""

    __slots__ = ("time_usec", "pid", "opcode", "error", "detail")

    def __init__(self, time_usec, pid, opcode, error, detail):
        self.time_usec = time_usec
        self.pid = pid
        self.opcode = opcode
        self.error = error
        self.detail = detail

    def to_line(self):
        """Serialise as one text line of the trace format."""
        return "%d %d %s %d %s" % (
            self.time_usec,
            self.pid,
            self.opcode,
            self.error,
            self.detail,
        )

    @classmethod
    def from_line(cls, line):
        """Parse one text line back into a record."""
        parts = line.split(" ", 4)
        detail = parts[4] if len(parts) > 4 else ""
        return cls(int(parts[0]), int(parts[1]), parts[2], int(parts[3]), detail)

    def __repr__(self):
        return "<DFSRecord %s pid=%d %s>" % (self.opcode, self.pid, self.detail)


def parse_trace(text):
    """Parse a trace log back into records."""
    records = []
    for line in text.splitlines():
        if not line.strip():
            continue
        parts = line.split(" ", 4)
        records.append(
            DFSRecord(
                int(parts[0]),
                int(parts[1]),
                parts[2],
                int(parts[3]),
                parts[4] if len(parts) > 4 else "",
            )
        )
    return records


def detail_for(opcode, args, result):
    """Render a call's arguments into the record's detail field.

    Shared by the kernel collector and the interposition agent so the
    two implementations produce comparable traces.
    """
    if opcode in ("open",):
        flags = args[1] if len(args) > 1 else 0
        fd = result if isinstance(result, int) else -1
        return "%s flags=%#x fd=%d" % (args[0], flags, fd)
    if opcode in ("close",):
        return "fd=%d" % args[0]
    if opcode == "lseek":
        return "fd=%d offset=%d whence=%d" % (args[0], args[1], args[2])
    if opcode == "ftruncate":
        return "fd=%d length=%d" % (args[0], args[1])
    if opcode in ("link", "rename", "symlink"):
        return "%s %s" % (args[0], args[1])
    if opcode == "fork":
        pid = result[0] if isinstance(result, tuple) else result
        return "child=%s" % pid
    if opcode == "exit":
        return "status=%s" % (args[0] if args else 0)
    if opcode == "execve":
        return str(args[0])
    if args:
        return str(args[0])
    return ""


class KernelDFSTrace:
    """The in-kernel collector: hooks in the dispatch path, kernel buffer.

    Enable with :func:`enable`; drain with :meth:`drain` (the user-space
    collector daemon's role).  Records are appended with the kernel lock
    already held, with no extra system calls — the source of the
    monolithic implementation's performance edge.
    """

    def __init__(self, buffer_limit=1_000_000):
        self.records = []
        self.buffer_limit = buffer_limit
        self.dropped = 0

    def record(self, kernel, proc, entry, args, result, error):
        """Dispatch-path hook: append a record if the call is traced."""
        if entry.name not in TRACED_CALLS:
            return
        if len(self.records) >= self.buffer_limit:
            self.dropped += 1
            return
        self.records.append(
            DFSRecord(
                kernel.clock.usec(),
                proc.pid,
                entry.name,
                error.errno if error is not None else 0,
                detail_for(entry.name, args, result),
            )
        )

    def drain(self):
        """Hand the buffered records to the collector daemon."""
        records = self.records
        self.records = []
        return records

    def to_text(self):
        """The buffer serialised in the trace file format."""
        return "\n".join(record.to_line() for record in self.records) + (
            "\n" if self.records else ""
        )


def enable(kernel, buffer_limit=1_000_000):
    """Compile-in the tracing hooks (flip the runtime switch)."""
    collector = KernelDFSTrace(buffer_limit)
    kernel.dfstrace = collector
    return collector


def disable(kernel):
    """Remove the tracing hooks; returns the collector."""
    collector = kernel.dfstrace
    kernel.dfstrace = None
    return collector
