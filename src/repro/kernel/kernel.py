"""The kernel proper: process table, dispatch, sleep/wakeup, boot.

One :class:`Kernel` is one booted machine.  Simulated processes run on
host threads, serialised by a single kernel lock (the classic big-lock
BSD kernel); blocking system calls sleep on one shared sleep queue and
recheck their wait condition on every wakeup.
"""

import threading
import traceback

from repro.kernel import cred as credmod
from repro.kernel import signals as sig
from repro.kernel import stat as st
from repro.kernel.clock import Clock
from repro.kernel.devices import ConsoleDevice, DeviceSwitch, NullDevice, ZeroDevice
from repro.kernel.errno import (
    EACCES,
    EBUSY,
    EINTR,
    EINVAL,
    ENOENT,
    ENOEXEC,
    ENOSYS,
    ENOTDIR,
    ESRCH,
    SyscallError,
)
from repro.kernel.fastpath import FastPathConfig
from repro.kernel.faultsite import MachineCrash
from repro.kernel.namecache import NameCache
from repro.kernel.namei import namei
from repro.kernel.ofile import (
    DeviceFile,
    FifoEnd,
    InodeFile,
    open_mode_bits,
)
from repro.kernel.pipe import Pipe
from repro.kernel.proc import (
    ExecImage,
    Process,
    ProcessExit,
    RUNNING,
    STOPPED,
    ZOMBIE,
    wait_status_exited,
    wait_status_signaled,
)
from repro.kernel.sysent import entry_for, number_of
from repro.kernel.syscalls import DISPATCH
from repro.kernel.trap import UserContext
from repro.kernel.ufs import Filesystem
from repro.obs import events as obs_events

SYS_EXIT = number_of("exit")

#: marker line prefix for native "binaries" in the simulated filesystem
EXEC_MAGIC = "#!repro-exec "


class ProgramCrash(RuntimeError):
    """A simulated program raised an unexpected host exception."""


class _HostContext:
    """Root-credential resolution context for host-side helpers."""

    def __init__(self, kernel):
        self.cred = credmod.Cred(0, 0)
        self.kernel = kernel

    @property
    def cwd(self):
        return self.kernel.rootfs.root

    @property
    def root_dir(self):
        return self.kernel.rootfs.root


class Kernel:
    """A booted simulated machine."""

    def __init__(self, hostname="mach25.repro", page_size=4096,
                 fastpaths=None, obs=None, guard=None, journal=False):
        self.hostname = hostname
        self.page_size = page_size
        self.clock = Clock()
        #: crash tag once the machine has halted (see :meth:`crash` and
        #: :mod:`repro.kernel.faultsite`); None while the machine runs.
        #: Every kernel-world entry checks it, so surviving threads die
        #: silently instead of mutating a halted machine's state.
        self.crashed = None
        #: whether volumes this kernel creates get a write-ahead journal
        #: (see :mod:`repro.kernel.journal`); False — the default —
        #: keeps every metadata path bit-for-bit the seed
        self.journal_on = bool(journal)
        #: flag word for the kernel fast paths (see repro.kernel.fastpath);
        #: accepts a FastPathConfig, a spec string ("none", "namecache,..."),
        #: or None for the $REPRO_FASTPATH / all-on default
        self.fastpaths = FastPathConfig.parse(fastpaths)
        #: the 4.3BSD directory name lookup cache, shared by every volume
        #: this kernel creates (None when the fast path is off)
        self.namecache = (NameCache(self.fastpaths.namecache_capacity)
                          if self.fastpaths.namecache else None)
        self.rootfs = Filesystem(self.clock, dev=1,
                                 namecache=self.namecache,
                                 zero_copy=self.fastpaths.zero_copy)
        if self.journal_on:
            self.rootfs.attach_journal()
        self._next_dev = 2
        #: every volume this kernel created, for machine-wide toggles
        #: (fault-site arming); umount does not remove entries — a
        #: detached volume keeps its inodes and may be re-mounted
        self._volumes = [self.rootfs]

        self._lock = threading.Lock()
        self._sleepq = threading.Condition(self._lock)
        self._sleepers = 0
        self._watchdog_seconds = 30.0

        self._procs = {}
        self._next_pid = 1
        self._threads = []
        self.panics = []
        #: application system calls issued (trap instructions, not htg
        #: downcalls) — the paper's per-workload syscall counts
        self.trap_total = 0
        #: traps dispatched through the precomputed fast path (a subset
        #: of trap_total; see repro.kernel.trap.build_fast_dispatch)
        self.trap_fast_total = 0
        #: interposed traps dispatched through a compiled flat chain (a
        #: subset of trap_total; see repro.kernel.compile)
        self.trap_compiled_total = 0
        #: agent downcalls dispatched through a compiled chain instead
        #: of the htg round trip (disjoint from trap_total, which never
        #: counts downcalls)
        self.down_compiled_total = 0
        #: fork/execve accounting for the make workload's "64 pairs"
        self.fork_total = 0
        self.exec_total = 0

        self._programs = {}

        self.devswitch = DeviceSwitch()
        self.console = ConsoleDevice()
        self._console_rdev = self.devswitch.register(self.console)
        self._null_rdev = self.devswitch.register(NullDevice())
        self._zero_rdev = self.devswitch.register(ZeroDevice())

        #: in-kernel DFSTrace collector (None unless enabled); the
        #: monolithic baseline for the Section 3.5.3 comparison
        self.dfstrace = None

        #: observability switchboard (see :mod:`repro.obs`); None — the
        #: default — keeps every instrumentation site down to a single
        #: ``is None`` test, the subsystem's own pay-per-use guarantee.
        #: The *obs* constructor argument enables it at boot: ``True``
        #: for metrics, or a comma-separated feature spec out of
        #: ``"metrics"`` / ``"trace"`` / ``"spans"``.
        self.obs = None

        #: armed kernel fault sites (see :mod:`repro.kernel.faultsite`);
        #: None — the default — keeps every site to one ``is None`` test
        self.faultsites = None

        #: deterministic record/replay (see :mod:`repro.obs.recorder`);
        #: None — the default — keeps the trap spine, the sleep queue,
        #: and every allocator down to one ``is None`` test.  Installed
        #: by ``Recorder.attach`` or the ``obs="...,record"`` spec, so
        #: it must exist before the spec below is processed.
        self.recorder = None

        #: virtual-clock sampling profiler (see :mod:`repro.obs.profile`);
        #: None — the default — keeps the clock-advance sample hooks to
        #: one ``is None`` test.  Must exist before the obs spec below
        #: (``obs="...,profile"`` attaches one at boot).
        self.profiler = None

        #: declarative watchpoints (see :mod:`repro.obs.watch`); None —
        #: the default — keeps the metric-flush hook to one ``is None``
        #: test per trap
        self.watches = None

        #: the mounted /proc pseudo-filesystem (see
        #: :mod:`repro.kernel.procfs`), or None when not mounted; set
        #: and cleared by ``mount_procfs``/``umount_procfs``
        self.procfs = None

        #: virtual time at boot, for /proc/uptime
        self.boot_usec = self.clock.usec()

        if obs:
            from repro.obs.core import enable_from_spec
            enable_from_spec(self, obs)

        #: trap-spine agent fault containment (see
        #: :mod:`repro.toolkit.guard`); None — the default — keeps the
        #: guard hook to one ``is None`` test on interposed calls, the
        #: same pay-per-use discipline as obs.  The *guard* constructor
        #: argument installs a rail at boot from a policy spec
        #: (``"fail-stop"``, ``"fail-open"``, ``"quarantine:3"``).
        self.guard = None
        if guard:
            from repro.toolkit.guard import install_guard
            install_guard(self, guard)

        self._host = _HostContext(self)
        self._make_dev_tree()

    # ------------------------------------------------------------------
    # boot-time filesystem setup
    # ------------------------------------------------------------------

    def _make_dev_tree(self):
        root = self.rootfs.root
        for name in ("dev", "tmp", "bin", "usr", "etc", "home"):
            self.rootfs.mkdir_in(root, name, 0o755, self._host.cred)
        tmp = self.lookup_host("/tmp")
        tmp.mode = (tmp.mode & st.S_IFMT) | 0o1777
        self.mkdir_p("/usr/bin")
        self.mkdir_p("/usr/lib")
        self.mkdir_p("/usr/include")
        self.mkdir_p("/usr/tmp")
        usr_tmp = self.lookup_host("/usr/tmp")
        usr_tmp.mode = (usr_tmp.mode & st.S_IFMT) | 0o1777
        self.mknod_host("/dev/console", "char", self._console_rdev)
        self.mknod_host("/dev/tty", "char", self._console_rdev)
        self.mknod_host("/dev/null", "char", self._null_rdev)
        self.mknod_host("/dev/zero", "char", self._zero_rdev)
        self.write_file(
            "/etc/passwd",
            "root:*:0:0:Operator:/:/bin/sh\n"
            "mbj:*:101:10:Michael B. Jones:/home/mbj:/bin/sh\n",
        )
        self.mkdir_p("/home/mbj")

    # ------------------------------------------------------------------
    # host-side filesystem helpers (root credentials, no process needed)
    # ------------------------------------------------------------------

    def lookup_host(self, path, follow=True):
        """Host-side: resolve *path* with root credentials."""
        return namei(self._host, path, follow=follow).require()

    def mkdir_p(self, path):
        """Host-side: create *path* and any missing ancestors."""
        parts = [p for p in path.split("/") if p]
        current = "/"
        for part in parts:
            current = current.rstrip("/") + "/" + part
            try:
                self.lookup_host(current)
            except SyscallError:
                result = namei(self._host, current, want_parent=True)
                result.parent.fs.mkdir_in(
                    result.parent, result.name, 0o755, self._host.cred
                )

    def mknod_host(self, path, kind, rdev):
        """Host-side: place a device node at *path*."""
        result = namei(self._host, path, want_parent=True)
        fs = result.parent.fs
        node = fs.create_device(0o666, self._host.cred, kind, rdev)
        try:
            fs.link(result.parent, result.name, node)
        except SyscallError:
            # Unwind: never leak the fresh device node in the table.
            fs.maybe_reclaim(node)
            raise
        return node

    def write_file(self, path, data, mode=0o644):
        """Host-side: create/overwrite *path* with *data*."""
        if isinstance(data, str):
            data = data.encode()
        result = namei(self._host, path, want_parent=True)
        if result.inode is None:
            fs = result.parent.fs
            node = fs.create_file(mode, self._host.cred)
            try:
                fs.link(result.parent, result.name, node)
            except SyscallError:
                # Unwind: same shape as creat — the fresh inode must
                # not survive a failed link.
                fs.maybe_reclaim(node)
                raise
        else:
            node = result.inode
        node.data[:] = data
        node.touch_mtime(self.clock.usec())
        return node

    def read_file(self, path):
        """Host-side: the contents of the regular file at *path*."""
        node = self.lookup_host(path)
        if not node.is_reg():
            raise SyscallError(EINVAL, "%s is not a regular file" % path)
        return bytes(node.data)

    # ------------------------------------------------------------------
    # program registry and image loading
    # ------------------------------------------------------------------

    def register_program(self, name, factory):
        """Register a program factory: ``factory(ctx, argv, envp) -> status``."""
        if not callable(factory):
            raise TypeError("program factory must be callable")
        factory.program_name = name
        self._programs[name] = factory

    def install_binary(self, path, program_name, mode=0o755):
        """Write an executable file whose image is a registered program."""
        if program_name not in self._programs:
            raise KeyError("program %r is not registered" % program_name)
        self.write_file(path, EXEC_MAGIC + program_name + "\n", mode=mode)
        self.lookup_host(path).mode = st.S_IFREG | mode

    def load_image_locked(self, proc, path, _depth=0):
        """Resolve *path* to ``(factory, argv_prefix)`` or fail as exec would."""
        inode = namei(proc, path, follow=True).require()
        if inode.is_dir():
            raise SyscallError(EACCES, path)
        if not inode.is_reg():
            raise SyscallError(EACCES, path)
        credmod.check_access(inode, proc.cred, credmod.X_OK)
        data = bytes(inode.data)
        header, _, _ = data.partition(b"\n")
        try:
            first_line = header.decode()
        except UnicodeDecodeError:
            raise SyscallError(ENOEXEC, path) from None
        if first_line.startswith(EXEC_MAGIC):
            name = first_line[len(EXEC_MAGIC):].strip()
            factory = self._programs.get(name)
            if factory is None:
                raise SyscallError(ENOEXEC, "unknown image %r" % name)
            return factory, []
        if first_line.startswith("#!") and _depth == 0:
            parts = first_line[2:].strip().split()
            if not parts:
                raise SyscallError(ENOEXEC, path)
            interp = parts[0]
            factory, _ = self.load_image_locked(proc, interp, _depth=1)
            return factory, [interp] + parts[1:] + [path]
        raise SyscallError(ENOEXEC, path)

    # ------------------------------------------------------------------
    # system call dispatch
    # ------------------------------------------------------------------

    def do_syscall(self, proc, number, args):
        """Execute the kernel implementation of one system call."""
        entry = entry_for(number)
        impl = DISPATCH.get(number)
        if impl is None:
            raise SyscallError(ENOSYS, entry.name)
        if len(args) > entry.nargs:
            raise SyscallError(EINVAL, "%s takes %d args" % (entry.name, entry.nargs))
        with self._sleepq:
            if self.crashed is not None:
                raise MachineCrash(self.crashed)
            self.clock.tick()
            proc.rusage.ru_stime_usec += 100
            self._check_alarm_locked(proc)
            if self.profiler is not None:
                self.profiler.sample_tick(proc, "kernel:" + entry.name)
            if self.watches is not None:
                self.watches.maybe_evaluate(self, proc)
            error = None
            result = None
            try:
                result = impl(self, proc, *args)
            except SyscallError as exc:
                error = exc
            except (ProcessExit, ExecImage):
                # exit and exec unwind; the trace hook still sees them.
                if self.dfstrace is not None:
                    self.dfstrace.record(self, proc, entry, args, None, None)
                raise
            if self.dfstrace is not None:
                self.dfstrace.record(self, proc, entry, args, result, error)
            if error is not None:
                raise error
            return result

    # ------------------------------------------------------------------
    # sleep / wakeup
    # ------------------------------------------------------------------

    def sleep_until(self, predicate, proc, wchan, interruptible=True):
        """Sleep (kernel lock held) until *predicate* becomes true.

        An interruptible sleep raises ``EINTR`` when a deliverable signal
        is pending, like a 4.3BSD ``tsleep`` at a signal-catching priority.
        When every live process is asleep, the earliest armed alarm fires
        (the idle loop advancing virtual time).
        """
        if self.recorder is not None:
            return self._sleep_until_recorded(
                self.recorder, predicate, proc, wchan, interruptible)
        self._sleepers += 1
        proc.state = "sleeping:" + wchan
        waited = 0.0
        try:
            while True:
                if self.crashed is not None:
                    # The machine halted while we slept: die in place.
                    raise MachineCrash(self.crashed)
                if predicate():
                    break
                self._check_alarm_locked(proc)
                if interruptible and proc.has_deliverable_signal():
                    raise SyscallError(EINTR, wchan)
                if self._sleepers >= self._live_count_locked():
                    if self._fire_earliest_alarm_locked():
                        continue
                if not self._sleepq.wait(timeout=0.05):
                    waited += 0.05
                    if waited >= self._watchdog_seconds:
                        raise RuntimeError(
                            "sleep_until watchdog: pid %d stuck on %r"
                            % (proc.pid, wchan)
                        )
                else:
                    waited = 0.0
        finally:
            self._sleepers -= 1
            if proc.state.startswith("sleeping:"):
                proc.state = RUNNING

    def _sleep_until_recorded(self, rec, predicate, proc, wchan,
                              interruptible):
        """The sleep loop under record/replay's turn token.

        Semantics match :meth:`sleep_until` exactly; what changes is
        *admission*.  The caller entered holding the turn token (it is
        inside a trap), so the first pass through the wait loop runs
        inline — a deterministic continuation of the trap, logged as
        nothing.  Before each ``wait`` the token is suspended so other
        threads can take turns; each wakeup asks the recorder for a
        *grant* (FCFS in record mode, log-head-driven in replay) and a
        granted batch runs loop iterations until it either exits the
        sleep (``W``), raises ``EINTR`` (``E``), or falls back to the
        queue having fired an alarm or advanced the idle clock (``Y``).
        A no-op batch — possible only under record's FCFS grants — is
        released unlogged, which is what keeps host-timing-dependent
        spurious wakeups out of the log.
        """
        self._sleepers += 1
        proc.state = "sleeping:" + wchan
        depth = rec.held_depth()
        granted = True   # the inline first pass, under the trap's token
        logged = False   # True when the current grant must commit a line
        waited = 0.0
        try:
            while True:
                if granted:
                    if self.crashed is not None:
                        # Halted while we slept (the passive transition
                        # frees blocked sleepers): die without logging.
                        raise MachineCrash(self.crashed)
                    dirty = False
                    exit_kind = None
                    while True:
                        if predicate():
                            exit_kind = "W"
                            break
                        if self._check_alarm_locked(proc):
                            dirty = True
                        if interruptible and proc.has_deliverable_signal():
                            exit_kind = "E"
                            break
                        if self._sleepers >= self._live_count_locked():
                            if self._fire_earliest_alarm_locked():
                                dirty = True
                                continue
                        break  # nothing left to do: back to the queue
                    if exit_kind is not None:
                        if logged:
                            rec.commit(proc, exit_kind, wchan)
                        if exit_kind == "E":
                            raise SyscallError(EINTR, wchan)
                        return
                    if logged:
                        if dirty:
                            rec.commit(proc, "Y", wchan)
                        else:
                            rec.release_grant(proc)
                    else:
                        rec.suspend()
                    # Token released: let blocked kernel-world entries
                    # and other sleepers take their turn promptly.
                    self.wakeup()
                if not self._sleepq.wait(timeout=0.05):
                    waited += 0.05
                    if waited >= self._watchdog_seconds:
                        raise RuntimeError(
                            "sleep_until watchdog: pid %d stuck on %r"
                            % (proc.pid, wchan)
                        )
                else:
                    waited = 0.0
                granted = rec.try_resume(proc, depth)
                logged = granted
        finally:
            self._sleepers -= 1
            if proc.state.startswith("sleeping:"):
                proc.state = RUNNING

    def wakeup(self):
        """Wake all sleepers to recheck their conditions (lock held)."""
        self._sleepq.notify_all()

    def _live_count_locked(self):
        return sum(1 for p in self._procs.values() if p.state != ZOMBIE)

    def _check_alarm_locked(self, proc):
        if proc.alarm_deadline and self.clock.usec() >= proc.alarm_deadline:
            if proc.alarm_interval:
                proc.alarm_deadline += proc.alarm_interval
            else:
                proc.alarm_deadline = 0
            proc.post(sig.SIGALRM)
            self.wakeup()
            return True
        return False

    def _fire_earliest_alarm_locked(self):
        armed = [
            p
            for p in self._procs.values()
            if p.state != ZOMBIE and p.alarm_deadline
        ]
        if not armed:
            return False
        earliest = min(p.alarm_deadline for p in armed)
        if earliest > self.clock.usec():
            self.clock.advance(earliest - self.clock.usec())
        for p in armed:
            self._check_alarm_locked(p)
        return True

    # ------------------------------------------------------------------
    # signals (public entry points acquire the lock)
    # ------------------------------------------------------------------

    def post_signal(self, proc, signum):
        """Post *signum* to *proc* (acquires the kernel lock)."""
        with self._sleepq:
            proc.post(signum)
            self.wakeup()

    def take_signal(self, proc):
        """Pop *proc*'s next deliverable signal (locked)."""
        with self._sleepq:
            return proc.take_signal()

    def terminate(self, proc, signum):
        """Die from a signal: bookkeeping, then unwind the program."""
        with self._sleepq:
            self.finish_exit_locked(proc, term_signal=signum)
        raise ProcessExit(term_signal=signum)

    def stop_process(self, proc):
        """Default action for stop signals: suspend until SIGCONT."""
        with self._sleepq:
            proc.suspended = True
            self.wakeup()
            self.sleep_until(
                lambda: not proc.suspended
                or proc.pending & sig.sigmask(sig.SIGKILL),
                proc,
                "stopped",
                interruptible=False,
            )
            proc.suspended = False

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------

    def find_process_locked(self, pid):
        """The process with *pid* (ESRCH if none)."""
        try:
            return self._procs[pid]
        except KeyError:
            raise SyscallError(ESRCH, "pid %r" % (pid,)) from None

    def live_processes_locked(self):
        """Every non-zombie process."""
        return [p for p in self._procs.values() if p.state != ZOMBIE]

    def process_count(self):
        """How many processes the table holds."""
        with self._sleepq:
            return len(self._procs)

    def _alloc_pid_locked(self):
        pid = self._next_pid
        self._next_pid += 1
        if self.recorder is not None:
            self.recorder.note("P", 0, str(pid))
        return pid

    def spawn_child_locked(self, parent, entry):
        """fork(): duplicate *parent*, running *entry* in the child."""
        child = Process(
            self,
            self._alloc_pid_locked(),
            parent.pid,
            parent.cred.copy(),
            parent.cwd,
            parent.root_dir,
            parent.umask,
        )
        child.pgrp = parent.pgrp
        child.fdtable = parent.fdtable.fork_copy()
        child.fdtable.owner = child
        child.dispositions = {
            signum: action.copy()
            for signum, action in parent.dispositions.items()
        }
        child.sigmask = parent.sigmask
        # The child's address space is a copy of the parent's — which, on
        # Mach 2.5, contains the agent.  The emulation vector references
        # the same agent instance (paper Figure 1-4: shared agent state).
        child.emulation_vector = dict(parent.emulation_vector)
        child.signal_redirect = parent.signal_redirect
        child.comm = parent.comm
        child.argv = list(parent.argv)
        child.envp = dict(parent.envp)
        # ktrace participation is inherited, like BSD's ktrace -i: this
        # is what lets the in-world ktrace program cover a whole pipeline.
        child.ktrace_on = parent.ktrace_on
        self._procs[child.pid] = child
        parent.children.append(child)
        obs = self.obs
        if obs is not None:
            if obs.metrics_on:
                obs.metrics.inc(("proc.fork",))
            if obs.wants(parent):
                obs.emit(obs_events.PROC_FORK, parent,
                         detail="child pid %d" % child.pid,
                         link_pid=child.pid)
        if entry is None:
            entry = lambda ctx: 0  # noqa: E731 - a child that just exits
        self._start_process_thread(child, ("entry", entry))
        return child

    def finish_exit_locked(self, proc, exit_code=0, term_signal=0):
        """Exit bookkeeping: close, reparent, zombify, notify."""
        if proc.state == ZOMBIE:
            return
        obs = self.obs
        if obs is not None:
            if obs.metrics_on:
                obs.metrics.inc(("proc.exit",))
            if obs.wants(proc):
                detail = ("signal %d" % term_signal if term_signal
                          else "status %d" % exit_code)
                obs.emit(obs_events.PROC_EXIT, proc, detail=detail)
        for fd in list(proc.fdtable.descriptors()):
            proc.fdtable.remove(fd).decref(self)
        proc.alarm_deadline = 0
        # Orphaned children are inherited by init (pid 1); if init itself
        # is dying, they are auto-reaped when they exit.
        init = self._procs.get(1)
        for child in proc.children:
            child.ppid = 1
            if init is not None and init is not proc and init.state != ZOMBIE:
                init.children.append(child)
            elif child.state == ZOMBIE:
                self._procs.pop(child.pid, None)
        proc.children = []
        if term_signal:
            proc.exit_status = wait_status_signaled(term_signal)
        else:
            proc.exit_status = wait_status_exited(exit_code)
        proc.state = ZOMBIE
        parent = self._procs.get(proc.ppid)
        if parent is not None and parent.state != ZOMBIE:
            parent.post(sig.SIGCHLD)
        else:
            self._procs.pop(proc.pid, None)
        self.wakeup()

    def reap_locked(self, parent, child):
        """wait(): collect a zombie child's status and accounting."""
        status = child.exit_status
        parent.child_rusage.add(child.rusage)
        parent.child_rusage.add(child.child_rusage)
        parent.children.remove(child)
        self._procs.pop(child.pid, None)
        return (child.pid, status)

    # ------------------------------------------------------------------
    # open file construction
    # ------------------------------------------------------------------

    def make_open_file(self, proc, inode, flags):
        """Construct the right open-file type for *inode* (FIFOs block for their peer here)."""
        maker = getattr(inode.fs, "open_file", None)
        if maker is not None:
            # A filesystem that constructs its own open files (procfs's
            # snapshotting reader); the vfs seam stays one getattr for
            # every volume that doesn't.
            return maker(self, proc, inode, flags)
        bits = open_mode_bits(flags)
        if st.S_ISCHR(inode.mode) or st.S_ISBLK(inode.mode):
            device = self.devswitch.lookup(inode.rdev)
            return DeviceFile(inode, device, bits, flags)
        if st.S_ISFIFO(inode.mode):
            if inode.pipe is None:
                inode.pipe = Pipe()
            from repro.kernel.ofile import FREAD, FWRITE

            pipe = inode.pipe
            writers_before = pipe.total_writers
            readers_before = pipe.total_readers
            end = FifoEnd(inode, pipe, bits)
            self.wakeup()  # a blocked opener of the other end may proceed
            # 4.3BSD semantics: opening one end blocks until the other
            # end is (or has since been) opened; O_RDWR opens both ends
            # and never blocks.
            try:
                if bits == FREAD:
                    self.sleep_until(
                        lambda: pipe.writers > 0
                        or pipe.total_writers > writers_before,
                        proc,
                        "fifo-open-rd",
                    )
                elif bits == FWRITE:
                    self.sleep_until(
                        lambda: pipe.readers > 0
                        or pipe.total_readers > readers_before,
                        proc,
                        "fifo-open-wr",
                    )
            except SyscallError:
                end.decref(self)
                raise
            return end
        return InodeFile(inode, bits, flags)

    # ------------------------------------------------------------------
    # mounts
    # ------------------------------------------------------------------

    def new_filesystem(self):
        """A fresh volume with a unique device number."""
        fs = Filesystem(self.clock, dev=self._next_dev,
                        namecache=self.namecache,
                        zero_copy=self.fastpaths.zero_copy)
        if self.journal_on:
            fs.attach_journal()
        fs.faultsites = self.faultsites
        self._next_dev += 1
        self._volumes.append(fs)
        return fs

    def arm_faults(self, sites):
        """Arm seed-scheduled kernel fault sites on the whole machine.

        *sites* is a :class:`repro.kernel.faultsite.FaultSet` (or a spec
        accepted by its ``parse``); it is installed on the kernel and on
        every volume, so ufs/pipe/namei internals consult it.  Returns
        the installed set.  ``disarm_faults`` restores the seed paths.
        """
        from repro.kernel.faultsite import FaultSet
        sites = FaultSet.parse(sites)
        sites.recorder = self.recorder
        sites.kernel = self
        self.faultsites = sites
        for fs in self._volumes:
            fs.faultsites = sites
        return sites

    def disarm_faults(self):
        """Disarm every kernel fault site; returns the detached set."""
        sites = self.faultsites
        self.faultsites = None
        for fs in self._volumes:
            fs.faultsites = None
        return sites

    # ------------------------------------------------------------------
    # crash and recovery
    # ------------------------------------------------------------------

    def crash(self, tag="host.crash"):
        """Halt the machine abruptly — the host pulling the power cord.

        Volume state (including each write-ahead journal) is preserved
        exactly as it stands; every simulated process dies silently, no
        exit bookkeeping runs.  :meth:`remount` reboots the machine and
        runs recovery.  Crash-armed fault sites reach the same state
        through :meth:`_crash_locked` mid-operation.
        """
        with self._sleepq:
            self._crash_locked(tag)

    def _crash_locked(self, tag, proc=None):
        """Mark the machine crashed (kernel lock held); idempotent.

        Order matters for record/replay bit-identity: ``crashed`` is
        set *before* the recorder goes passive, so any thread the
        passive transition frees from the turn queue is guaranteed to
        see the flag and die without emitting events.  The only
        post-crash log/obs activity is the crashing thread's own fault
        decision, strictly ordered under its turn.
        """
        if self.crashed is not None:
            return
        self.crashed = tag
        obs = self.obs
        if obs is not None:
            if obs.metrics_on:
                obs.metrics.inc((obs_events.KERNEL_CRASH, tag))
            if proc is not None and obs.wants(proc):
                obs.emit(obs_events.KERNEL_CRASH, proc, tag,
                         "machine halted")
        if self.recorder is not None:
            self.recorder.machine_crashed(tag)
        self.wakeup()

    def remount(self):
        """Reboot a crashed machine: recover every volume, clear procs.

        Returns ``{dev: report}`` from each volume's
        :meth:`~repro.kernel.ufs.Filesystem.recover` — journal replay
        counts plus the fsck-style sweep.  The process table, sleep
        queue, and panic list restart empty (nothing survives a power
        cut); inode tables and journals carry over, which is the whole
        point.
        """
        with self._sleepq:
            reports = {}
            for fs in self._volumes:
                reports[fs.dev] = fs.recover()
            obs = self.obs
            if obs is not None and obs.metrics_on:
                for report in reports.values():
                    obs.metrics.inc((obs_events.JOURNAL_REPLAY,),
                                    report["redone"] + report["undone"] + 1)
            self._procs = {}
            self._threads = []
            self._sleepers = 0
            self._next_pid = 1
            self.panics = []
            self.crashed = None
            self.boot_usec = self.clock.usec()
            return reports

    def mount(self, fs, path):
        """Mount *fs* on the directory at *path* (host-side operation)."""
        node = self.lookup_host(path)
        if not node.is_dir():
            raise SyscallError(ENOTDIR, path)
        already_mount_root = node.ino == 2 and node.fs.covered is not None
        if node.mounted is not None or already_mount_root:
            raise SyscallError(EBUSY, "%s is already a mount point" % path)
        if fs.covered is not None:
            raise SyscallError(EBUSY, "filesystem is already mounted")
        node.mounted = fs
        fs.covered = node
        # The name cache stores post-mount-crossing children, so any
        # change to the mount topology invalidates it wholesale.
        if self.namecache is not None:
            self.namecache.purge()

    def umount(self, path):
        """Detach the filesystem mounted at *path*."""
        node = self.lookup_host(path)
        # lookup_host crosses the mount, so node is the mounted fs root.
        fs = node.fs
        if fs.covered is None:
            raise SyscallError(EINVAL, "%s is not a mount point" % path)
        fs.covered.mounted = None
        fs.covered = None
        if self.namecache is not None:
            self.namecache.purge()

    # ------------------------------------------------------------------
    # running programs
    # ------------------------------------------------------------------

    def _create_initial_process(self, uid=0, gid=0):
        with self._sleepq:
            proc = Process(
                self,
                self._alloc_pid_locked(),
                0,
                credmod.Cred(uid, gid),
                self.rootfs.root,
                self.rootfs.root,
            )
            self._procs[proc.pid] = proc
            console = self.lookup_host("/dev/console")
            tty = self.make_open_file(proc, console, 2)  # O_RDWR
            proc.fdtable.install(0, tty)
            tty.incref()
            proc.fdtable.install(1, tty)
            tty.incref()
            proc.fdtable.install(2, tty)
            return proc

    def _start_process_thread(self, proc, start):
        thread = threading.Thread(
            target=self._process_thread,
            args=(proc, start),
            name="pid%d" % proc.pid,
            daemon=True,
        )
        proc.thread = thread
        self._threads.append(thread)
        thread.start()

    def _process_thread(self, proc, start):
        ctx = UserContext(self, proc)
        current = start
        while True:
            try:
                if current[0] == "image":
                    _, factory, argv, envp = current
                    proc.argv = list(argv)
                    proc.envp = dict(envp)
                    if argv:
                        proc.comm = argv[0]
                    status = factory(ctx, list(argv), dict(envp))
                else:
                    status = current[1](ctx)
                ctx.trap(SYS_EXIT, int(status or 0))
                raise AssertionError("exit trap returned")
            except ExecImage as image:
                current = ("image", image.program_factory, image.argv, image.envp)
            except ProcessExit:
                return
            except MachineCrash:
                # The machine halted: the process dies silently — no
                # exit bookkeeping, no panic, exactly like a power cut.
                return
            except BaseException as exc:  # a bug in a simulated program
                self._record_panic(proc, exc)
                return

    def _record_panic(self, proc, exc):
        self.panics.append(
            (proc.pid, proc.comm, exc, traceback.format_exc())
        )
        with self._sleepq:
            self.finish_exit_locked(proc, term_signal=sig.SIGSEGV)

    def _join_all(self, timeout):
        # Re-read the list each pass: joining a parent can reveal threads
        # it forked after this call started.  A plain snapshot would miss
        # orphans whose parent died without waiting (e.g. a fail-stop
        # kill mid-pipeline), letting callers observe a half-dead world.
        joined = 0
        while joined < len(self._threads):
            thread = self._threads[joined]
            joined += 1
            thread.join(timeout=timeout)
            if thread.is_alive():
                raise RuntimeError("simulated process %s did not exit" % thread.name)
        self._threads = []

    def _raise_panics(self):
        if self.panics:
            pid, comm, exc, text = self.panics[0]
            raise ProgramCrash(
                "pid %d (%s) crashed: %r\n%s" % (pid, comm, exc, text)
            ) from exc

    def run(self, path, argv=None, envp=None, uid=0, timeout=120.0):
        """Load and run the binary at *path* as the initial process.

        Returns the process's wait status (use ``WEXITSTATUS``).  Raises
        :class:`ProgramCrash` if any simulated program hit a host bug.
        """
        argv = list(argv) if argv is not None else [path]
        proc = self._create_initial_process(uid=uid)
        with self._sleepq:
            factory, prefix = self.load_image_locked(proc, path)
        if prefix:
            argv = prefix + argv[1:]
        proc.comm = argv[0]
        self._start_process_thread(proc, ("image", factory, argv, dict(envp or {})))
        self._join_all(timeout)
        self._raise_panics()
        return proc.exit_status

    def run_entry(self, entry, uid=0, timeout=120.0):
        """Run a host callable ``entry(ctx)`` as the initial process."""
        proc = self._create_initial_process(uid=uid)
        proc.comm = getattr(entry, "__name__", "entry")
        self._start_process_thread(proc, ("entry", entry))
        self._join_all(timeout)
        self._raise_panics()
        return proc.exit_status
