"""The simulated UFS filesystem: inode allocation, linking, reclamation.

One :class:`Filesystem` is one mountable volume.  It owns an inode table
and hands out inode numbers; directory entries within it reference inodes
by number.  Inodes are reclaimed when both their link count and their
open-file reference count reach zero — the classic UFS rule that makes
"unlink while open" work, which several agents (txn, sandbox) rely on.
"""

from repro.kernel import stat as st
from repro.kernel.errno import EMLINK, ENOENT, ENOSPC, SyscallError
from repro.kernel.inode import (
    DeviceNode,
    Directory,
    Fifo,
    Inode,
    RegularFile,
    Symlink,
)

#: 4.3BSD LINK_MAX
LINK_MAX = 32767
ROOT_INO = 2


class Filesystem:
    """A volume of inodes with a root directory."""

    def __init__(self, clock, dev=1, block_size=8192, max_inodes=1 << 20,
                 namecache=None, zero_copy=False):
        self.clock = clock
        self.dev = dev
        self.block_size = block_size
        self.max_inodes = max_inodes
        self._inodes = {}
        self._next_ino = ROOT_INO
        #: the kernel-wide name lookup cache, shared by every volume the
        #: kernel creates; ``None`` (the default for volumes built by
        #: hand in tests) means lookups in this volume are uncached —
        #: the seed behaviour (see repro.kernel.namecache)
        self.namecache = namecache
        #: when true, ``RegularFile.read_at`` hands out memoryview-backed
        #: slices instead of copying twice (see repro.kernel.fastpath)
        self.zero_copy = zero_copy
        #: armed kernel fault sites (see repro.kernel.faultsite), set by
        #: Kernel.arm_faults; ``None`` — always the case during volume
        #: construction — keeps every site to one ``is None`` test
        self.faultsites = None
        #: directory inode (in another fs) this volume is mounted on
        self.covered = None
        self.root = self._make(Directory, mode=0o755, uid=0, gid=0)
        assert self.root.ino == ROOT_INO
        self.root.enter(".", self.root.ino)
        self.root.enter("..", self.root.ino)
        self.root.nlink = 2

    # -- inode table ------------------------------------------------------

    def _make(self, cls, mode, uid, gid, **extra):
        sites = self.faultsites
        if sites is not None:
            # Before the inode exists: a fault here must leave the table
            # exactly as it was.
            sites.check("ufs.make")
        if len(self._inodes) >= self.max_inodes:
            raise SyscallError(ENOSPC, "out of inodes")
        ino = self._next_ino
        self._next_ino += 1
        node = cls(self, ino, mode, uid, gid, self.clock.usec(), **extra)
        self._inodes[ino] = node
        return node

    def inode(self, ino):
        """The in-core inode numbered *ino* (ENOENT if stale)."""
        try:
            return self._inodes[ino]
        except KeyError:
            raise SyscallError(ENOENT, "stale inode %d" % ino) from None

    def live_inode_count(self):
        """How many inodes the volume holds."""
        return len(self._inodes)

    # -- creation ---------------------------------------------------------

    def create_file(self, mode, cred):
        """Allocate a regular file inode (unlinked)."""
        return self._make(RegularFile, mode, cred.euid, cred.egid)

    def create_symlink(self, target, cred):
        """Allocate a symlink inode holding *target*."""
        return self._make(Symlink, 0o777, cred.euid, cred.egid, target=target)

    def create_fifo(self, mode, cred):
        """Allocate a FIFO inode."""
        return self._make(Fifo, mode, cred.euid, cred.egid)

    def create_device(self, mode, cred, kind, rdev):
        """Allocate a device-node inode for *rdev*."""
        return self._make(
            DeviceNode, mode, cred.euid, cred.egid, kind=kind, rdev=rdev
        )

    def create_directory(self, mode, cred, parent):
        """Allocate a directory wired with ``.`` and ``..``; caller links it."""
        node = self._make(Directory, mode, cred.euid, cred.egid)
        node.enter(".", node.ino)
        node.enter("..", parent.ino)
        node.nlink = 2
        return node

    # -- link counts and reclamation ---------------------------------------

    def link(self, dirnode, name, inode):
        """Enter *name* → *inode* in *dirnode*, bumping the link count."""
        sites = self.faultsites
        if sites is not None:
            # Before the entry and the nlink bump, so neither happens.
            sites.check("ufs.link")
        if inode.nlink >= LINK_MAX:
            raise SyscallError(EMLINK)
        dirnode.enter(name, inode.ino)
        inode.nlink += 1
        inode.touch_ctime(self.clock.usec())
        dirnode.touch_mtime(self.clock.usec())

    def unlink(self, dirnode, name, inode):
        """Remove *name* from *dirnode* and drop the inode's link count."""
        sites = self.faultsites
        if sites is not None:
            # Before the removal, so entry and nlink stay consistent.
            sites.check("ufs.unlink")
        dirnode.remove(name)
        inode.nlink -= 1
        inode.touch_ctime(self.clock.usec())
        dirnode.touch_mtime(self.clock.usec())
        self.maybe_reclaim(inode)

    def incref(self, inode):
        """An open file now references *inode*."""
        inode.open_count += 1

    def decref(self, inode):
        """Drop an open reference; reclaim if also unlinked."""
        assert inode.open_count > 0, "decref of unreferenced inode"
        inode.open_count -= 1
        self.maybe_reclaim(inode)

    def maybe_reclaim(self, inode):
        """Free the inode once unreferenced and unlinked."""
        if inode.nlink <= 0 and inode.open_count == 0:
            self._inodes.pop(inode.ino, None)

    def discard_inode(self, inode):
        """Unwind an allocation: drop a never-linked inode from the table.

        For fresh files ``maybe_reclaim`` suffices (nlink 0), but a
        fresh directory already counts its own ``.`` entry, so a
        failed link would strand it forever — this is the release
        path for any inode the caller allocated but never published.
        """
        self._inodes.pop(inode.ino, None)

    # -- convenience used by tests and mkfs-style setup ---------------------

    def mkdir_in(self, parent, name, mode, cred):
        """Create and link a directory under *parent* (host/mkfs helper)."""
        node = self.create_directory(mode, cred, parent)
        try:
            parent.enter(name, node.ino)
        except SyscallError:
            # Unwind: the fresh directory was never entered in the
            # parent, so it must not survive in the inode table.
            self.discard_inode(node)
            raise
        parent.nlink += 1
        node.touch_ctime(self.clock.usec())
        parent.touch_mtime(self.clock.usec())
        return node


def is_mount_root(inode):
    """True if *inode* is the root of a mounted (non-covering) filesystem."""
    return st.S_ISDIR(inode.mode) and inode.ino == ROOT_INO and inode.fs.covered is not None
