"""The simulated UFS filesystem: inode allocation, linking, reclamation.

One :class:`Filesystem` is one mountable volume.  It owns an inode table
and hands out inode numbers; directory entries within it reference inodes
by number.  Inodes are reclaimed when both their link count and their
open-file reference count reach zero — the classic UFS rule that makes
"unlink while open" work, which several agents (txn, sandbox) rely on.
"""

from repro.kernel import stat as st
from repro.kernel.errno import EBUSY, EMLINK, ENOENT, ENOSPC, SyscallError
from repro.kernel.inode import (
    DeviceNode,
    Directory,
    Fifo,
    Inode,
    RegularFile,
    Symlink,
)

#: 4.3BSD LINK_MAX
LINK_MAX = 32767
ROOT_INO = 2


class Filesystem:
    """A volume of inodes with a root directory."""

    def __init__(self, clock, dev=1, block_size=8192, max_inodes=1 << 20,
                 namecache=None, zero_copy=False):
        self.clock = clock
        self.dev = dev
        self.block_size = block_size
        self.max_inodes = max_inodes
        self._inodes = {}
        self._next_ino = ROOT_INO
        #: the kernel-wide name lookup cache, shared by every volume the
        #: kernel creates; ``None`` (the default for volumes built by
        #: hand in tests) means lookups in this volume are uncached —
        #: the seed behaviour (see repro.kernel.namecache)
        self.namecache = namecache
        #: when true, ``RegularFile.read_at`` hands out memoryview-backed
        #: slices instead of copying twice (see repro.kernel.fastpath)
        self.zero_copy = zero_copy
        #: armed kernel fault sites (see repro.kernel.faultsite), set by
        #: Kernel.arm_faults; ``None`` — always the case during volume
        #: construction — keeps every site to one ``is None`` test
        self.faultsites = None
        #: the write-ahead intent journal (see repro.kernel.journal);
        #: ``None`` — the default — keeps every metadata operation to
        #: one ``is None`` test, so unjournaled volumes are bit-for-bit
        #: the seed.  Attach with :meth:`attach_journal`.
        self.journal = None
        #: frozen for snapshotting (see :meth:`freeze`): metadata
        #: mutations refuse with EBUSY until :meth:`thaw`
        self.frozen = False
        #: directory inode (in another fs) this volume is mounted on
        self.covered = None
        self.root = self._make(Directory, mode=0o755, uid=0, gid=0)
        assert self.root.ino == ROOT_INO
        self.root.enter(".", self.root.ino)
        self.root.enter("..", self.root.ino)
        self.root.nlink = 2

    # -- the write-ahead journal ------------------------------------------

    def attach_journal(self):
        """Install a fresh write-ahead journal on this volume."""
        from repro.kernel.journal import Journal
        self.journal = Journal()
        return self.journal

    def journal_begin(self, op):
        """Open a journal transaction, or ``None`` when unjournaled."""
        journal = self.journal
        if journal is None:
            return None
        return journal.begin(op)

    def journal_commit(self, txn):
        """Commit *txn* (tolerates the unjournaled ``None``)."""
        if txn is not None:
            self.journal.commit(txn)

    def journal_abort(self, txn):
        """Abort *txn* (tolerates the unjournaled ``None``)."""
        if txn is not None:
            self.journal.abort(txn)

    def _check_frozen(self):
        if self.frozen:
            raise SyscallError(EBUSY, "volume is frozen")

    def freeze(self):
        """Refuse metadata mutations until :meth:`thaw` (for snapshots)."""
        self.frozen = True

    def thaw(self):
        """Allow metadata mutations again."""
        self.frozen = False

    def snapshot_meta(self):
        """A point-in-time metadata snapshot: ino -> ``describe_meta``.

        Meant to be taken between :meth:`freeze` and :meth:`thaw`; the
        crash tests diff two of these to prove recovery restored the
        exact pre-crash state.
        """
        return {ino: node.describe_meta()
                for ino, node in sorted(self._inodes.items())}

    def recover(self):
        """Mount-time recovery: journal replay plus an fsck-style sweep.

        The journal (when attached) redoes committed transactions and
        undoes torn ones — that is what repairs metadata.  The sweep
        that follows runs on *every* volume, journaled or not, and only
        clears state that a power cut genuinely destroys: open-file
        references (no process survived the crash) and in-flight FIFO
        pipes, then reclaims non-directory inodes those releases
        orphaned.  Deliberately **not** repaired here: nlink-vs-entry
        disagreement — without a journal a torn operation stays torn,
        which is what the unjournaled chaos control demonstrates.
        """
        journal = self.journal
        report = {"redone": 0, "undone": 0, "torn_txns": 0}
        if journal is not None:
            report = journal.replay(self)
        swept = 0
        for node in list(self._inodes.values()):
            node.open_count = 0
            if isinstance(node, Fifo):
                node.pipe = None
            if node.nlink <= 0 and not isinstance(node, Directory):
                self._inodes.pop(node.ino, None)
                swept += 1
        report["swept"] = swept
        self.frozen = False
        if self.namecache is not None:
            self.namecache.purge()
        return report

    # -- inode table ------------------------------------------------------

    def _make(self, cls, mode, uid, gid, **extra):
        """Allocate an inode under a journal transaction of its own."""
        txn = self.journal_begin("alloc")
        try:
            node = self._alloc_inode(txn, cls, mode, uid, gid, **extra)
        except SyscallError:
            self.journal_abort(txn)
            raise
        self.journal_commit(txn)
        return node

    def _alloc_inode(self, txn, cls, mode, uid, gid, **extra):
        """The allocation proper, inside the caller's transaction *txn*."""
        sites = self.faultsites
        if sites is not None:
            # Before the inode exists: a fault here must leave the table
            # exactly as it was.
            sites.check("ufs.make")
        self._check_frozen()
        if len(self._inodes) >= self.max_inodes:
            raise SyscallError(ENOSPC, "out of inodes")
        ino = self._next_ino
        self._next_ino += 1
        node = cls(self, ino, mode, uid, gid, self.clock.usec(), **extra)
        if txn is not None:
            txn.intent("alloc", ino)
        self._inodes[ino] = node
        if sites is not None:
            # Torn: the inode is in the table but the operation that
            # wanted it has published nothing yet.
            sites.check_crash("ufs.alloc.torn")
        return node

    def inode(self, ino):
        """The in-core inode numbered *ino* (ENOENT if stale)."""
        try:
            return self._inodes[ino]
        except KeyError:
            raise SyscallError(ENOENT, "stale inode %d" % ino) from None

    def live_inode_count(self):
        """How many inodes the volume holds."""
        return len(self._inodes)

    # -- creation ---------------------------------------------------------

    def create_file(self, mode, cred):
        """Allocate a regular file inode (unlinked)."""
        return self._make(RegularFile, mode, cred.euid, cred.egid)

    def create_symlink(self, target, cred):
        """Allocate a symlink inode holding *target*."""
        return self._make(Symlink, 0o777, cred.euid, cred.egid, target=target)

    def create_fifo(self, mode, cred):
        """Allocate a FIFO inode."""
        return self._make(Fifo, mode, cred.euid, cred.egid)

    def create_device(self, mode, cred, kind, rdev):
        """Allocate a device-node inode for *rdev*."""
        return self._make(
            DeviceNode, mode, cred.euid, cred.egid, kind=kind, rdev=rdev
        )

    def create_directory(self, mode, cred, parent):
        """Allocate a directory wired with ``.`` and ``..``; caller links it."""
        node = self._make(Directory, mode, cred.euid, cred.egid)
        node.enter(".", node.ino)
        node.enter("..", parent.ino)
        node.nlink = 2
        return node

    # -- link counts and reclamation ---------------------------------------

    def link(self, dirnode, name, inode):
        """Enter *name* → *inode* in *dirnode*, bumping the link count."""
        sites = self.faultsites
        if sites is not None:
            # Before the entry and the nlink bump, so neither happens.
            sites.check("ufs.link")
        self._check_frozen()
        if inode.nlink >= LINK_MAX:
            raise SyscallError(EMLINK)
        txn = self.journal_begin("link")
        try:
            if txn is not None:
                txn.intent("enter", dirnode.ino, name, inode.ino)
                txn.intent("nlink", inode.ino, inode.nlink, inode.nlink + 1)
            dirnode.enter(name, inode.ino)
            if sites is not None:
                # Torn: entry in, nlink not yet bumped.
                sites.check_crash("ufs.link.torn")
            inode.nlink += 1
            inode.touch_ctime(self.clock.usec())
            dirnode.touch_mtime(self.clock.usec())
        except SyscallError:
            self.journal_abort(txn)
            raise
        self.journal_commit(txn)

    def unlink(self, dirnode, name, inode):
        """Remove *name* from *dirnode* and drop the inode's link count."""
        sites = self.faultsites
        if sites is not None:
            # Before the removal, so entry and nlink stay consistent.
            sites.check("ufs.unlink")
        self._check_frozen()
        txn = self.journal_begin("unlink")
        try:
            if txn is not None:
                txn.intent("remove", dirnode.ino, name, inode.ino)
                txn.intent("nlink", inode.ino, inode.nlink, inode.nlink - 1)
            dirnode.remove(name)
            if sites is not None:
                # Torn: entry out, nlink not yet dropped.
                sites.check_crash("ufs.unlink.torn")
            inode.nlink -= 1
            inode.touch_ctime(self.clock.usec())
            dirnode.touch_mtime(self.clock.usec())
        except SyscallError:
            self.journal_abort(txn)
            raise
        self.journal_commit(txn)
        self.maybe_reclaim(inode)

    def rmdir_in(self, parent, name, inode):
        """Remove the empty directory *inode*, entered as *name* in *parent*.

        One journal transaction covers the whole multi-step teardown
        the seed spread across ``sys_rmdir`` and :meth:`unlink` — dot
        removal, both nlink drops, and the parent entry — so a crash
        between any two steps is undone on remount.  The fault site is
        consulted *before any mutation* (the seed checked it inside
        ``unlink``, after the dots were already gone).
        """
        sites = self.faultsites
        if sites is not None:
            sites.check("ufs.unlink")
        self._check_frozen()
        txn = self.journal_begin("rmdir")
        try:
            if txn is not None:
                txn.intent("remove", inode.ino, ".", inode.ino)
                txn.intent("remove", inode.ino, "..", parent.ino)
                txn.intent("nlink", inode.ino, inode.nlink, inode.nlink - 2)
                txn.intent("nlink", parent.ino, parent.nlink,
                           parent.nlink - 1)
                txn.intent("remove", parent.ino, name, inode.ino)
            inode.remove(".")
            inode.remove("..")
            inode.nlink -= 1  # the "." self-link
            if sites is not None:
                # Torn: dots gone, the parent still links the husk.
                sites.check_crash("ufs.rmdir.torn")
            parent.nlink -= 1  # the ".." link into the parent
            parent.remove(name)
            inode.nlink -= 1
            inode.touch_ctime(self.clock.usec())
            parent.touch_mtime(self.clock.usec())
        except SyscallError:
            self.journal_abort(txn)
            raise
        self.journal_commit(txn)
        self.maybe_reclaim(inode)

    def rename(self, src_parent, src_name, dst_parent, dst_name, inode):
        """Switch *inode*'s entry between directories (the move core).

        The caller (``sys_rename``) has already done every check and
        removed any replaced target; this performs the entry switch and
        the ``..`` rewiring under one journal transaction.
        """
        self._check_frozen()
        sites = self.faultsites
        rewire = inode.is_dir() and src_parent is not dst_parent
        txn = self.journal_begin("rename")
        try:
            if txn is not None:
                txn.intent("remove", src_parent.ino, src_name, inode.ino)
                txn.intent("replace", dst_parent.ino, dst_name,
                           dst_parent.entries.get(dst_name), inode.ino)
                if rewire:
                    txn.intent("replace", inode.ino, "..",
                               src_parent.ino, dst_parent.ino)
                    txn.intent("nlink", src_parent.ino, src_parent.nlink,
                               src_parent.nlink - 1)
                    txn.intent("nlink", dst_parent.ino, dst_parent.nlink,
                               dst_parent.nlink + 1)
            src_parent.remove(src_name)
            if sites is not None:
                # Torn: the name exists nowhere — the classic lost file.
                sites.check_crash("ufs.rename.torn")
            dst_parent.replace(dst_name, inode.ino)
            now = self.clock.usec()
            src_parent.touch_mtime(now)
            dst_parent.touch_mtime(now)
            inode.touch_ctime(now)
            if rewire:
                # Rewire "..": the moved directory changes parents.
                inode.replace("..", dst_parent.ino)
                src_parent.nlink -= 1
                dst_parent.nlink += 1
        except SyscallError:
            self.journal_abort(txn)
            raise
        self.journal_commit(txn)

    def incref(self, inode):
        """An open file now references *inode*."""
        inode.open_count += 1

    def decref(self, inode):
        """Drop an open reference; reclaim if also unlinked."""
        assert inode.open_count > 0, "decref of unreferenced inode"
        inode.open_count -= 1
        self.maybe_reclaim(inode)

    def maybe_reclaim(self, inode):
        """Free the inode once unreferenced and unlinked.

        The reclaim is journaled *redo-only*: the record commits before
        the pop, so a crash between the two replays forward — an undo
        could never resurrect the inode's contents anyway.
        """
        if inode.nlink <= 0 and inode.open_count == 0:
            txn = self.journal_begin("reclaim")
            if txn is not None:
                txn.intent("reclaim", inode.ino)
            self.journal_commit(txn)
            self._inodes.pop(inode.ino, None)

    def discard_inode(self, inode):
        """Unwind an allocation: drop a never-linked inode from the table.

        For fresh files ``maybe_reclaim`` suffices (nlink 0), but a
        fresh directory already counts its own ``.`` entry, so a
        failed link would strand it forever — this is the release
        path for any inode the caller allocated but never published.
        """
        self._inodes.pop(inode.ino, None)

    # -- convenience used by tests and mkfs-style setup ---------------------

    def mkdir_in(self, parent, name, mode, cred):
        """Create and link a directory under *parent*.

        One journal transaction covers the allocation, the parent
        entry, and the parent nlink bump — the three-step shape whose
        torn middle (an entered child before the bump) is the textbook
        journal-replay case.
        """
        txn = self.journal_begin("mkdir")
        try:
            node = self._alloc_inode(txn, Directory, mode,
                                     cred.euid, cred.egid)
            node.enter(".", node.ino)
            node.enter("..", parent.ino)
            node.nlink = 2
            try:
                if txn is not None:
                    txn.intent("enter", parent.ino, name, node.ino)
                parent.enter(name, node.ino)
            except SyscallError:
                # Unwind: the fresh directory was never entered in the
                # parent, so it must not survive in the inode table.
                self.discard_inode(node)
                raise
            sites = self.faultsites
            if sites is not None:
                # Torn: child entered, parent nlink not yet bumped.
                sites.check_crash("ufs.mkdir.torn")
            if txn is not None:
                txn.intent("nlink", parent.ino, parent.nlink,
                           parent.nlink + 1)
            parent.nlink += 1
            node.touch_ctime(self.clock.usec())
            parent.touch_mtime(self.clock.usec())
        except SyscallError:
            self.journal_abort(txn)
            raise
        self.journal_commit(txn)
        return node


def is_mount_root(inode):
    """True if *inode* is the root of a mounted (non-covering) filesystem."""
    return st.S_ISDIR(inode.mode) and inode.ino == ROOT_INO and inode.fs.covered is not None
