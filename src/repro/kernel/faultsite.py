"""Tagged, seed-scheduled fault-injection points inside kernel internals.

The syscall-level :mod:`repro.agents.faults` agent injects errors at the
*system interface* — useful for testing applications, useless for
testing the kernel itself, because the kernel's own error-unwind paths
(inode allocation failing mid-create, a pipe transfer erroring under a
sleeper, a lookup dying between components) never run.  This module puts
the errors *inside*: kernel internals consult an armed
:class:`FaultSet` at tagged sites and raise the site's errno before
mutating any state, so the unwind that follows must leave every machine
invariant intact — exactly what the chaos harness
(:mod:`repro.workloads.chaos`) asserts afterwards.

Sites are pay-per-use in the repo's standing discipline: each one is a
single ``is None`` attribute test until :meth:`Kernel.arm_faults`
installs a set, and ``disarm_faults`` restores the seed paths exactly.
Boot and world-building run before arming, so setup never faults.

Scheduling is deterministic: explicit per-tag rules (``"once"``,
``"always"``, ``after-N``, ``every-N``) or a seeded random mode
(:meth:`FaultSet.random`) whose firing sequence is a pure function of
the seed — the property that makes a chaos scenario replayable from its
seed alone.  Every injection is counted per tag and surfaced through
the obs bus as a ``fault.inject`` metric (plus a full event when the
site knows the faulting process).
"""

import random

from repro.kernel.errno import EIO, ENOSPC, SyscallError, errno_name
from repro.obs import events as ev

#: every fault site the kernel defines: tag -> default errno.  Tags are
#: hierarchical (``subsystem.operation``) so specs and reports group
#: naturally; the errno is what the site raises unless a rule overrides.
SITES = {
    "ufs.make": ENOSPC,     # inode allocation, before the inode exists
    "ufs.link": EIO,        # directory entry + nlink bump, before either
    "ufs.unlink": EIO,      # directory entry removal, before it happens
    "pipe.read": EIO,       # pipe transfer toward the reader, at entry
    "pipe.write": EIO,      # pipe transfer from the writer, at entry
    "namei.lookup": EIO,    # pathname resolution, before any walking
}

#: *torn* crash sites: consulted **between** the mutation steps of a
#: multi-step UFS metadata operation, where halting the machine leaves
#: state half-applied.  Only explicit ``crash`` rules may arm them —
#: an error injected mid-mutation would corrupt the volume in a way no
#: unwind could repair, so error rules and random mode never fire here.
#: These are what the write-ahead journal (repro.kernel.journal) exists
#: to survive: tag -> which half-state a crash there exposes.
CRASH_SITES = {
    "ufs.alloc.torn": "inode inserted, operation not yet published",
    "ufs.link.torn": "entry entered, nlink not yet bumped",
    "ufs.unlink.torn": "entry removed, nlink not yet dropped",
    "ufs.mkdir.torn": "child entered, parent nlink not yet bumped",
    "ufs.rmdir.torn": "dots removed, entry/nlinks not yet dropped",
    "ufs.rename.torn": "source removed, destination not yet entered",
}


class MachineCrash(BaseException):
    """The machine halted abruptly at a crash-armed fault site.

    Deliberately a ``BaseException``: agent error handlers catch
    :class:`SyscallError`, the guard rail contains ``Exception`` — a
    crash must sail past both, exactly like pulling the power cord.
    Volume state (including each journal) is preserved as-is;
    :meth:`Kernel.remount` runs recovery.
    """

    def __init__(self, tag):
        super(MachineCrash, self).__init__("machine crashed at %s" % tag)
        self.tag = tag


class FaultRule:
    """When one tagged site fires: a schedule plus an errno override.

    Schedules (mirroring the syscall-level faults agent):

    ``"always"``
        every consultation
    ``"once"``
        the first consultation only
    ``("after", n)``
        every consultation from the *n*-th on (1-based)
    ``("every", n)``
        every *n*-th consultation

    The *action* is ``"error"`` (raise the site's errno — the seed
    behaviour) or ``"crash"`` (halt the machine: see
    :class:`MachineCrash`).  Crash rules are the only way to arm the
    torn :data:`CRASH_SITES`; spec text spells them ``crash``,
    ``crash-once``, ``crash-after-3``, ``crash-every-2``.
    """

    __slots__ = ("schedule", "errno", "hits", "action")

    def __init__(self, schedule="always", errno=None, action="error"):
        if isinstance(schedule, str) and schedule not in ("always", "once"):
            raise ValueError("bad fault schedule %r" % (schedule,))
        if action not in ("error", "crash"):
            raise ValueError("bad fault action %r" % (action,))
        self.schedule = schedule
        self.errno = errno
        self.hits = 0
        self.action = action

    @classmethod
    def parse(cls, text):
        """A rule from spec text: ``always``, ``once``, ``after-3``,
        ``every-2``, or the ``crash``/``crash-…`` forms of each
        (already-built rules pass through)."""
        if isinstance(text, cls):
            return text
        text = text.strip().lower()
        action = "error"
        if text == "crash":
            return cls("always", action="crash")
        if text.startswith("crash-"):
            action = "crash"
            text = text[len("crash-"):]
        if text in ("always", "once"):
            return cls(text, action=action)
        for word in ("after", "every"):
            prefix = word + "-"
            if text.startswith(prefix):
                return cls((word, int(text[len(prefix):])), action=action)
        raise ValueError("bad fault schedule %r" % (text,))

    def should_fire(self):
        """Consult the rule once; True when this consultation faults."""
        self.hits += 1
        schedule = self.schedule
        if schedule == "always":
            return True
        if schedule == "once":
            return self.hits == 1
        kind, n = schedule
        if kind == "after":
            return self.hits >= n
        return self.hits % n == 0  # "every"


class FaultSet:
    """The armed fault configuration a kernel (and its volumes) consult.

    Two composable modes: explicit per-tag *rules* (deterministic
    schedules) and a seeded *random* mode that fires any known site with
    probability *rate* using its default errno.  The random stream is
    drawn from one :class:`random.Random` seeded at construction, so a
    scenario's entire fault sequence replays from its seed.
    """

    def __init__(self, rules=None, seed=None, rate=0.0, tags=None):
        self.rules = {}
        for tag, rule in (rules or {}).items():
            rule = FaultRule.parse(rule)
            if tag in CRASH_SITES:
                if rule.action != "crash":
                    raise ValueError(
                        "site %r is a torn crash site: only crash rules "
                        "may arm it (an error mid-mutation is "
                        "unrecoverable)" % (tag,))
            elif tag not in SITES:
                raise ValueError(
                    "unknown fault site %r (know %s)"
                    % (tag, ", ".join(sorted(SITES) + sorted(CRASH_SITES))))
            self.rules[tag] = rule
        self.seed = seed
        self.rate = rate
        #: restrict random-mode firing to these tags (None = all sites).
        #: Random mode only injects *errors*, so torn crash sites are
        #: not acceptable here either.
        if tags is not None:
            for tag in tags:
                if tag not in SITES:
                    raise ValueError("unknown fault site %r (know %s)"
                                     % (tag, ", ".join(sorted(SITES))))
        self.tags = frozenset(tags) if tags is not None else None
        self._rng = random.Random(seed) if seed is not None else None
        #: injections so far, per tag
        self.fired = {}
        #: consultations so far, per tag
        self.checked = {}
        #: record/replay hook (see :mod:`repro.obs.recorder`); wired by
        #: ``Kernel.arm_faults``/``Recorder.attach``, None otherwise —
        #: the standing one-``is None``-test discipline
        self.recorder = None
        #: the kernel to halt when a crash rule fires; wired by
        #: ``Kernel.arm_faults`` (None for hand-built sets, whose crash
        #: rules then just raise :class:`MachineCrash`)
        self.kernel = None

    @classmethod
    def parse(cls, spec):
        """A fault set from *spec*.

        Accepts a :class:`FaultSet` (returned as is), a mapping of tag →
        schedule, or a spec string of comma/semicolon-separated
        ``tag:schedule`` entries — ``"ufs.make:once,pipe.write:every-3"``
        (a bare ``tag`` means ``always``).
        """
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            return cls(rules=spec)
        if not isinstance(spec, str):
            raise TypeError("fault spec must be a FaultSet, dict, or str")
        rules = {}
        for part in spec.replace(";", ",").split(","):
            part = part.strip()
            if not part:
                continue
            tag, _, schedule = part.partition(":")
            rules[tag.strip()] = FaultRule.parse(schedule or "always")
        return cls(rules=rules)

    @classmethod
    def random(cls, seed, rate=0.05, tags=None):
        """A seeded random fault set firing each site at *rate*."""
        return cls(seed=seed, rate=rate, tags=tags)

    def check(self, tag, errno=None, kernel=None, proc=None):
        """One site consultation: raise the injected error if armed.

        *errno* is the site's default (``SITES[tag]`` when omitted); a
        deterministic rule's own errno wins over it.  *kernel* and
        *proc*, when the site has them, route the injection through the
        obs bus as a full ``fault.inject`` event; otherwise only the
        metrics counter and the set's own per-tag counts record it.
        """
        self.checked[tag] = self.checked.get(tag, 0) + 1
        rule = self.rules.get(tag)
        if rule is not None:
            fire = rule.should_fire()
            if fire and rule.action == "crash":
                self._fire_crash(tag, proc)
                return  # recorder flip suppressed the crash
            if fire and rule.errno is not None:
                errno = rule.errno
        elif self._rng is not None and (self.tags is None or tag in self.tags):
            fire = self._rng.random() < self.rate
        else:
            fire = False
        if not fire:
            return
        if errno is None:
            errno = SITES[tag]
        if self.recorder is not None:
            # Record the firing as an F decision — or, when this firing
            # is a bisect probe's flip target, suppress the injection.
            if not self.recorder.on_fault(tag, errno_name(errno), proc):
                return
        self.fired[tag] = self.fired.get(tag, 0) + 1
        if kernel is not None:
            obs = kernel.obs
            if obs is not None:
                if obs.metrics_on:
                    obs.metrics.inc((ev.FAULT_INJECT, tag))
                if proc is not None and obs.wants(proc):
                    obs.emit(ev.FAULT_INJECT, proc, tag,
                             "injected %s" % errno_name(errno))
        raise SyscallError(errno, "injected fault at %s" % tag)

    def check_crash(self, tag, proc=None):
        """One *torn-site* consultation: halt the machine if armed.

        Unlike :meth:`check`, this never touches the random stream (a
        torn site must not perturb the seed-deterministic error
        sequence of runs that don't arm it) and only explicit crash
        rules can fire.  The consultation is counted only when a rule
        exists, for the same reason: torn sites are invisible to
        unarmed runs.
        """
        rule = self.rules.get(tag)
        if rule is None:
            return
        self.checked[tag] = self.checked.get(tag, 0) + 1
        if rule.should_fire():
            self._fire_crash(tag, proc)

    def _fire_crash(self, tag, proc):
        """Halt the machine at *tag*: the power-cord pull.

        The recorder logs the crash as the run's final F decision (a
        bisect probe may flip it off, in which case the machine
        survives); the kernel, when wired, marks itself crashed and
        frees every sleeper; then :class:`MachineCrash` unwinds the
        firing thread past agents and guards.
        """
        if self.recorder is not None:
            if not self.recorder.on_fault(tag, "CRASH", proc):
                return
        self.fired[tag] = self.fired.get(tag, 0) + 1
        kernel = self.kernel
        if kernel is not None:
            kernel._crash_locked(tag, proc)
        raise MachineCrash(tag)

    def stats(self):
        """Per-tag consultation and injection counts (plain dicts)."""
        return {
            "checked": dict(self.checked),
            "fired": dict(self.fired),
            "seed": self.seed,
            "rate": self.rate,
        }

    def total_fired(self):
        """How many injections this set has performed altogether."""
        return sum(self.fired.values())
