"""Flag-gated kernel fast paths (name cache, trap dispatch, zero-copy).

Real 4.3BSD earned its performance with a handful of well-placed fast
paths — most famously the directory name lookup cache — and the paper's
pay-per-use argument (Section 3) is only meaningful against a baseline
kernel that has them: every agent measurement is a *ratio* over the
uninterposed system.  This module is the switchboard for the
reproduction's equivalents:

``namecache``
    The 4.3BSD-style directory name lookup cache
    (:mod:`repro.kernel.namecache`), consulted per component by
    :func:`repro.kernel.namei.namei`.

``trap_fast``
    Per-process precomputed syscall dispatch in
    :meth:`repro.kernel.trap.UserContext.trap`: when a number has no
    emulation-vector entry, no ktrace flag, no observability and no
    DFSTrace collector, the trap jumps straight to the kernel handler
    without rebuilding the sysent row lookup on every call.

``zero_copy``
    ``RegularFile.read_at`` hands back a memoryview over the file's
    buffer instead of an intermediate ``bytearray`` slice; the open-file
    layer materialises it into ``bytes`` exactly once at the
    kernel/user boundary.

``compiled``
    Compiled agent-stack dispatch (:mod:`repro.kernel.compile`): when
    an emulation vector is populated — exactly where ``trap_fast``
    stands down — the per-syscall decision chain through the toolkit
    tower is collapsed into one flat closure per number, invalidated on
    vector change like the trap table, plus flattened agent downcalls
    and single-lock ``trap_many``/vectored-I/O batching.

Every flag defaults **on** because all four paths are observably
equivalent to the seed behaviour (the equivalence test suite pins
this); booting with ``FastPathConfig.none()`` — or setting
``REPRO_FASTPATH=none`` — recovers the seed code paths bit for bit,
which is how ``benchmarks/bench_kernel_fastpath.py`` measures the
speedup A/B.

``stdio_readahead`` is the one knob that is *not* transparent: it sizes
libc's buffered-stdio chunking (``Sys.stdio_bufsiz``), which changes
workload trap counts.  It therefore defaults to 0 ("use the 1989
chunk sizes") and is only raised explicitly — the benchmark's "all on"
configuration uses :meth:`FastPathConfig.all_on`.
"""

import os

#: the four behaviour-transparent fast-path flags
FLAG_NAMES = ("namecache", "trap_fast", "zero_copy", "compiled")

#: default name-cache capacity (4.3BSD sized its nc hash by maxusers)
DEFAULT_NAMECACHE_CAPACITY = 4096

#: stdio readahead used by the "all on" benchmark configuration
DEFAULT_READAHEAD = 65536


class FastPathConfig:
    """One kernel's fast-path flag word, fixed at boot."""

    __slots__ = ("namecache", "trap_fast", "zero_copy", "compiled",
                 "namecache_capacity", "stdio_readahead")

    def __init__(self, namecache=True, trap_fast=True, zero_copy=True,
                 compiled=True,
                 namecache_capacity=DEFAULT_NAMECACHE_CAPACITY,
                 stdio_readahead=0):
        self.namecache = bool(namecache)
        self.trap_fast = bool(trap_fast)
        self.zero_copy = bool(zero_copy)
        self.compiled = bool(compiled)
        self.namecache_capacity = int(namecache_capacity)
        self.stdio_readahead = int(stdio_readahead)

    # -- constructors -----------------------------------------------------

    @classmethod
    def all_on(cls, stdio_readahead=DEFAULT_READAHEAD,
               namecache_capacity=DEFAULT_NAMECACHE_CAPACITY):
        """Every fast path on, including the stdio readahead sizing."""
        return cls(True, True, True, True,
                   namecache_capacity=namecache_capacity,
                   stdio_readahead=stdio_readahead)

    @classmethod
    def none(cls):
        """The seed kernel: every fast path off."""
        return cls(False, False, False, False, stdio_readahead=0)

    @classmethod
    def only(cls, *names, **kwargs):
        """A configuration with just the named flags on.

        ``only("namecache")`` isolates one path for A/B measurement;
        keyword arguments pass through to the constructor.
        """
        for name in names:
            if name not in FLAG_NAMES:
                raise ValueError("unknown fast-path flag %r" % (name,))
        flags = {name: name in names for name in FLAG_NAMES}
        flags.update(kwargs)
        return cls(**flags)

    @classmethod
    def parse(cls, spec):
        """Build a configuration from *spec*.

        Accepts an existing :class:`FastPathConfig` (returned as is),
        ``None`` (environment default), or a string: ``"all"``,
        ``"none"``/``"off"``, or a comma list of flag names optionally
        with ``readahead=N`` / ``capacity=N`` settings, e.g.
        ``"namecache,trap_fast,readahead=65536"``.
        """
        if isinstance(spec, cls):
            return spec
        if spec is None:
            return cls.from_env()
        if not isinstance(spec, str):
            raise TypeError("fastpaths must be a FastPathConfig, str, or None")
        text = spec.strip().lower()
        if text in ("", "all", "default", "on"):
            return cls()
        if text in ("none", "off"):
            return cls.none()
        if text == "all+readahead":
            return cls.all_on()
        names = []
        settings = {}
        for piece in text.split(","):
            piece = piece.strip()
            if not piece:
                continue
            if "=" in piece:
                key, _, value = piece.partition("=")
                key = key.strip()
                if key == "readahead":
                    settings["stdio_readahead"] = int(value)
                elif key == "capacity":
                    settings["namecache_capacity"] = int(value)
                else:
                    raise ValueError("unknown fast-path setting %r" % (key,))
            else:
                if piece not in FLAG_NAMES:
                    raise ValueError("unknown fast-path flag %r" % (piece,))
                names.append(piece)
        return cls.only(*names, **settings)

    @classmethod
    def from_env(cls):
        """The configuration named by ``$REPRO_FASTPATH`` (default all on)."""
        return cls.parse(os.environ.get("REPRO_FASTPATH", "all"))

    # -- introspection ----------------------------------------------------

    def describe(self):
        """A plain-dict rendering for reports and ``kernel_stats``."""
        return {
            "namecache": self.namecache,
            "trap_fast": self.trap_fast,
            "zero_copy": self.zero_copy,
            "compiled": self.compiled,
            "namecache_capacity": self.namecache_capacity,
            "stdio_readahead": self.stdio_readahead,
        }

    def __repr__(self):
        on = [name for name in FLAG_NAMES if getattr(self, name)]
        return "<FastPathConfig %s readahead=%d>" % (
            ",".join(on) or "none", self.stdio_readahead)
