"""The system call trap path and signal delivery.

This module is the reproduction's equivalent of the Mach 2.5 emulation
mechanism the paper builds on:

* :meth:`UserContext.trap` is the system call instruction.  It consults
  the process's *emulation vector* first; a registered handler (the
  agent, running in the client's own context) gets the call instead of
  the kernel — that is ``task_set_emulation`` redirection.
* :func:`htg_unix_syscall` is the downcall: it executes the kernel
  implementation even for redirected numbers, paying a small extra cost
  (paper Table 3-4 measures 37 µs for it on a 25 MHz i486).
* Pending signals are delivered at trap boundaries.  If the process has
  a signal redirection installed, the agent's handler gets the *upcall*
  before any application handler — the paper's completeness goal.

**rusage accounting.** ``ru_nsyscalls`` counts *kernel crossings*, not
application-level calls: both :meth:`UserContext.trap` and
:func:`htg_unix_syscall` increment it, so a call that an agent
intercepts and forwards with the downcall is charged **twice** — once
for the client's trap into the agent, once for the agent's bypass trap
into the kernel.  That is deliberate and matches the paper's model
(Table 3-4 treats ``htg_unix_syscall`` as a trap in its own right with
its own crossing cost).  Consumers who want application-level call
counts should use ``kernel.trap_total`` (traps issued, regardless of
path) or the observability counters ``("trap", name)`` /
``("htg", name)``, which keep the two populations separate.

**Observability.** When ``kernel.obs`` is set (see :mod:`repro.obs`),
the trap path records per-call counters, virtual-clock latency
histograms, and — for traced processes — ``trap.agent`` /
``trap.kernel`` / ``trap.ret`` events.  Disabled, the entire hook is
one ``is None`` test, preserving the pay-per-use property this module
exists to demonstrate.
"""

from repro.kernel import signals as sig
from repro.kernel import sysent
from repro.kernel.compile import build_compiled_dispatch
from repro.kernel.errno import EINVAL, SyscallError, errno_name
from repro.kernel.faultsite import MachineCrash
from repro.kernel.proc import ExecImage, ProcessExit
from repro.obs import events as ev

#: shared sentinel installed as ``proc.fast_dispatch`` when the trap
#: fast path is configured off: an empty table makes every lookup miss,
#: so the disabled path costs exactly one ``dict.get`` per trap
_FAST_DISABLED = {}

#: the shared full table for processes with an empty emulation vector —
#: the overwhelmingly common case; built once, never mutated, so every
#: fork and execve "rebuilds" it for free
_FULL_TABLE = None


def build_fast_dispatch(kernel, proc):
    """Precompute *proc*'s fast dispatch table.

    The table maps syscall number → ``(impl, sysent entry)`` for every
    call the kernel implements **and** the process has not redirected
    through its emulation vector.  A trap that finds its number here
    (and no ktrace/dfstrace/obs consumer live) skips the per-call
    handler lookup, ``entry_for``, and ``DISPATCH.get`` of the slow
    path.  The table is invalidated (set back to ``None``) whenever the
    emulation vector changes — ``task_set_emulation`` and ``execve``;
    fork gives the child a fresh Process, so it rebuilds naturally.

    Uninterposed processes all share one read-only table: building a
    ~200-entry dict per fork would cost more than the fast path saves
    on short-lived children (the make workload's 64 cc/ld pairs).
    """
    if not kernel.fastpaths.trap_fast:
        return _FAST_DISABLED
    # Imported here: repro.kernel.syscalls imports this module's
    # SyscallError re-raisers transitively, so a top-level import cycles.
    from repro.kernel.syscalls import DISPATCH

    global _FULL_TABLE
    if _FULL_TABLE is None:
        _FULL_TABLE = {
            number: (impl, sysent.entry_for(number))
            for number, impl in DISPATCH.items()
        }
    vector = proc.emulation_vector
    if not vector:
        return _FULL_TABLE
    return {
        number: row
        for number, row in _FULL_TABLE.items()
        if number not in vector
    }


def _brief(args, limit=48):
    """A short, single-line rendering of trap arguments for event details.

    Callables render by qualified name: their default repr embeds a
    host memory address, which would make otherwise-identical runs
    compare unequal under record/replay.
    """
    text = ", ".join(
        "<%s>" % getattr(a, "__qualname__", type(a).__name__)
        if callable(a) else repr(a)
        for a in args)
    if len(text) > limit:
        text = text[:limit] + "..."
    return text


def htg_unix_syscall(kernel, proc, number, args):
    """Invoke the underlying kernel system call, bypassing interposition.

    The bypass is itself a trap: the caller crosses into the kernel once
    to slip past the emulation vector (Mach measured 37 µs for this on a
    25 MHz i486, the same order as interception itself), and then the
    call proper is performed.  Modelling the bypass as a real kernel
    crossing keeps the overhead measurable, as in Table 3-4 — and is why
    ``ru_nsyscalls`` legitimately counts a forwarded call twice (see the
    module docstring).
    """
    rec = kernel.recorder
    if rec is not None:
        # Almost always nested under the calling trap's turn (an agent's
        # downcall), where begin() just bumps the depth and logs
        # nothing; a genuinely top-level htg records its own H turn.
        rec.begin(proc, "H", sysent.name_of(number))
        try:
            return _htg_body(kernel, proc, number, args)
        finally:
            rec.end()
    return _htg_body(kernel, proc, number, args)


def _htg_body(kernel, proc, number, args):
    """The downcall proper (see :func:`htg_unix_syscall`)."""
    proc.rusage.ru_nsyscalls += 1
    with kernel._sleepq:
        if number in proc.emulation_vector:
            proc.rusage.ru_stime_usec += 1
    obs = kernel.obs
    if obs is not None:
        name = sysent.name_of(number)
        if obs.metrics_on:
            obs.metrics.inc(("htg", name))
        if obs.wants(proc):
            obs.emit(ev.HTG, proc, name, _brief(args))
    return kernel.do_syscall(proc, number, args)


class UserContext:
    """A process's user-mode view of the machine: the trap instruction.

    Programs and toolkit boilerplate hold one of these; nothing else about
    the kernel is visible from user mode.
    """

    __slots__ = ("kernel", "proc")

    def __init__(self, kernel, proc):
        self.kernel = kernel
        self.proc = proc

    def trap(self, number, *args):
        """Issue system call *number*; the application's entry into the
        system interface, whether that interface is the kernel or an agent."""
        proc = self.proc
        kernel = self.kernel
        if kernel.crashed is not None:
            # The machine halted: every surviving thread dies at its
            # next kernel-world entry, silently (no counters, no events).
            raise MachineCrash(kernel.crashed)
        proc.rusage.ru_nsyscalls += 1
        kernel.trap_total += 1
        if kernel.recorder is not None:
            return self._trap_recorded(kernel.recorder, number, args)
        obs = kernel.obs
        if obs is not None:
            return self._trap_observed(obs, number, args)

        # Fast path: no emulation-vector entry for this number, no
        # tracing consumer live.  One dict.get decides; a hit dispatches
        # straight to the kernel implementation with the sysent row in
        # hand, skipping the slow path's per-call lookups.  Signals are
        # still delivered at the boundary — outside the kernel lock,
        # which take_signal re-acquires.
        table = proc.fast_dispatch
        if table is None:
            table = proc.fast_dispatch = build_fast_dispatch(kernel, proc)
        row = table.get(number)
        if (row is not None and kernel.dfstrace is None
                and not proc.ktrace_on):
            impl, entry = row
            kernel.trap_fast_total += 1
            try:
                if len(args) > entry.nargs:
                    raise SyscallError(
                        EINVAL, "%s takes %d args" % (entry.name, entry.nargs)
                    )
                with kernel._sleepq:
                    if kernel.crashed is not None:
                        raise MachineCrash(kernel.crashed)
                    kernel.clock.tick()
                    proc.rusage.ru_stime_usec += 100
                    kernel._check_alarm_locked(proc)
                    if kernel.profiler is not None:
                        kernel.profiler.sample_tick(
                            proc, "kernel:" + entry.name)
                    if kernel.watches is not None:
                        kernel.watches.maybe_evaluate(kernel, proc)
                    result = impl(kernel, proc, *args)
            except SyscallError:
                deliver_pending_signals(self)
                raise
            if proc.pending:
                deliver_pending_signals(self)
            return result

        handler = proc.emulation_vector.get(number)
        try:
            if handler is not None:
                # Redirected: the agent's handler runs here, in the
                # client's own context (same address space, same thread).
                # With a guard rail installed, the invocation goes
                # through it so agent faults are contained per policy;
                # fast-path traps for interposed numbers fall through to
                # this same site, so one hook covers every dispatch path.
                guard = kernel.guard
                if guard is not None:
                    result = guard.run_handler(self, handler, number, args)
                else:
                    # Compiled agent-stack dispatch: a flat per-number
                    # chain replaces the layer tower when every observer
                    # that could tell the difference is quiet (recorder
                    # and obs were dispatched above, the guard is the
                    # branch we did not take, dfstrace/ktrace checked
                    # here).  Same lazy-rebuild lifecycle as the fast
                    # table above.
                    ctable = proc.compiled_dispatch
                    if ctable is None:
                        ctable = proc.compiled_dispatch = \
                            build_compiled_dispatch(kernel, proc)
                    crow = ctable.get(number)
                    if (crow is not None and kernel.dfstrace is None
                            and kernel.profiler is None
                            and not proc.ktrace_on):
                        result = crow[0](self, args)
                    else:
                        result = handler(self, number, args)
            else:
                result = kernel.do_syscall(proc, number, args)
        except SyscallError:
            deliver_pending_signals(self)
            raise
        deliver_pending_signals(self)
        return result

    def trap_many(self, number, calls):
        """Issue a homogeneous batch of system call *number* traps.

        *calls* is a sequence of argument tuples; the result is exactly
        ``[self.trap(number, *args) for args in calls]`` — same results,
        same per-call accounting, same signal delivery at every call
        boundary, and a :class:`SyscallError` aborts the batch at the
        failing call just as it would abort a sequential loop.  What the
        batch buys is dispatch amortization: when nothing stands in the
        way (no recorder/obs/guard/dfstrace/ktrace), the whole batch
        runs through one compiled chain — or one fast-dispatch row —
        under a single kernel lock acquisition, dropping the lock only
        when a signal becomes pending so delivery interleaves exactly as
        the sequential loop's would.
        """
        calls = list(calls)
        kernel = self.kernel
        proc = self.proc
        if (kernel.recorder is None and kernel.obs is None
                and kernel.guard is None and kernel.dfstrace is None
                and not proc.ktrace_on):
            if number in proc.emulation_vector:
                ctable = proc.compiled_dispatch
                if ctable is None:
                    ctable = proc.compiled_dispatch = \
                        build_compiled_dispatch(kernel, proc)
                crow = ctable.get(number)
                if (crow is not None and crow[1] is not None
                        and kernel.profiler is None):
                    results = crow[1](self, calls)
                    if results is not NotImplemented:
                        return results
            else:
                results = self._trap_many_fast(number, calls)
                if results is not NotImplemented:
                    return results
        return [self.trap(number, *args) for args in calls]

    def _trap_many_fast(self, number, calls):
        """Single-lock batch over an uninterposed fast-dispatch row.

        The per-call work mirrors the fast path in :meth:`trap` —
        crossing and trap counters, arity check (the fast path's
        messageful EINVAL included), tick, system-time charge, alarm
        check, implementation — with the lock held across calls instead
        of per call.  Returns ``NotImplemented`` when the number has no
        fast row (interposed, unimplemented, or the flag is off) so the
        caller falls back to the sequential loop.
        """
        kernel = self.kernel
        proc = self.proc
        table = proc.fast_dispatch
        if table is None:
            table = proc.fast_dispatch = build_fast_dispatch(kernel, proc)
        row = table.get(number)
        if row is None:
            return NotImplemented
        impl, entry = row
        nargs = entry.nargs
        name = entry.name
        kframe = "kernel:" + name
        rusage = proc.rusage
        results = []
        index = 0
        total = len(calls)
        while index < total:
            error = None
            with kernel._sleepq:
                while index < total:
                    if kernel.crashed is not None:
                        raise MachineCrash(kernel.crashed)
                    args = calls[index]
                    rusage.ru_nsyscalls += 1
                    kernel.trap_total += 1
                    kernel.trap_fast_total += 1
                    try:
                        if len(args) > nargs:
                            raise SyscallError(
                                EINVAL, "%s takes %d args" % (name, nargs))
                        kernel.clock.tick()
                        rusage.ru_stime_usec += 100
                        kernel._check_alarm_locked(proc)
                        if kernel.profiler is not None:
                            kernel.profiler.sample_tick(proc, kframe)
                        if kernel.watches is not None:
                            kernel.watches.maybe_evaluate(kernel, proc)
                        results.append(impl(kernel, proc, *args))
                    except SyscallError as exc:
                        error = exc
                        break
                    index += 1
                    if proc.pending:
                        break
            if error is not None:
                deliver_pending_signals(self)
                raise error
            if proc.pending:
                deliver_pending_signals(self)
        return results

    def _trap_recorded(self, rec, number, args):
        """The trap path under record/replay's turn token.

        The whole trap — agent handler, kernel work, sleeps (which
        suspend and re-acquire the token inside ``sleep_until``), and
        boundary signal delivery — runs as one recorded *turn*; with
        observability also enabled the observed path runs inside it, so
        obs event order is part of what replay reproduces bit-for-bit.
        Dispatch always takes the slow path: both record and replay use
        the same code, so the fast-dispatch counters stay comparable
        between the two runs.
        """
        proc = self.proc
        kernel = self.kernel
        rec.begin(proc, "T", sysent.name_of(number))
        try:
            # After begin (a passive-freed thread lands here) but before
            # the observed path: a post-crash trap must emit nothing, or
            # host scheduling would leak into the recorded event stream.
            if kernel.crashed is not None:
                raise MachineCrash(kernel.crashed)
            obs = kernel.obs
            if obs is not None:
                return self._trap_observed(obs, number, args)
            handler = proc.emulation_vector.get(number)
            try:
                if handler is not None:
                    guard = kernel.guard
                    if guard is not None:
                        result = guard.run_handler(self, handler, number,
                                                   args)
                    else:
                        result = handler(self, number, args)
                else:
                    result = kernel.do_syscall(proc, number, args)
            except SyscallError:
                deliver_pending_signals(self)
                raise
            deliver_pending_signals(self)
            return result
        finally:
            rec.end()

    def _trap_observed(self, obs, number, args):
        """The trap path with observability enabled.

        Mirrors :meth:`trap` exactly (redirect decision, signal delivery
        on return and on :class:`SyscallError`, clean unwind for
        ``ExecImage``/``ProcessExit``) while recording counters, the
        virtual-clock latency histogram, and — when the process is
        traced or the bus has subscribers — enter/return events.
        """
        proc = self.proc
        kernel = self.kernel
        name = sysent.name_of(number)
        handler = proc.emulation_vector.get(number)
        metrics = obs.metrics if obs.metrics_on else None
        if metrics is not None:
            metrics.inc(("trap", name))
            if handler is not None:
                metrics.inc(("trap.agent", name))
            else:
                metrics.inc(("trap.kernel", name))
            metrics.inc(("trap.pid", proc.pid, name))
        wants = obs.wants(proc)
        if wants:
            obs.emit(ev.TRAP_AGENT if handler is not None else ev.TRAP_KERNEL,
                     proc, name, _brief(args))
        start = kernel.clock.usec()
        try:
            if handler is not None:
                guard = kernel.guard
                if guard is not None:
                    result = guard.run_handler(self, handler, number, args)
                else:
                    result = handler(self, number, args)
            else:
                result = kernel.do_syscall(proc, number, args)
        except SyscallError as err:
            elapsed = kernel.clock.usec() - start
            errname = errno_name(err.errno)
            if metrics is not None:
                metrics.observe(("trap.vusec", name), elapsed)
                metrics.inc(("trap.error", name, errname))
            if wants:
                obs.emit(ev.TRAP_RET, proc, name,
                         "err %s (%d vusec)" % (errname, elapsed))
            deliver_pending_signals(self)
            raise
        except (ExecImage, ProcessExit):
            # The trap never returns (exec replaces the image, exit tears
            # the process down): no signal delivery, matching the plain
            # path's unwind, but do record that the call did not return.
            if wants:
                obs.emit(ev.TRAP_RET, proc, name, "unwound")
            raise
        elapsed = kernel.clock.usec() - start
        if metrics is not None:
            metrics.observe(("trap.vusec", name), elapsed)
        if wants:
            obs.emit(ev.TRAP_RET, proc, name,
                     "-> %s (%d vusec)" % (_brief((result,)), elapsed))
        deliver_pending_signals(self)
        return result

    def htg(self, number, *args):
        """``htg_unix_syscall``: agents' downcall past their own redirection."""
        return htg_unix_syscall(self.kernel, self.proc, number, args)

    def consume_cpu(self, usec):
        """Charge user-mode CPU time (advances the virtual clock)."""
        kernel = self.kernel
        if kernel.crashed is not None:
            raise MachineCrash(kernel.crashed)
        prof = kernel.profiler
        rec = kernel.recorder
        if rec is not None:
            # The clock advance happens outside any trap, so two
            # processes burning CPU race on it: make it its own turn.
            rec.begin(self.proc, "C", str(usec))
            try:
                start = kernel.clock._usec
                self.proc.rusage.ru_utime_usec += usec
                kernel.clock.advance(usec)
                if prof is not None:
                    prof.sample_span(self.proc, None, start)
                deliver_pending_signals(self)
            finally:
                rec.end()
            return
        start = kernel.clock._usec
        self.proc.rusage.ru_utime_usec += usec
        kernel.clock.advance(usec)
        if prof is not None:
            prof.sample_span(self.proc, None, start)
        deliver_pending_signals(self)


def deliver_pending_signals(ctx):
    """Deliver every currently deliverable signal, agent upcall first."""
    kernel, proc = ctx.kernel, ctx.proc
    if not proc.pending:
        return
    while True:
        signum = kernel.take_signal(proc)
        if signum is None:
            return
        redirect = proc.signal_redirect
        if redirect is not None:
            # Upcall here; signal.deliver is emitted by
            # deliver_signal_to_application itself iff the agent
            # forwards, so forwarded signals produce an upcall→deliver
            # pair and swallowed ones a lone upcall.
            obs = kernel.obs
            if obs is not None:
                signame = sig.signal_name(signum)
                if obs.metrics_on:
                    obs.metrics.inc((ev.SIG_UPCALL, signame))
                if obs.wants(proc):
                    obs.emit(ev.SIG_UPCALL, proc, signame)
            guard = kernel.guard
            if guard is not None:
                guard.run_signal(ctx, redirect, signum,
                                 proc.dispositions[signum])
            else:
                redirect(ctx, signum, proc.dispositions[signum])
        else:
            deliver_signal_to_application(kernel, proc, signum)


def deliver_signal_to_application(kernel, proc, signum):
    """Run the application's disposition for *signum* in its context.

    This is also the toolkit's "send a signal from an agent up to the
    application" path: an agent's signal redirection calls it (directly
    or via the boilerplate) to forward.  The ``signal.deliver`` event is
    emitted here — the moment the application's own disposition is
    reached — which is what pairs it with a preceding ``signal.upcall``
    when an interposed signal was forwarded through an agent.
    """
    obs = kernel.obs
    if obs is not None:
        signame = sig.signal_name(signum)
        if obs.metrics_on:
            obs.metrics.inc((ev.SIG_DELIVER, signame))
        if obs.wants(proc):
            obs.emit(ev.SIG_DELIVER, proc, signame)
    action = proc.dispositions[signum]
    handler = action.handler
    if handler == sig.SIG_IGN:
        return
    if handler == sig.SIG_DFL:
        what = sig.default_action(signum)
        if what == "ignore":
            return
        if what == "stop":
            kernel.stop_process(proc)
            return
        kernel.terminate(proc, signum)
        raise AssertionError("terminate returned")
    # A caught signal: run the handler with the signal (and the action's
    # extra mask) blocked, restoring the mask afterwards.
    old_mask = proc.sigmask
    proc.sigmask |= action.mask | sig.sigmask(signum)
    try:
        handler(signum)
    finally:
        proc.sigmask = old_mask
