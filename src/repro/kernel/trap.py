"""The system call trap path and signal delivery.

This module is the reproduction's equivalent of the Mach 2.5 emulation
mechanism the paper builds on:

* :meth:`UserContext.trap` is the system call instruction.  It consults
  the process's *emulation vector* first; a registered handler (the
  agent, running in the client's own context) gets the call instead of
  the kernel — that is ``task_set_emulation`` redirection.
* :func:`htg_unix_syscall` is the downcall: it executes the kernel
  implementation even for redirected numbers, paying a small extra cost
  (paper Table 3-4 measures 37 µs for it on a 25 MHz i486).
* Pending signals are delivered at trap boundaries.  If the process has
  a signal redirection installed, the agent's handler gets the *upcall*
  before any application handler — the paper's completeness goal.
"""

from repro.kernel import signals as sig
from repro.kernel.errno import SyscallError
from repro.kernel.proc import ExecImage, ProcessExit


def htg_unix_syscall(kernel, proc, number, args):
    """Invoke the underlying kernel system call, bypassing interposition.

    The bypass is itself a trap: the caller crosses into the kernel once
    to slip past the emulation vector (Mach measured 37 µs for this on a
    25 MHz i486, the same order as interception itself), and then the
    call proper is performed.  Modelling the bypass as a real kernel
    crossing keeps the overhead measurable, as in Table 3-4.
    """
    proc.rusage.ru_nsyscalls += 1
    with kernel._sleepq:
        if number in proc.emulation_vector:
            proc.rusage.ru_stime_usec += 1
    return kernel.do_syscall(proc, number, args)


class UserContext:
    """A process's user-mode view of the machine: the trap instruction.

    Programs and toolkit boilerplate hold one of these; nothing else about
    the kernel is visible from user mode.
    """

    __slots__ = ("kernel", "proc")

    def __init__(self, kernel, proc):
        self.kernel = kernel
        self.proc = proc

    def trap(self, number, *args):
        """Issue system call *number*; the application's entry into the
        system interface, whether that interface is the kernel or an agent."""
        proc = self.proc
        proc.rusage.ru_nsyscalls += 1
        self.kernel.trap_total += 1
        handler = proc.emulation_vector.get(number)
        try:
            if handler is not None:
                # Redirected: the agent's handler runs here, in the
                # client's own context (same address space, same thread).
                result = handler(self, number, args)
            else:
                result = self.kernel.do_syscall(proc, number, args)
        except SyscallError:
            deliver_pending_signals(self)
            raise
        deliver_pending_signals(self)
        return result

    def htg(self, number, *args):
        """``htg_unix_syscall``: agents' downcall past their own redirection."""
        return htg_unix_syscall(self.kernel, self.proc, number, args)

    def consume_cpu(self, usec):
        """Charge user-mode CPU time (advances the virtual clock)."""
        self.proc.rusage.ru_utime_usec += usec
        self.kernel.clock.advance(usec)
        deliver_pending_signals(self)


def deliver_pending_signals(ctx):
    """Deliver every currently deliverable signal, agent upcall first."""
    kernel, proc = ctx.kernel, ctx.proc
    if not proc.pending:
        return
    while True:
        signum = kernel.take_signal(proc)
        if signum is None:
            return
        redirect = proc.signal_redirect
        if redirect is not None:
            redirect(ctx, signum, proc.dispositions[signum])
        else:
            deliver_signal_to_application(kernel, proc, signum)


def deliver_signal_to_application(kernel, proc, signum):
    """Run the application's disposition for *signum* in its context.

    This is also the toolkit's "send a signal from an agent up to the
    application" path: an agent's signal redirection calls it (directly
    or via the boilerplate) to forward.
    """
    action = proc.dispositions[signum]
    handler = action.handler
    if handler == sig.SIG_IGN:
        return
    if handler == sig.SIG_DFL:
        what = sig.default_action(signum)
        if what == "ignore":
            return
        if what == "stop":
            kernel.stop_process(proc)
            return
        kernel.terminate(proc, signum)
        raise AssertionError("terminate returned")
    # A caught signal: run the handler with the signal (and the action's
    # extra mask) blocked, restoring the mask afterwards.
    old_mask = proc.sigmask
    proc.sigmask |= action.mask | sig.sigmask(signum)
    try:
        handler(signum)
    finally:
        proc.sigmask = old_mask
