"""4.3BSD-style kernel trace facility: the ring buffer and its ops.

Real 4.3BSD's ``ktrace(2)`` attaches a trace point stream to a vnode;
our simulated kernel keeps one global ring buffer of
:class:`repro.obs.events.Event` records instead, sized at observability
enable time.  Per-process participation mirrors BSD semantics:

* ``ktrace(KTROP_SET, pid)`` turns tracing on for a process (0 = self);
* the flag is **inherited across fork** (like BSD's ``KTRFAC_INHERIT``
  behaviour under ``ktrace -i``, which is what makes tracing a shell
  pipeline useful);
* a **native execve clears it** (the same conservative reset applied to
  the emulation vector — a fresh image starts untraced), while the
  toolkit's ``jump_to_image`` preserves it, which is exactly how the
  in-world ``ktrace`` program survives into the command it runs.

When the buffer is full the *oldest* record is overwritten and the
``dropped`` counter is bumped, so a reader can always tell how much
history it lost — the ring never blocks the traced process.
"""

from collections import deque

#: enable tracing for a process (pid 0 = the caller)
KTROP_SET = 0
#: disable tracing for a process (pid 0 = the caller)
KTROP_CLEAR = 1
#: disable tracing for every process
KTROP_CLEARALL = 2
#: discard buffered records and reset the dropped counter
KTROP_CLEARBUF = 3


class KtraceBuffer:
    """A bounded ring of trace events with overwrite-oldest semantics."""

    def __init__(self, capacity=4096):
        if capacity < 1:
            raise ValueError("ktrace capacity must be >= 1")
        self.capacity = capacity
        self._ring = deque()
        #: records overwritten before anyone read them
        self.dropped = 0
        #: records ever appended (drained + buffered + dropped)
        self.total = 0

    def __len__(self):
        return len(self._ring)

    def append(self, event):
        """Add *event*, evicting (and counting) the oldest when full."""
        if len(self._ring) >= self.capacity:
            self._ring.popleft()
            self.dropped += 1
        self._ring.append(event)
        self.total += 1

    def snapshot(self):
        """The buffered events, oldest first, without consuming them."""
        return list(self._ring)

    def drain(self, limit=None):
        """Remove and return up to *limit* events, oldest first.

        ``limit`` of ``None`` (or 0) drains everything — this is what
        ``ktrace_read`` uses, so records are delivered exactly once.
        """
        if not limit:
            limit = len(self._ring)
        out = []
        while self._ring and len(out) < limit:
            out.append(self._ring.popleft())
        return out

    def clear(self):
        """Discard buffered records and reset the dropped counter."""
        self._ring.clear()
        self.dropped = 0
