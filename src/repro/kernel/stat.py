"""File mode bits and the ``struct stat`` record, 4.3BSD layout."""

S_IFMT = 0o170000
S_IFIFO = 0o010000
S_IFCHR = 0o020000
S_IFDIR = 0o040000
S_IFBLK = 0o060000
S_IFREG = 0o100000
S_IFLNK = 0o120000
S_IFSOCK = 0o140000

S_ISUID = 0o4000
S_ISGID = 0o2000
S_ISVTX = 0o1000

S_IRWXU = 0o700
S_IRUSR = 0o400
S_IWUSR = 0o200
S_IXUSR = 0o100
S_IRWXG = 0o070
S_IRGRP = 0o040
S_IWGRP = 0o020
S_IXGRP = 0o010
S_IRWXO = 0o007
S_IROTH = 0o004
S_IWOTH = 0o002
S_IXOTH = 0o001

ACCESSPERMS = 0o777
DEFFILEMODE = 0o666


def S_ISDIR(mode):
    """True if *mode* is a directory."""
    return (mode & S_IFMT) == S_IFDIR


def S_ISREG(mode):
    """True if *mode* is a regular file."""
    return (mode & S_IFMT) == S_IFREG


def S_ISLNK(mode):
    """True if *mode* is a symbolic link."""
    return (mode & S_IFMT) == S_IFLNK


def S_ISCHR(mode):
    """True if *mode* is a character device."""
    return (mode & S_IFMT) == S_IFCHR


def S_ISBLK(mode):
    """True if *mode* is a block device."""
    return (mode & S_IFMT) == S_IFBLK


def S_ISFIFO(mode):
    """True if *mode* is a FIFO."""
    return (mode & S_IFMT) == S_IFIFO


def S_ISSOCK(mode):
    """True if *mode* is a socket."""
    return (mode & S_IFMT) == S_IFSOCK


class Stat:
    """The record returned by ``stat``/``lstat``/``fstat``.

    Field names follow ``struct stat``; values are plain Python ints so
    agents can freely inspect, copy, and rewrite them before passing the
    record back up to an application.
    """

    __slots__ = (
        "st_dev",
        "st_ino",
        "st_mode",
        "st_nlink",
        "st_uid",
        "st_gid",
        "st_rdev",
        "st_size",
        "st_atime",
        "st_mtime",
        "st_ctime",
        "st_blksize",
        "st_blocks",
    )

    def __init__(self, st_dev=0, st_ino=0, st_mode=0, st_nlink=0, st_uid=0,
                 st_gid=0, st_rdev=0, st_size=0, st_atime=0, st_mtime=0,
                 st_ctime=0, st_blksize=0, st_blocks=0):
        # Direct slot assignment: this constructor runs on every stat,
        # lstat, and fstat, so it must not loop setattr over the slots.
        self.st_dev = st_dev
        self.st_ino = st_ino
        self.st_mode = st_mode
        self.st_nlink = st_nlink
        self.st_uid = st_uid
        self.st_gid = st_gid
        self.st_rdev = st_rdev
        self.st_size = st_size
        self.st_atime = st_atime
        self.st_mtime = st_mtime
        self.st_ctime = st_ctime
        self.st_blksize = st_blksize
        self.st_blocks = st_blocks

    def copy(self):
        """An independent copy agents may rewrite."""
        return Stat(**{name: getattr(self, name) for name in self.__slots__})

    def __eq__(self, other):
        if not isinstance(other, Stat):
            return NotImplemented
        return all(getattr(self, n) == getattr(other, n) for n in self.__slots__)

    def __repr__(self):
        kind = {
            S_IFIFO: "fifo",
            S_IFCHR: "chr",
            S_IFDIR: "dir",
            S_IFBLK: "blk",
            S_IFREG: "reg",
            S_IFLNK: "lnk",
            S_IFSOCK: "sock",
        }.get(self.st_mode & S_IFMT, "?")
        return "<Stat %s ino=%d mode=%o size=%d>" % (
            kind,
            self.st_ino,
            self.st_mode & ~S_IFMT,
            self.st_size,
        )
