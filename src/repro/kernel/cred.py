"""Process credentials and permission checks (4.3BSD ``struct ucred``)."""

from repro.kernel import stat as st
from repro.kernel.errno import EACCES, EPERM, SyscallError

NGROUPS = 16


class Cred:
    """A process's user and group identity."""

    __slots__ = ("uid", "euid", "gid", "egid", "groups")

    def __init__(self, uid=0, gid=0, euid=None, egid=None, groups=()):
        self.uid = uid
        self.euid = uid if euid is None else euid
        self.gid = gid
        self.egid = gid if egid is None else egid
        self.groups = list(groups) or [self.gid]

    def copy(self):
        """An independent copy (fork inherits credentials by value)."""
        return Cred(self.uid, self.gid, self.euid, self.egid, list(self.groups))

    def is_superuser(self):
        """True when the effective uid is root."""
        return self.euid == 0

    def in_group(self, gid):
        """True if *gid* is the effective or a supplementary group."""
        return gid == self.egid or gid in self.groups


#: access() / open() intent bits
R_OK = 4
W_OK = 2
X_OK = 1
F_OK = 0


def check_access(inode, cred, want):
    """Raise ``EACCES`` unless *cred* may access *inode* with intent *want*.

    Follows the 4.3BSD rule set: root may do anything except execute a
    file with no execute bits at all; otherwise owner, then group, then
    other bits apply — whichever class matches first is decisive.
    """
    if want == F_OK:
        return
    mode = inode.mode
    if cred.is_superuser():
        if want & X_OK and st.S_ISREG(mode) and not mode & 0o111:
            raise SyscallError(EACCES, "root exec of non-executable")
        return
    if cred.euid == inode.uid:
        shift = 6
    elif cred.in_group(inode.gid):
        shift = 3
    else:
        shift = 0
    granted = (mode >> shift) & 7
    if want & ~granted:
        raise SyscallError(EACCES)


def check_owner(inode, cred):
    """Raise ``EPERM`` unless *cred* owns *inode* or is the superuser."""
    if not cred.is_superuser() and cred.euid != inode.uid:
        raise SyscallError(EPERM)
