"""The character device switch: /dev/null, /dev/zero, /dev/tty, console.

Devices demonstrate the paper's "logical devices implemented entirely in
user space" idea from the kernel side: an agent can interpose its own
device behaviour above these without the kernel knowing.
"""

from repro.kernel.errno import EINVAL, ENODEV, ENOTTY, ENXIO, SyscallError
from repro.kernel.ofile import SEEK_CUR, SEEK_END, SEEK_SET

# ioctl requests we implement (a tiny, tty-flavoured set)
TIOCGWINSZ = 0x4008_7468
FIONREAD = 0x4004_667F


class Device:
    """Base character device."""

    name = "dev"

    def __init__(self):
        self.open_count = 0

    def opened(self):
        """A descriptor opened this device."""
        self.open_count += 1

    def closed(self):
        """A descriptor to this device was closed."""
        self.open_count -= 1

    def read(self, kernel, proc, count):
        """Read from the device (ENXIO unless overridden)."""
        raise SyscallError(ENXIO)

    def write(self, kernel, proc, data):
        """Write to the device (ENXIO unless overridden)."""
        raise SyscallError(ENXIO)

    def seek(self, kernel, offset, whence):
        """Seeks on devices are accepted and ignored."""
        if whence not in (SEEK_SET, SEEK_CUR, SEEK_END):
            raise SyscallError(EINVAL)
        return 0

    def ioctl(self, kernel, proc, request, arg):
        """Device control (ENOTTY unless overridden)."""
        raise SyscallError(ENOTTY)


class NullDevice(Device):
    """/dev/null: reads give EOF, writes vanish."""

    name = "null"

    def read(self, kernel, proc, count):
        """Always end-of-file."""
        return b""

    def write(self, kernel, proc, data):
        """Swallow the bytes, reporting success."""
        return len(data)


class ZeroDevice(Device):
    """/dev/zero: an endless supply of NUL bytes."""

    name = "zero"

    def read(self, kernel, proc, count):
        """An endless run of NUL bytes."""
        return b"\0" * count

    def write(self, kernel, proc, data):
        """Swallow the bytes, reporting success."""
        return len(data)


class ConsoleDevice(Device):
    """/dev/console and /dev/tty: scripted input, captured output.

    The host test harness loads input with :meth:`feed` and collects what
    simulated programs printed from :attr:`output` — this is the terminal
    the paper's trace agent writes its log to.
    """

    name = "console"

    def __init__(self, columns=80, rows=24):
        super().__init__()
        self.input = bytearray()
        self.output = bytearray()
        self.columns = columns
        self.rows = rows
        self.eof = False

    def feed(self, data):
        """Host-side: queue *data* as terminal input."""
        if isinstance(data, str):
            data = data.encode()
        self.input.extend(data)

    def mark_eof(self):
        """Host-side: readers see end-of-file after the queue drains."""
        self.eof = True

    def take_output(self):
        """Host-side: drain and return everything written so far."""
        data = bytes(self.output)
        del self.output[:]
        return data

    def output_text(self):
        """Host-side: the written bytes decoded as text."""
        return bytes(self.output).decode(errors="replace")

    def read(self, kernel, proc, count):
        """Read queued input; blocks until input or EOF."""
        kernel.sleep_until(lambda: self.input or self.eof, proc, "ttyin")
        data = bytes(self.input[:count])
        del self.input[: len(data)]
        return data

    def write(self, kernel, proc, data):
        """Append to the captured output."""
        self.output.extend(bytes(data))
        return len(data)

    def ioctl(self, kernel, proc, request, arg):
        """TIOCGWINSZ and FIONREAD."""
        if request == TIOCGWINSZ:
            return (self.rows, self.columns)
        if request == FIONREAD:
            return len(self.input)
        raise SyscallError(ENOTTY)


class DeviceSwitch:
    """Maps ``rdev`` numbers to device instances (4.3BSD ``cdevsw``)."""

    def __init__(self):
        self._devices = {}
        self._next_rdev = 1

    def register(self, device, rdev=None):
        """Add a device; returns its rdev number."""
        if rdev is None:
            rdev = self._next_rdev
            self._next_rdev += 1
        if rdev in self._devices:
            raise ValueError("rdev %d already registered" % rdev)
        self._devices[rdev] = device
        return rdev

    def lookup(self, rdev):
        """Find a device by rdev (ENODEV if absent)."""
        try:
            return self._devices[rdev]
        except KeyError:
            raise SyscallError(ENODEV, "no device %d" % rdev) from None
