"""A write-ahead intent journal for UFS metadata operations.

The design is the classic BSD metadata-journal shape ("The Design of
the NetBSD I/O Subsystems" is the reference): every multi-step metadata
operation — link, unlink, mkdir, rmdir, rename, inode alloc/reclaim —
opens a transaction, appends *intent* records describing each step with
absolute before/after values, performs the mutation, and finally
appends a commit mark.  A crash (see :class:`repro.kernel.faultsite.
MachineCrash`) can therefore land between any two mutation steps; on
remount :meth:`Journal.replay` restores consistency by **redoing**
committed transactions (idempotently — every record carries absolute
values, so replaying an already-applied step is a no-op) and
**undoing** uncommitted ones in reverse record order.

The journal is pay-per-use in the repo's standing discipline: a
``Filesystem`` holds ``journal = None`` by default and every hook in
``ufs.py`` is one ``is None`` test, so unjournaled worlds stay
bit-for-bit the seed.

Record kinds (the ``intents`` payloads):

``("alloc", ino)``
    inode *ino* was inserted in the table.  Undo pops it; redo is a
    no-op (a committed alloc's inode is re-created by the operation's
    other records or was already present).
``("enter", dir_ino, name, ino)``
    directory entry *name* → *ino* added under *dir_ino*.
``("remove", dir_ino, name, old_ino)``
    entry *name* (which mapped to *old_ino*) removed from *dir_ino*.
``("replace", dir_ino, name, old_ino, new_ino)``
    entry *name* under *dir_ino* retargeted from *old_ino* (``None``
    when it did not exist) to *new_ino*.
``("nlink", ino, old, new)``
    *ino*'s link count moved from *old* to *new* (absolute values).
``("reclaim", ino)``
    inode *ino* left the table (nlink and open_count both zero).
    Logged redo-only: the reclaim txn commits *before* the pop, so a
    crash between the two is redone, never undone.
"""


class JournalTxn:
    """One open transaction: a begin mark plus pending intents."""

    __slots__ = ("journal", "txid", "op", "done")

    def __init__(self, journal, txid, op):
        self.journal = journal
        self.txid = txid
        self.op = op
        #: resolved (committed or aborted); a txn must end exactly once
        self.done = False

    def intent(self, kind, *args):
        """Append one intent record (absolute values, see module doc)."""
        self.journal.records.append(("intent", self.txid, (kind,) + args))


class Journal:
    """The write-ahead log one :class:`Filesystem` owns."""

    def __init__(self):
        #: the log proper: ("begin", txid, op) / ("intent", txid, intent)
        #: / ("commit", txid) / ("abort", txid), in append order
        self.records = []
        self._next_txid = 1
        #: open (unresolved) transactions by txid
        self.live = {}
        # counters surfaced through kernel_stats' "journal" section
        self.begun = 0
        self.committed = 0
        self.aborted = 0
        self.replays = 0
        self.redone = 0
        self.undone = 0

    # -- writing -----------------------------------------------------------

    def begin(self, op):
        """Open a transaction for operation *op* (e.g. ``"link"``).

        Fully-resolved records are trimmed lazily here — *before* the
        new begin mark lands — so the log stays bounded across a long
        run while still holding every record a crash after the most
        recent commit would need for redo.
        """
        if not self.live and len(self.records) > 64:
            self.records = []
        txid = self._next_txid
        self._next_txid += 1
        self.records.append(("begin", txid, op))
        txn = JournalTxn(self, txid, op)
        self.live[txid] = txn
        self.begun += 1
        return txn

    def commit(self, txn):
        """Append *txn*'s commit mark: its intents are now durable."""
        assert not txn.done, "journal txn resolved twice"
        txn.done = True
        del self.live[txn.txid]
        self.records.append(("commit", txn.txid))
        self.committed += 1

    def abort(self, txn):
        """Append an abort mark: *txn*'s intents must be undone.

        Used by the error-unwind paths (a faultsite injection inside an
        operation): the caller has already unwound its own state, so
        replay treats an aborted txn exactly like a committed one whose
        effects were reversed — nothing to do.
        """
        assert not txn.done, "journal txn resolved twice"
        txn.done = True
        del self.live[txn.txid]
        self.records.append(("abort", txn.txid))
        self.aborted += 1

    # -- recovery ----------------------------------------------------------

    def replay(self, fs):
        """Mount-time recovery over volume *fs*.

        Committed transactions are *redone* in log order (idempotent:
        absolute values make re-applying an applied step a no-op);
        transactions with neither commit nor abort mark — exactly the
        ones a crash interrupted — are *undone* in reverse record
        order.  Returns a report dict for the remount log.
        """
        self.replays += 1
        resolved = set()
        aborted = set()
        for rec in self.records:
            if rec[0] == "commit":
                resolved.add(rec[1])
            elif rec[0] == "abort":
                resolved.add(rec[1])
                aborted.add(rec[1])
        redone = undone = 0
        torn = []
        for rec in self.records:
            if rec[0] == "intent" and rec[1] in resolved \
                    and rec[1] not in aborted:
                if self._redo(fs, rec[2]):
                    redone += 1
        for rec in reversed(self.records):
            if rec[0] == "intent" and rec[1] not in resolved:
                if self._undo(fs, rec[2]):
                    undone += 1
                if rec[1] not in torn:
                    torn.append(rec[1])
            elif rec[0] == "begin" and rec[1] not in resolved:
                if rec[1] not in torn:
                    torn.append(rec[1])
        self.redone += redone
        self.undone += undone
        # Recovery resolved everything: the log restarts empty, and any
        # transaction a crash left open is gone with it.
        self.records = []
        self.live = {}
        return {"redone": redone, "undone": undone, "torn_txns": len(torn)}

    def _redo(self, fs, intent):
        """Re-apply one committed *intent* if its effect is missing."""
        kind = intent[0]
        inodes = fs._inodes
        if kind == "enter":
            _, dir_ino, name, ino = intent
            node = inodes.get(dir_ino)
            if node is not None and ino in inodes \
                    and node.entries.get(name) != ino:
                node.enter(name, ino)
                return True
        elif kind == "remove":
            _, dir_ino, name, old_ino = intent
            node = inodes.get(dir_ino)
            if node is not None and node.entries.get(name) == old_ino:
                node.remove(name)
                return True
        elif kind == "replace":
            _, dir_ino, name, _old, new_ino = intent
            node = inodes.get(dir_ino)
            if node is not None and new_ino in inodes \
                    and node.entries.get(name) != new_ino:
                node.replace(name, new_ino)
                return True
        elif kind == "nlink":
            _, ino, _old, new = intent
            node = inodes.get(ino)
            if node is not None and node.nlink != new:
                node.nlink = new
                return True
        elif kind == "reclaim":
            if intent[1] in inodes:
                inodes.pop(intent[1], None)
                return True
        # "alloc": a committed alloc needs no redo — the inode either
        # survived the crash in the table or belongs to intents above.
        return False

    def _undo(self, fs, intent):
        """Reverse one uncommitted *intent* if its effect is present."""
        kind = intent[0]
        inodes = fs._inodes
        if kind == "alloc":
            if intent[1] in inodes:
                inodes.pop(intent[1], None)
                return True
        elif kind == "enter":
            _, dir_ino, name, ino = intent
            node = inodes.get(dir_ino)
            if node is not None and node.entries.get(name) == ino:
                node.remove(name)
                return True
        elif kind == "remove":
            _, dir_ino, name, old_ino = intent
            node = inodes.get(dir_ino)
            if node is not None and old_ino in inodes \
                    and node.entries.get(name) != old_ino:
                node.enter(name, old_ino)
                return True
        elif kind == "replace":
            _, dir_ino, name, old_ino, new_ino = intent
            node = inodes.get(dir_ino)
            if node is not None and node.entries.get(name) == new_ino:
                if old_ino is not None and old_ino in inodes:
                    node.replace(name, old_ino)
                else:
                    node.remove(name)
                return True
        elif kind == "nlink":
            _, ino, old, _new = intent
            node = inodes.get(ino)
            if node is not None and node.nlink != old:
                node.nlink = old
                return True
        # "reclaim" is redo-only (committed before the pop): an
        # uncommitted reclaim record cannot exist.
        return False

    def stats(self):
        """Counters for the kernel_stats ``journal`` section."""
        return {
            "begun": self.begun,
            "committed": self.committed,
            "aborted": self.aborted,
            "live": len(self.live),
            "records": len(self.records),
            "replays": self.replays,
            "redone": self.redone,
            "undone": self.undone,
        }
