"""4.3BSD signal numbers, default actions, and per-process dispositions.

Signals are the *upward* path of the system interface: the paper's
completeness goal requires agents to be able to interpose on them just as
they interpose on system calls.  The kernel posts signals to processes;
delivery happens at trap boundaries (see :mod:`repro.kernel.trap`), where
an interposing agent's ``signal_handler`` upcall runs before any handler
the application registered.
"""

from repro.kernel.errno import EINVAL, SyscallError

SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGILL = 4
SIGTRAP = 5
SIGIOT = 6
SIGABRT = SIGIOT
SIGEMT = 7
SIGFPE = 8
SIGKILL = 9
SIGBUS = 10
SIGSEGV = 11
SIGSYS = 12
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGURG = 16
SIGSTOP = 17
SIGTSTP = 18
SIGCONT = 19
SIGCHLD = 20
SIGTTIN = 21
SIGTTOU = 22
SIGIO = 23
SIGXCPU = 24
SIGXFSZ = 25
SIGVTALRM = 26
SIGPROF = 27
SIGWINCH = 28
SIGINFO = 29
SIGUSR1 = 30
SIGUSR2 = 31

NSIG = 32

SIG_DFL = "SIG_DFL"
SIG_IGN = "SIG_IGN"

#: signals whose default action is to ignore
_DEFAULT_IGNORED = frozenset(
    {SIGURG, SIGCONT, SIGCHLD, SIGIO, SIGWINCH, SIGINFO}
)
#: signals whose default action is to stop the process
_DEFAULT_STOPS = frozenset({SIGSTOP, SIGTSTP, SIGTTIN, SIGTTOU})
#: signals that cannot be caught, blocked, or ignored
UNCATCHABLE = frozenset({SIGKILL, SIGSTOP})

_NAMES = {}
for _name, _value in list(globals().items()):
    if _name.startswith("SIG") and isinstance(_value, int) and _name not in (
        "SIGABRT",
    ):
        _NAMES[_value] = _name


def signal_name(sig):
    """Symbolic name of a signal number (``"SIG?n?"`` if out of range)."""
    return _NAMES.get(sig, "SIG?%d?" % sig)


def check_signal(sig):
    """Validate a signal number, raising ``EINVAL`` as the kernel would."""
    if not 1 <= sig < NSIG:
        raise SyscallError(EINVAL, "bad signal %r" % (sig,))


def default_action(sig):
    """Return the default disposition: ``"terminate"``, ``"stop"``, or ``"ignore"``."""
    if sig in _DEFAULT_IGNORED:
        return "ignore"
    if sig in _DEFAULT_STOPS:
        return "stop"
    return "terminate"


def sigmask(sig):
    """The 4.3BSD ``sigmask()`` macro: the mask bit for a signal."""
    return 1 << (sig - 1)


class Sigaction:
    """One signal's disposition: handler, mask held during delivery, flags."""

    __slots__ = ("handler", "mask", "flags")

    def __init__(self, handler=SIG_DFL, mask=0, flags=0):
        self.handler = handler
        self.mask = mask
        self.flags = flags

    def copy(self):
        """An independent copy (fork inherits dispositions by value)."""
        return Sigaction(self.handler, self.mask, self.flags)


def fresh_dispositions():
    """Dispositions for a newly created (or freshly exec'd) process."""
    return {sig: Sigaction() for sig in range(1, NSIG)}
