"""4.3BSD errno values and the kernel error-return convention.

Kernel system call implementations raise :class:`SyscallError` on failure;
the trap layer converts that into the ``(retval, errno)`` register pair the
numeric toolkit layer exposes, exactly as the Mach 2.5 emulation mechanism
surfaced the carry-flag/errno convention to user handlers.
"""

EPERM = 1
ENOENT = 2
ESRCH = 3
EINTR = 4
EIO = 5
ENXIO = 6
E2BIG = 7
ENOEXEC = 8
EBADF = 9
ECHILD = 10
EDEADLK = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
ENOTBLK = 15
EBUSY = 16
EEXIST = 17
EXDEV = 18
ENODEV = 19
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENFILE = 23
EMFILE = 24
ENOTTY = 25
ETXTBSY = 26
EFBIG = 27
ENOSPC = 28
ESPIPE = 29
EROFS = 30
EMLINK = 31
EPIPE = 32
EDOM = 33
ERANGE = 34
EWOULDBLOCK = 35
EAGAIN = EWOULDBLOCK
ELOOP = 62
ENAMETOOLONG = 63
ENOTEMPTY = 66
EDQUOT = 69
ENOSYS = 78

_NAMES = {}
for _name, _value in list(globals().items()):
    if _name.startswith("E") and isinstance(_value, int) and _name != "EAGAIN":
        _NAMES[_value] = _name


def errno_name(err):
    """Return the symbolic name for an errno value (``"E??"`` if unknown)."""
    return _NAMES.get(err, "E?%d?" % err)


class SyscallError(Exception):
    """A failed system call, carrying its 4.3BSD errno value."""

    def __init__(self, err, message=""):
        self.errno = err
        name = errno_name(err)
        detail = "%s: %s" % (name, message) if message else name
        super().__init__(detail)

    def __repr__(self):
        return "SyscallError(%s)" % errno_name(self.errno)
