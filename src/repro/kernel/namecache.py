"""The 4.3BSD directory name lookup cache, in-core edition.

4.3BSD kept a hash of recently used ``(directory, component)`` → inode
translations because pathname resolution dominated system call time;
``namei`` consulted it before scanning directory blocks.  This module
reproduces that cache for the simulated kernel: one :class:`NameCache`
per kernel, shared by every volume the kernel creates, consulted per
component by :func:`repro.kernel.namei.namei`.

Differences from the historical cache, chosen for this kernel's shape:

* Entries are keyed by the directory *inode object* and component name.
  Inode numbers are never reused within a volume (``Filesystem._next_ino``
  is monotonic), so object identity is stable for the life of an entry.
* The cached value is the **post-mount-crossing** child (and a flag for
  symlinks, which are never crossed): a hit skips the directory hash
  probe, the inode-table probe, the symlink type test, and the mount
  walk.  Mount topology changes are rare and purge the whole cache
  (``Kernel.mount``/``Kernel.umount``), keeping that shortcut safe.
* No negative caching: absent names miss every time, exactly as the
  seed kernel re-raises ``ENOENT`` every time.
* Permission checks are **not** cached — ``namei`` still calls
  ``check_access`` per component on hits, so EACCES behaviour is
  identical with the cache on or off.

Invalidation happens at the directory mutation points themselves
(:meth:`Directory.enter`, ``remove``, ``replace`` — which every create,
unlink, rename, rmdir, symlink and mkdir path funnels through, including
the union/txn/sandbox agents' operations, since those route through
``htg_unix_syscall`` into the same kernel), plus whole-directory purges
on rmdir and whole-cache purges on mount/umount.

Counters are plain attributes (no locking beyond the kernel's own big
lock) and are exported through ``Observability.snapshot()`` and the
``kernel_stats`` trap.
"""

from collections import OrderedDict

#: default capacity (see fastpath.DEFAULT_NAMECACHE_CAPACITY)
DEFAULT_CAPACITY = 4096


class NameCache:
    """A capacity-bounded LRU map of ``(directory, name)`` → child."""

    __slots__ = ("capacity", "_entries", "_lru_floor", "lru_live", "hits",
                 "misses", "evictions", "invalidations", "purges")

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("name cache capacity must be positive")
        self.capacity = capacity
        self._entries = OrderedDict()
        #: below this population, hits skip the LRU reshuffle: recency
        #: order only matters once eviction is plausible, and
        #: ``move_to_end`` per hit is the single biggest cost of the
        #: hot path.  Half of capacity — tiny test caches cross the
        #: floor within an entry or two (exact LRU where eviction is
        #: live), the 4096-entry production cache reshuffles only once
        #: real pressure builds.
        self._lru_floor = capacity // 2
        #: ``len(self._entries) > self._lru_floor``, maintained at every
        #: size change so the hot path (inlined in ``namei``) tests one
        #: boolean instead of calling ``len`` per hit
        self.lru_live = False
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.purges = 0

    def __len__(self):
        return len(self._entries)

    # -- the namei hot path ----------------------------------------------
    #
    # namei inlines the hit probe against ``_entries``/``lru_live``
    # directly (one dict.get per component beats any method call); the
    # methods below are the same contract for every other caller.

    def get(self, directory, name):
        """The cached ``(child, is_link)`` for *name* in *directory*.

        Returns ``None`` on a miss.  A hit refreshes the entry's LRU
        position once the cache is past the pressure floor (below it,
        eviction is distant and insertion order is a fine stand-in).
        """
        entries = self._entries
        key = (directory, name)
        entry = entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        if self.lru_live:
            entries.move_to_end(key)
        return entry

    def put(self, directory, name, child, is_link):
        """Remember *name* in *directory* → *child*, evicting LRU at capacity."""
        entries = self._entries
        key = (directory, name)
        if key not in entries and len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = (child, is_link)
        self.lru_live = len(entries) > self._lru_floor

    # -- invalidation (directory mutation points) -------------------------

    def invalidate(self, directory, name):
        """Drop the entry for *name* in *directory*, if cached."""
        if self._entries.pop((directory, name), None) is not None:
            self.invalidations += 1
            self.lru_live = len(self._entries) > self._lru_floor

    def purge_dir(self, directory):
        """Drop every entry cached under *directory* (rmdir)."""
        entries = self._entries
        stale = [key for key in entries if key[0] is directory]
        for key in stale:
            del entries[key]
        self.invalidations += len(stale)
        self.lru_live = len(entries) > self._lru_floor

    def purge_fs(self, fs):
        """Drop every entry whose directory lives on *fs*."""
        entries = self._entries
        stale = [key for key in entries if key[0].fs is fs]
        for key in stale:
            del entries[key]
        self.invalidations += len(stale)
        self.lru_live = len(entries) > self._lru_floor

    def purge(self):
        """Drop everything (mount topology changed)."""
        self._entries.clear()
        self.purges += 1
        self.lru_live = False

    # -- reporting --------------------------------------------------------

    def hit_rate(self):
        """Hits as a fraction of lookups (0.0 when never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self):
        """Counters as a plain dict (obs snapshot / kernel_stats shape)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate(), 4),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "purges": self.purges,
        }

    def __repr__(self):
        return "<NameCache %d/%d hits=%d misses=%d>" % (
            len(self._entries), self.capacity, self.hits, self.misses)
