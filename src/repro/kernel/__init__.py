"""Simulated 4.3BSD kernel: the substrate under the interposition toolkit.

The paper's toolkit runs on Mach 2.5 and interposes on the 4.3BSD system
call interface.  This package provides an equivalent substrate in pure
Python: a UFS-like filesystem, processes with fork/execve/wait, per-process
descriptor tables sharing a system open-file table, BSD signals, pipes,
devices, and — crucially — the two Mach primitives the toolkit depends on:

* ``task_set_emulation`` — redirect chosen system call numbers to a handler
  running in the client's context (see :mod:`repro.kernel.trap`), and
* ``htg_unix_syscall`` — invoke the underlying kernel implementation of a
  system call even though that number is being redirected.

Applications written against :mod:`repro.programs` issue system calls by
number through the trap layer, so unmodified "binaries" run identically
with and without agents interposed — the paper's *unmodified system* goal.
"""

from repro.kernel.errno import SyscallError
from repro.kernel.kernel import Kernel

__all__ = ["Kernel", "SyscallError"]
