"""Pipes: bounded FIFO byte channels with BSD blocking semantics.

Readers block on an empty pipe while writers remain; writers block when
the buffer is full while readers remain; writing with no readers raises
``EPIPE`` and posts ``SIGPIPE``.  Blocking uses the kernel's single sleep
queue (:meth:`repro.kernel.kernel.Kernel.sleep_until`), so a signal posted
to a sleeping process interrupts the call with ``EINTR``.
"""

from repro.kernel import signals as sig
from repro.kernel import stat as st
from repro.kernel.errno import EINVAL, EPIPE, SyscallError
from repro.kernel.ofile import FREAD, FWRITE
from repro.kernel.stat import Stat
from repro.obs import events as obs_events

#: 4.3BSD pipe buffer size
PIPE_BUF = 4096


def _note_block(kernel, proc, end):
    """Record that *proc* is about to block on a pipe *end*."""
    obs = kernel.obs
    if obs is not None:
        if obs.metrics_on:
            obs.metrics.inc(("pipe.block", end))
        if obs.wants(proc):
            obs.emit(obs_events.PIPE_BLOCK, proc, end)


def _note_wakeup(kernel, proc, end, waker_pid=0):
    """Record that *proc* woke from a pipe block on *end*.

    *waker_pid* names the process whose read/write released the sleeper
    when the pipe knows one (it is 0 for close-caused EOF wakeups, which
    span tracing then honestly reports as unattributed blocking).
    """
    obs = kernel.obs
    if obs is not None:
        if obs.metrics_on:
            obs.metrics.inc(("pipe.wakeup", end))
        if obs.wants(proc):
            if waker_pid == proc.pid:
                waker_pid = 0
            obs.emit(obs_events.PIPE_WAKEUP, proc, end, link_pid=waker_pid)


class Pipe:
    """The shared buffer between a pipe's read and write ends."""

    def __init__(self, capacity=PIPE_BUF):
        self.capacity = capacity
        self.buffer = bytearray()
        self.readers = 0
        self.writers = 0
        #: monotonic open counts, for FIFO open's edge-triggered blocking
        self.total_readers = 0
        self.total_writers = 0
        #: pids of the last processes to move bytes through the pipe,
        #: kept (under the kernel lock) so a wakeup can name its waker
        #: for causal span tracing
        self.last_writer_pid = 0
        self.last_reader_pid = 0

    def close_end(self, kernel, mode_bits):
        """An end closed: fix the counts and wake sleepers."""
        if mode_bits & FREAD:
            self.readers -= 1
        if mode_bits & FWRITE:
            self.writers -= 1
        kernel.wakeup()

    def read(self, kernel, proc, count):
        """Take up to *count* bytes; blocks while writers remain."""
        sites = kernel.faultsites
        if sites is not None:
            # At entry, before sleeping or consuming: the buffer and the
            # end counts are untouched by an injected error.
            sites.check("pipe.read", kernel=kernel, proc=proc)
        if count == 0:
            return b""
        would_block = not self.buffer and self.writers > 0
        if would_block:
            _note_block(kernel, proc, "read")
        kernel.sleep_until(
            lambda: self.buffer or self.writers == 0, proc, "piperd"
        )
        if would_block:
            # Data present means a writer released us; an empty buffer
            # means every writer closed, and the closer is unknown.
            _note_wakeup(kernel, proc, "read",
                         self.last_writer_pid if self.buffer else 0)
        if not self.buffer:
            return b""  # EOF: all writers gone
        data = bytes(self.buffer[:count])
        del self.buffer[: len(data)]
        self.last_reader_pid = proc.pid
        kernel.wakeup()
        return data

    def write(self, kernel, proc, data):
        """Append *data*, blocking when full; EPIPE + SIGPIPE with no readers."""
        if not isinstance(data, (bytes, bytearray)):
            raise SyscallError(EINVAL, "pipe write wants bytes")
        sites = kernel.faultsites
        if sites is not None:
            # At entry: nothing buffered yet, no sleeper disturbed.
            sites.check("pipe.write", kernel=kernel, proc=proc)
        total = 0
        view = memoryview(bytes(data))
        while total < len(view) or (len(view) == 0 and total == 0):
            if self.readers == 0:
                # Kernel lock already held: post directly.
                proc.post(sig.SIGPIPE)
                kernel.wakeup()
                raise SyscallError(EPIPE)
            would_block = len(self.buffer) >= self.capacity and self.readers > 0
            if would_block:
                _note_block(kernel, proc, "write")
            kernel.sleep_until(
                lambda: len(self.buffer) < self.capacity or self.readers == 0,
                proc,
                "pipewr",
            )
            if would_block:
                # Room appearing means a reader drained the pipe; a full
                # buffer means the last reader closed (EPIPE ahead).
                drained = len(self.buffer) < self.capacity
                _note_wakeup(kernel, proc, "write",
                             self.last_reader_pid if drained else 0)
            if self.readers == 0:
                continue  # re-check at loop top: raises EPIPE
            room = self.capacity - len(self.buffer)
            chunk = view[total : total + room]
            self.buffer.extend(chunk)
            total += len(chunk)
            self.last_writer_pid = proc.pid
            kernel.wakeup()
            if len(view) == 0:
                break
        return total

    def stat_record(self, kernel):
        """A FIFO-shaped ``struct stat`` for fstat on pipe ends."""
        now = kernel.clock.usec() // 1_000_000
        return Stat(
            st_mode=st.S_IFIFO | 0o600,
            st_size=len(self.buffer),
            st_atime=now,
            st_mtime=now,
            st_ctime=now,
            st_blksize=self.capacity,
        )
