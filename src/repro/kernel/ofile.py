"""System open-file table entries (4.3BSD ``struct file``).

An :class:`OpenFile` is shared by every descriptor that refers to it —
across ``dup``, ``dup2``, ``fcntl(F_DUPFD)``, and ``fork`` — so the seek
offset and status flags are shared too.  The toolkit's reference-counted
``open_object`` layer mirrors exactly this structure one level up.
"""

from repro.kernel import cred as credmod
from repro.kernel.errno import (
    EBADF,
    EINVAL,
    EISDIR,
    ENOTTY,
    ESPIPE,
    SyscallError,
)

# open(2) flag bits (4.3BSD <sys/file.h>)
O_RDONLY = 0x0000
O_WRONLY = 0x0001
O_RDWR = 0x0002
O_NONBLOCK = 0x0004
O_APPEND = 0x0008
O_CREAT = 0x0200
O_TRUNC = 0x0400
O_EXCL = 0x0800

#: internal kernel-mode bits derived from the open mode
FREAD = 1
FWRITE = 2

# lseek whence values
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

# fcntl commands
F_DUPFD = 0
F_GETFD = 1
F_SETFD = 2
F_GETFL = 3
F_SETFL = 4

FD_CLOEXEC = 1


def open_mode_bits(flags):
    """Map ``O_*`` access mode to internal ``FREAD``/``FWRITE`` bits."""
    accmode = flags & 0x3
    if accmode == O_RDONLY:
        return FREAD
    if accmode == O_WRONLY:
        return FWRITE
    if accmode == O_RDWR:
        return FREAD | FWRITE
    raise SyscallError(EINVAL, "bad open mode %#x" % flags)


def access_intent(flags):
    """Permission bits (:data:`~repro.kernel.cred.R_OK` etc.) implied by open flags."""
    bits = open_mode_bits(flags)
    want = 0
    if bits & FREAD:
        want |= credmod.R_OK
    if bits & FWRITE:
        want |= credmod.W_OK
    return want


class OpenFile:
    """Base open-file entry: mode bits, shared offset, reference count."""

    def __init__(self, mode_bits, flags):
        self.mode_bits = mode_bits
        self.flags = flags
        self.offset = 0
        self.refcount = 1

    # -- reference management ----------------------------------------------

    def incref(self):
        """Another descriptor now references this entry."""
        self.refcount += 1

    def decref(self, kernel):
        """Drop a reference; the last one calls :meth:`release`."""
        assert self.refcount > 0
        self.refcount -= 1
        if self.refcount == 0:
            self.release(kernel)

    def release(self, kernel):
        """Last reference dropped; subclasses free underlying resources."""

    # -- permission guards ---------------------------------------------------

    def require_read(self):
        """Raise EBADF unless opened for reading."""
        if not self.mode_bits & FREAD:
            raise SyscallError(EBADF, "not open for reading")

    def require_write(self):
        """Raise EBADF unless opened for writing."""
        if not self.mode_bits & FWRITE:
            raise SyscallError(EBADF, "not open for writing")

    # -- operations (subclass responsibility) --------------------------------

    def read(self, kernel, proc, count):
        """Read *count* bytes at the shared offset (subclasses)."""
        raise SyscallError(EBADF)

    def write(self, kernel, proc, data):
        """Write *data* at the shared offset (subclasses)."""
        raise SyscallError(EBADF)

    def seek(self, kernel, offset, whence):
        """Reposition the shared offset (EINVAL/ESPIPE by type)."""
        raise SyscallError(ESPIPE)

    def stat_record(self, kernel):
        """The ``struct stat`` for the open object."""
        raise SyscallError(EBADF)

    def truncate(self, kernel, length):
        """Set the object's length (regular files only)."""
        raise SyscallError(EINVAL)

    def sync(self, kernel):
        """Flush to stable storage (default: nothing to do)."""
        pass

    def ioctl(self, kernel, proc, request, arg):
        """Device control (ENOTTY unless a device)."""
        raise SyscallError(ENOTTY)

    def getdirentries(self, kernel, count):
        """Read directory entries (directories only)."""
        raise SyscallError(EINVAL, "not a directory")

    def describe(self):
        """Short human-readable tag for diagnostics."""
        return type(self).__name__


class InodeFile(OpenFile):
    """An open regular file or directory backed by an inode."""

    def __init__(self, inode, mode_bits, flags):
        super().__init__(mode_bits, flags)
        self.inode = inode
        inode.fs.incref(inode)

    def release(self, kernel):
        """Drop the inode reference (may reclaim it)."""
        from repro.kernel.syscalls.flock_itimer import release_lock

        release_lock(self.inode, self, kernel)
        self.inode.fs.decref(self.inode)

    def read(self, kernel, proc, count):
        """Read file bytes; directories refuse with EISDIR."""
        self.require_read()
        if count < 0:
            raise SyscallError(EINVAL)
        if self.inode.is_dir():
            # 4.3BSD allowed raw directory reads; we direct programs to
            # getdirentries() and refuse here to keep formats private.
            raise SyscallError(EISDIR)
        data = self.inode.read_at(self.offset, count)
        if type(data) is memoryview:
            # Zero-copy fast path: read_at handed out a view over the
            # file's buffer.  Materialise it into bytes exactly once,
            # here at the kernel/user boundary — the view must not
            # escape (a later write could resize the bytearray under a
            # live export) and user code, agents, and dfstrace must all
            # keep seeing immutable bytes.
            data = bytes(data)
        self.offset += len(data)
        self.inode.touch_atime(kernel.clock.usec())
        return data

    def write(self, kernel, proc, data):
        """Write file bytes, honouring O_APPEND."""
        self.require_write()
        if self.inode.is_dir():
            raise SyscallError(EISDIR)
        if self.flags & O_APPEND:
            self.offset = self.inode.size
        written = self.inode.write_at(self.offset, data)
        self.offset += written
        self.inode.touch_mtime(kernel.clock.usec())
        return written

    def seek(self, kernel, offset, whence):
        """SEEK_SET/CUR/END arithmetic on the shared offset."""
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self.offset + offset
        elif whence == SEEK_END:
            new = self.inode.size + offset
        else:
            raise SyscallError(EINVAL, "bad whence %r" % (whence,))
        if new < 0:
            raise SyscallError(EINVAL, "negative offset")
        self.offset = new
        return new

    def stat_record(self, kernel):
        """Delegate to the backing inode."""
        return self.inode.stat_record()

    def truncate(self, kernel, length):
        """Shrink or zero-extend the backing file."""
        self.require_write()
        if not self.inode.is_reg():
            raise SyscallError(EINVAL)
        if length < 0:
            raise SyscallError(EINVAL)
        self.inode.truncate_to(length)
        self.inode.touch_mtime(kernel.clock.usec())

    def getdirentries(self, kernel, count):
        """Return up to *count* dirents from the shared offset onward.

        The offset counts entries (not bytes) — a simplification over the
        UFS on-disk byte offsets that preserves the property agents care
        about: iteration state lives in the open file, not the inode.
        """
        if not self.inode.is_dir():
            raise SyscallError(EINVAL, "not a directory")
        if count <= 0:
            raise SyscallError(EINVAL)
        entries = self.inode.list_entries()
        start = self.offset
        batch = entries[start : start + count]
        self.offset = start + len(batch)
        self.inode.touch_atime(kernel.clock.usec())
        return batch

    def describe(self):
        """``inode:N`` tag."""
        return "inode:%d" % self.inode.ino


class PipeEnd(OpenFile):
    """One end of a pipe; delegates to the shared :class:`~repro.kernel.pipe.Pipe`."""

    def __init__(self, pipe, mode_bits):
        super().__init__(mode_bits, 0)
        self.pipe = pipe
        if mode_bits & FREAD:
            pipe.readers += 1
            pipe.total_readers += 1
        if mode_bits & FWRITE:
            pipe.writers += 1
            pipe.total_writers += 1

    def release(self, kernel):
        """Close this end; wake the peer (EOF/EPIPE)."""
        self.pipe.close_end(kernel, self.mode_bits)

    def read(self, kernel, proc, count):
        """Read from the pipe buffer (blocks while writers live)."""
        self.require_read()
        if count < 0:
            raise SyscallError(EINVAL)
        return self.pipe.read(kernel, proc, count)

    def write(self, kernel, proc, data):
        """Write into the bounded pipe buffer (may block)."""
        self.require_write()
        return self.pipe.write(kernel, proc, data)

    def stat_record(self, kernel):
        """A FIFO-flavoured ``struct stat``."""
        return self.pipe.stat_record(kernel)

    def describe(self):
        """``pipe`` tag."""
        return "pipe"


class FifoEnd(PipeEnd):
    """An open named pipe: pipe semantics plus a backing inode for fstat."""

    def __init__(self, inode, pipe, mode_bits):
        super().__init__(pipe, mode_bits)
        self.inode = inode
        inode.fs.incref(inode)

    def release(self, kernel):
        """Close the end and drop the inode reference."""
        super().release(kernel)
        self.inode.fs.decref(self.inode)

    def stat_record(self, kernel):
        """Delegate to the FIFO's inode."""
        return self.inode.stat_record()

    def describe(self):
        """``fifo:N`` tag."""
        return "fifo:%d" % self.inode.ino


class DeviceFile(OpenFile):
    """An open character device; operations go through the device switch."""

    def __init__(self, inode, device, mode_bits, flags):
        super().__init__(mode_bits, flags)
        self.inode = inode
        self.device = device
        inode.fs.incref(inode)
        device.opened()

    def release(self, kernel):
        """Notify the device and drop the inode reference."""
        self.device.closed()
        self.inode.fs.decref(self.inode)

    def read(self, kernel, proc, count):
        """Read through the device switch."""
        self.require_read()
        if count < 0:
            raise SyscallError(EINVAL)
        return self.device.read(kernel, proc, count)

    def write(self, kernel, proc, data):
        """Write through the device switch."""
        self.require_write()
        return self.device.write(kernel, proc, data)

    def seek(self, kernel, offset, whence):
        """Devices decide their own seek semantics."""
        return self.device.seek(kernel, offset, whence)

    def stat_record(self, kernel):
        """Delegate to the device node's inode."""
        return self.inode.stat_record()

    def ioctl(self, kernel, proc, request, arg):
        """Forward the request to the device."""
        return self.device.ioctl(kernel, proc, request, arg)

    def describe(self):
        """``dev:name`` tag."""
        return "dev:%s" % self.device.name
