"""Process structures: the PCB, descriptor tables, and wait status codes.

A simulated process owns a descriptor table (slots pointing into the
shared open-file table), credentials, a working/root directory, signal
state, resource accounting, and — the part this reproduction exists for —
an *emulation vector* mapping system call numbers to user-mode handlers
(see :mod:`repro.kernel.trap`).
"""

from repro.kernel import signals as sig
from repro.kernel.errno import EBADF, EINVAL, EMFILE, SyscallError

#: 4.3BSD default descriptor table size (getdtablesize)
DTABLESIZE = 64

# process states
RUNNING = "running"
SLEEPING = "sleeping"
STOPPED = "stopped"
ZOMBIE = "zombie"


class ProcessExit(Exception):
    """Unwinds a process's program when it exits or dies from a signal."""

    def __init__(self, exit_code=0, term_signal=0):
        self.exit_code = exit_code
        self.term_signal = term_signal
        super().__init__("exit(%d)" % exit_code if not term_signal
                         else "killed by %s" % sig.signal_name(term_signal))


class ExecImage(Exception):
    """Unwinds the current program so the trap loop can start a new image.

    Raised by the native ``execve`` implementation and by the
    ``jump_to_image`` primitive agents use when reimplementing exec.
    """

    def __init__(self, program_factory, argv, envp):
        self.program_factory = program_factory
        self.argv = argv
        self.envp = envp
        super().__init__("execve %r" % (argv[:1] or ["?"],))


def wait_status_exited(code):
    """Encode a normal exit as a wait status."""
    return (code & 0xFF) << 8


def wait_status_signaled(term_signal):
    """Encode death-by-signal as a wait status."""
    return term_signal & 0x7F


def WIFEXITED(status):
    """True if the status records a normal exit."""
    return (status & 0x7F) == 0


def WEXITSTATUS(status):
    """The exit code from a normal-exit status."""
    return (status >> 8) & 0xFF


def WIFSIGNALED(status):
    """True if the status records death by signal."""
    return (status & 0x7F) not in (0, 0x7F)


def WTERMSIG(status):
    """The terminating signal from a signaled status."""
    return status & 0x7F


class FDTable:
    """Per-process descriptor slots referencing shared open files.

    The close-on-exec flag is a property of the *descriptor*, not the open
    file, exactly as in 4.3BSD — agents reimplementing ``execve`` must walk
    these flags themselves.
    """

    def __init__(self, size=DTABLESIZE):
        self.size = size
        self._slots = {}
        self._cloexec = set()
        #: the owning Process, so descriptor allocation order can be
        #: recorded (see repro.obs.recorder); None for detached tables
        self.owner = None

    def descriptors(self):
        """The open descriptor numbers, sorted."""
        return sorted(self._slots)

    def lowest_free(self, minfd=0):
        """The lowest free slot at or above *minfd* (EMFILE when full)."""
        if minfd < 0:
            raise SyscallError(EINVAL)
        fd = minfd
        while fd in self._slots:
            fd += 1
        if fd >= self.size:
            raise SyscallError(EMFILE)
        return fd

    def get(self, fd):
        """The open file at *fd* (EBADF when closed)."""
        try:
            return self._slots[fd]
        except (KeyError, TypeError):
            raise SyscallError(EBADF, "fd %r" % (fd,)) from None

    def install(self, fd, ofile, cloexec=False):
        """Bind *fd* (which must be free) to *ofile*."""
        assert fd not in self._slots, "descriptor %d already in use" % fd
        self._slots[fd] = ofile
        if cloexec:
            self._cloexec.add(fd)

    def allocate(self, ofile, minfd=0):
        """Install *ofile* at the lowest free slot; returns it."""
        fd = self.lowest_free(minfd)
        self.install(fd, ofile)
        owner = self.owner
        if owner is not None and owner.kernel.recorder is not None:
            owner.kernel.recorder.note("D", owner.pid, str(fd))
        return fd

    def remove(self, fd):
        """Unbind and return the open file at *fd*."""
        ofile = self.get(fd)
        del self._slots[fd]
        self._cloexec.discard(fd)
        return ofile

    def get_cloexec(self, fd):
        """The close-on-exec flag for *fd*."""
        self.get(fd)
        return fd in self._cloexec

    def set_cloexec(self, fd, on):
        """Set or clear *fd*'s close-on-exec flag."""
        self.get(fd)
        if on:
            self._cloexec.add(fd)
        else:
            self._cloexec.discard(fd)

    def fork_copy(self):
        """Duplicate for fork: same open files, bumped reference counts."""
        child = FDTable(self.size)
        for fd, ofile in self._slots.items():
            ofile.incref()
            child._slots[fd] = ofile
        child._cloexec = set(self._cloexec)
        return child


class Rusage:
    """Resource accounting (a 4.3BSD ``struct rusage`` subset)."""

    __slots__ = ("ru_utime_usec", "ru_stime_usec", "ru_nsyscalls",
                 "ru_inblock", "ru_oublock")

    def __init__(self):
        self.ru_utime_usec = 0
        self.ru_stime_usec = 0
        self.ru_nsyscalls = 0
        self.ru_inblock = 0
        self.ru_oublock = 0

    def add(self, other):
        """Accumulate *other*'s counters into this record."""
        self.ru_utime_usec += other.ru_utime_usec
        self.ru_stime_usec += other.ru_stime_usec
        self.ru_nsyscalls += other.ru_nsyscalls
        self.ru_inblock += other.ru_inblock
        self.ru_oublock += other.ru_oublock

    def snapshot(self):
        """An independent copy of the counters."""
        copy = Rusage()
        copy.add(self)
        return copy


class Process:
    """One simulated process."""

    def __init__(self, kernel, pid, ppid, cred, cwd, root_dir, umask=0o022):
        self.kernel = kernel
        self.pid = pid
        self.ppid = ppid
        self.pgrp = pid
        self.cred = cred
        self.cwd = cwd
        self.root_dir = root_dir
        self.umask = umask
        self.fdtable = FDTable()
        self.fdtable.owner = self
        self.state = RUNNING
        #: true while suspended by a stop signal (cleared by SIGCONT)
        self.suspended = False

        # signal state
        self.dispositions = sig.fresh_dispositions()
        self.sigmask = 0
        self.pending = 0
        #: agent upcall for incoming signals (set via task_set_signal_redirect)
        self.signal_redirect = None

        # emulation (interposition) state
        self.emulation_vector = {}
        #: precomputed syscall dispatch for traps with no interposition
        #: to consult (see repro.kernel.trap.build_fast_dispatch);
        #: ``None`` means "rebuild lazily on the next trap" — every
        #: emulation-vector change resets it to None
        self.fast_dispatch = None
        #: compiled per-number agent-stack chains for interposed traps
        #: (see repro.kernel.compile.build_compiled_dispatch); same
        #: lifecycle as fast_dispatch — ``None`` rebuilds lazily, every
        #: emulation-vector change resets it
        self.compiled_dispatch = None

        #: ktrace participation (see repro.kernel.ktrace): inherited
        #: across fork, cleared by native execve, kept by jump_to_image
        self.ktrace_on = False

        # exec/program state
        self.program = None
        self.argv = []
        self.envp = {}
        self.comm = ""

        # exit bookkeeping
        self.exit_status = None
        self.children = []
        self.rusage = Rusage()
        self.child_rusage = Rusage()

        # real-time interval timer (virtual usec deadline, 0 = unarmed;
        # interval reloads the timer after each expiry)
        self.alarm_deadline = 0
        self.alarm_interval = 0

        self.thread = None
        #: address-space break, tracked for brk/sbrk completeness
        self.brk = 0x10000

    # -- signal helpers -----------------------------------------------------

    def post(self, signum):
        """Mark *signum* pending (kernel side of kill())."""
        if signum == sig.SIGCONT:
            # SIGCONT discards pending stop signals and resumes.
            for stopper in (sig.SIGSTOP, sig.SIGTSTP, sig.SIGTTIN, sig.SIGTTOU):
                self.pending &= ~sig.sigmask(stopper)
            self.suspended = False
        if signum in (sig.SIGSTOP, sig.SIGTSTP, sig.SIGTTIN, sig.SIGTTOU):
            self.pending &= ~sig.sigmask(sig.SIGCONT)
        self.pending |= sig.sigmask(signum)

    def deliverable_mask(self):
        """Pending, unblocked signals that would have an effect."""
        mask = self.pending & ~self.sigmask
        # SIGKILL and SIGSTOP cannot be blocked.
        mask |= self.pending & (sig.sigmask(sig.SIGKILL) | sig.sigmask(sig.SIGSTOP))
        effective = 0
        for signum in range(1, sig.NSIG):
            bit = sig.sigmask(signum)
            if not mask & bit:
                continue
            action = self.dispositions[signum].handler
            if action == sig.SIG_IGN and signum not in sig.UNCATCHABLE:
                continue
            if (action == sig.SIG_DFL
                    and sig.default_action(signum) == "ignore"):
                continue
            effective |= bit
        return effective

    def has_deliverable_signal(self):
        """True if any signal would act at the next boundary."""
        return bool(self.deliverable_mask())

    def take_signal(self):
        """Pop the lowest-numbered deliverable signal, or ``None``."""
        mask = self.deliverable_mask()
        if not mask:
            return None
        for signum in range(1, sig.NSIG):
            if mask & sig.sigmask(signum):
                self.pending &= ~sig.sigmask(signum)
                return signum
        return None

    # -- identity -----------------------------------------------------------

    def __repr__(self):
        return "<Process pid=%d %s %s>" % (self.pid, self.comm or "?", self.state)
