"""The kernel's virtual clock.

``gettimeofday`` and inode timestamps read virtual time, which advances by
a fixed tick on every trap plus whatever ``settimeofday``/``advance`` add.
Keeping simulated time separate from wall-clock time makes workloads
deterministic and lets the ``timex`` agent's time shifting be tested
exactly, while the benchmark harness measures real elapsed time of the
simulation for the performance tables.
"""

USEC_PER_SEC = 1_000_000

#: virtual microseconds charged per system call trap
TRAP_TICK_USEC = 100


class Timeval:
    """``struct timeval``: seconds and microseconds since the epoch."""

    __slots__ = ("tv_sec", "tv_usec")

    def __init__(self, tv_sec=0, tv_usec=0):
        self.tv_sec = tv_sec
        self.tv_usec = tv_usec

    @classmethod
    def from_usec(cls, usec):
        """Build a Timeval from microseconds since the epoch."""
        return cls(usec // USEC_PER_SEC, usec % USEC_PER_SEC)

    def to_usec(self):
        """This time as microseconds since the epoch."""
        return self.tv_sec * USEC_PER_SEC + self.tv_usec

    def __eq__(self, other):
        if not isinstance(other, Timeval):
            return NotImplemented
        return (self.tv_sec, self.tv_usec) == (other.tv_sec, other.tv_usec)

    def __repr__(self):
        return "Timeval(%d, %d)" % (self.tv_sec, self.tv_usec)


class Clock:
    """Virtual time source, monotonic unless ``settimeofday`` steps it."""

    def __init__(self, epoch_usec=715_000_000 * USEC_PER_SEC):
        # Default epoch lands in mid-1992, when the paper's measurements
        # were taken; entirely cosmetic but pleasant in trace output.
        self._usec = epoch_usec

    def usec(self):
        """Current virtual time in microseconds."""
        return self._usec

    def now(self):
        """Current virtual time as a :class:`Timeval`."""
        return Timeval.from_usec(self._usec)

    def tick(self, usec=TRAP_TICK_USEC):
        """Advance the clock; called once per trap by the kernel."""
        self._usec += usec

    def advance(self, usec):
        """Explicitly advance virtual time (e.g. sleep, CPU burn)."""
        if usec < 0:
            raise ValueError("clock cannot run backwards via advance()")
        self._usec += usec

    def set(self, tv):
        """Step the clock to an absolute :class:`Timeval` (``settimeofday``)."""
        self._usec = tv.to_usec()
