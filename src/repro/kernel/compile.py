"""Compiled agent-stack dispatch: flat per-syscall chains.

The paper prices interposition at ~37 µs per redirected trap; our
tower pays that price in Python attribute lookups — every interposed
trap walks boilerplate → numeric → symbolic → desc/path routing →
downcall, re-deciding the same route on every call.  This module does
the deciding once.  :func:`build_compiled_dispatch` walks a process's
emulation vector and, per syscall number, collapses every layer that
:mod:`repro.toolkit.compile_support` can prove transparent into one
flat closure: default-fill the arguments, run the terminal (the kernel
implementation under a single lock acquisition, or the first opaque
handler below), then apply the numeric layer's errno/two-register
normalization once.

Three kinds of product:

* **trap-entry closures** — stored in ``proc.compiled_dispatch`` as
  ``(fn, fn_many)`` rows; :meth:`~repro.kernel.trap.UserContext.trap`
  runs ``fn`` instead of the tower when no observer stands in the way.
  ``fn_many`` (kernel-terminated chains only) runs a homogeneous batch
  under one lock acquisition for
  :meth:`~repro.kernel.trap.UserContext.trap_many`.
* **downcall closures** — stored per agent in ``agent._down_compiled``;
  :meth:`~repro.toolkit.boilerplate.Agent.syscall_down_numeric`
  consults them so that even an *opaque* agent's forwards (the trace
  agent's log writes, say) skip the flattened sub-tower below it.

**Invalidation.**  ``proc.compiled_dispatch`` is reset to ``None`` —
rebuild lazily — exactly like PR 2's ``fast_dispatch``: on
``task_set_emulation``, on native ``execve``, and on guard-rail agent
ejection; fork children start with a fresh ``None``.  Downcall chains
additionally bake which handler sits below each agent, and ``_down``
maps are shared by every process the agent serves, so every ``_down``
mutation bumps a global :data:`DOWN_EPOCH`; closures carry the epoch
they were built under and stand down (run the original tower) on any
mismatch, which makes cross-process staleness impossible rather than
merely unlikely.  Stale closures also *self-heal*: a trap-entry closure
drops the whole ``proc.compiled_dispatch`` table (the next trap
rebuilds it against the new chain shape) and a downcall closure evicts
its own cache entry — without this, one late agent attach anywhere
would permanently degrade every already-built table to tower speed.

**Stand-down.**  Compiled chains run only when they are observably
identical to the tower: the trap entry requires no recorder, no obs,
no guard (all checked upstream in ``trap``), no dfstrace and no ktrace
flag; downcall closures re-check recorder/obs/dfstrace at call time
(ktrace matters only via obs on this path).  With the ``compiled``
fast-path flag off, :data:`_COMPILED_DISABLED` — an always-empty
table — makes the whole feature one dict lookup that misses.
"""

from repro.kernel.errno import EINVAL, SyscallError
from repro.kernel.sysent import SYSCALLS, TWO_REGISTER_CALLS

#: shared sentinel installed as ``proc.compiled_dispatch`` when the
#: compiled fast path is configured off: every lookup misses, so the
#: disabled cost is one ``dict.get`` per interposed trap
_COMPILED_DISABLED = {}

#: bumped on every agent ``_down`` mutation; compiled closures carry
#: the epoch they were built under and fall back to the tower on any
#: mismatch (see module docstring: the map is shared across processes)
DOWN_EPOCH = [0]


def note_down_mutation():
    """An agent's ``_down`` chain changed: retire every baked chain."""
    DOWN_EPOCH[0] += 1


def _kernel_terminal(number, baked_interposed):
    """A flat closure with the tower's htg + do_syscall semantics.

    Replays, in order: the downcall's kernel-crossing charge
    (``ru_nsyscalls``), the interposed-number accounting tax, the
    sysent arity check, the clock tick / system-time charge / alarm
    check, then the implementation — under **one** lock acquisition
    where the tower takes two (htg body, then ``do_syscall``), which is
    unobservable because nothing on this path runs between them.
    Trap-entry chains bake the membership test ``True`` (the table is
    invalidated whenever the vector changes); downcall chains re-check
    it, because one agent serves every process forked under it.
    Returns ``None`` when the kernel does not implement *number*.
    """
    from repro.kernel.syscalls import DISPATCH

    impl = DISPATCH.get(number)
    entry = SYSCALLS.get(number)
    if impl is None or entry is None:
        return None
    nargs = entry.nargs
    name = entry.name
    if baked_interposed:
        def terminal(ctx, args):
            kernel = ctx.kernel
            proc = ctx.proc
            rusage = proc.rusage
            rusage.ru_nsyscalls += 1
            with kernel._sleepq:
                rusage.ru_stime_usec += 1
                if len(args) > nargs:
                    raise SyscallError(
                        EINVAL, "%s takes %d args" % (name, nargs))
                kernel.clock.tick()
                rusage.ru_stime_usec += 100
                kernel._check_alarm_locked(proc)
                return impl(kernel, proc, *args)
    else:
        def terminal(ctx, args):
            kernel = ctx.kernel
            proc = ctx.proc
            rusage = proc.rusage
            rusage.ru_nsyscalls += 1
            with kernel._sleepq:
                if number in proc.emulation_vector:
                    rusage.ru_stime_usec += 1
                if len(args) > nargs:
                    raise SyscallError(
                        EINVAL, "%s takes %d args" % (name, nargs))
                kernel.clock.tick()
                rusage.ru_stime_usec += 100
                kernel._check_alarm_locked(proc)
                return impl(kernel, proc, *args)
    return terminal


def _below_terminal(below, number):
    """Terminate a collapsed prefix at the first opaque handler."""
    def terminal(ctx, args):
        return below(ctx, number, tuple(args))
    return terminal


def _method_terminal(agent, method):
    """Invoke an overridden ``sys_*`` body directly.

    Used for layers :func:`~repro.toolkit.compile_support.peel_entry_method`
    graded: the body is real agent code and runs verbatim — its
    downcalls go through the agent's normal machinery — but the tower
    walk *above* it (boilerplate entry, symbolic handle, the numeric
    layer's register/EmulRegs allocations) is skipped.  The context
    bind replays the boilerplate entry's; the surrounding chain replays
    the default-fill and the errno/two-register marshalling.
    """
    def terminal(ctx, args):
        agent._bind(ctx)
        return method(*args)
    return terminal


def _opaque_chain(support, handler, number):
    """Collapse an opaque layer's entry tower into a direct method call.

    Returns a chain callable, or ``None`` when the layer's machinery is
    not provably stock.  Serves both as a compiled entry for an opaque
    *top* layer and as the terminal of a collapsed transparent prefix,
    so even chains that end in real agent code shed the per-call layer
    walk.  An argument count the fill cannot replay bails to the
    original handler, keeping the tower's ``TypeError`` byte-identical.
    """
    plan = support.peel_entry_method(handler, number)
    if plan is None:
        return None
    agent, method, fill = plan
    return _make_chain(number, [fill], True,
                       _method_terminal(agent, method),
                       _tower_fallback(handler, number))


def _down_fallback(below, number):
    """The original downcall route, for stand-down and arity bailout."""
    if below is None:
        def fallback(ctx, args):
            return ctx.htg(number, *args)
    else:
        def fallback(ctx, args):
            return below(ctx, number, tuple(args))
    return fallback


def _tower_fallback(handler, number):
    """The original trap-entry handler, for arity bailout."""
    def fallback(ctx, args):
        return handler(ctx, number, args)
    return fallback


def _make_chain(number, fills, normalize, terminal, fallback):
    """Compose fills → terminal → normalization into one closure.

    *fills* replay each collapsed symbolic layer's default-filling; an
    argument count outside a layer's ``[required, nparams]`` band is
    exactly the case where the tower's ``method(*args)`` crashes with
    ``TypeError``, so the chain bails to *fallback* — the original
    route — and the crash (or an opaque handler's own treatment) stays
    byte-identical.  *normalize* replays the numeric layer once: a
    ``SyscallError`` is re-raised errno-only (the message is consumed
    by the layer, and re-raising outside the except block drops the
    implicit context, as the tower's deferred raise does), and
    two-register calls are marshalled through the register pair.
    """
    two_register = normalize and number in TWO_REGISTER_CALLS
    if not fills and not normalize:
        return terminal
    fills = tuple(fills)

    def chain(ctx, args):
        for required, nparams, defaults in fills:
            count = len(args)
            if count < required or count > nparams:
                return fallback(ctx, args)
            if count < nparams:
                args = args + defaults[count - required:]
        if not normalize:
            return terminal(ctx, args)
        error = 0
        value = 0
        try:
            value = terminal(ctx, args)
        except SyscallError as exc:
            error = exc.errno
        if error:
            raise SyscallError(error)
        if two_register:
            if isinstance(value, tuple):
                first, second = value
                return (first, second)
            return (value, 0)
        return value

    return chain


def _make_entry(chain, handler, number):
    """The trap-entry closure: epoch guard, counter, then the chain."""
    epoch = DOWN_EPOCH[0]

    def entry(ctx, args):
        if DOWN_EPOCH[0] != epoch:
            # Self-heal: drop the whole table so the next trap rebuilds
            # it against the new chain shape, instead of paying the
            # tower forever because an unrelated attach bumped the epoch.
            ctx.proc.compiled_dispatch = None
            return handler(ctx, number, args)
        ctx.kernel.trap_compiled_total += 1
        return chain(ctx, args)

    return entry


def _make_down(chain, fallback, cache, number):
    """A downcall closure: stands down under any live observer."""
    epoch = DOWN_EPOCH[0]

    def down(ctx, args):
        kernel = ctx.kernel
        if (DOWN_EPOCH[0] == epoch and kernel.recorder is None
                and kernel.obs is None and kernel.dfstrace is None
                and kernel.profiler is None):
            kernel.down_compiled_total += 1
            return chain(ctx, tuple(args))
        if DOWN_EPOCH[0] != epoch:
            # Self-heal: evict this stale entry and retire the calling
            # process's table, so its next trap rebuilds everything —
            # including this cache — against the new chain shape.  (An
            # opaque-topped vector has no entry closures to notice the
            # stale epoch, so the down path must trigger the rebuild.)
            cache.pop(number, None)
            ctx.proc.compiled_dispatch = None
        return fallback(ctx, args)

    return down


def _make_entry_many(number, fills, normalize, deliver_pending_signals):
    """The single-lock batch variant of a kernel-terminated entry.

    Runs a list of argument vectors through the flat chain while
    holding the kernel lock once, replaying the per-call accounting
    (trap and crossing counters, tick, system time, alarm check) each
    iteration.  The lock is dropped — and re-taken — whenever a signal
    becomes pending, so boundary delivery interleaves exactly as a
    sequential trap loop would.  Returns ``NotImplemented`` when the
    batch cannot be proven equivalent up front (stale epoch, an arity
    that the tower would crash or message differently), and the caller
    falls back to issuing the traps one by one.
    """
    from repro.kernel.syscalls import DISPATCH

    impl = DISPATCH.get(number)
    entry = SYSCALLS.get(number)
    if impl is None or entry is None:
        return None
    nargs = entry.nargs
    name = entry.name
    two_register = normalize and number in TWO_REGISTER_CALLS
    fills = tuple(fills)
    epoch = DOWN_EPOCH[0]

    def entry_many(ctx, calls):
        if DOWN_EPOCH[0] != epoch:
            ctx.proc.compiled_dispatch = None  # self-heal, as in entry
            return NotImplemented
        filled = []
        for args in calls:
            args = tuple(args)
            for required, nparams, defaults in fills:
                count = len(args)
                if count < required or count > nparams:
                    return NotImplemented
                if count < nparams:
                    args = args + defaults[count - required:]
            filled.append(args)
        kernel = ctx.kernel
        proc = ctx.proc
        rusage = proc.rusage
        results = []
        index = 0
        total = len(filled)
        while index < total:
            caught = None
            with kernel._sleepq:
                while index < total:
                    args = filled[index]
                    kernel.trap_total += 1
                    kernel.trap_compiled_total += 1
                    rusage.ru_nsyscalls += 2
                    rusage.ru_stime_usec += 1
                    try:
                        if len(args) > nargs:
                            raise SyscallError(
                                EINVAL,
                                "%s takes %d args" % (name, nargs))
                        kernel.clock.tick()
                        rusage.ru_stime_usec += 100
                        kernel._check_alarm_locked(proc)
                        value = impl(kernel, proc, *args)
                    except SyscallError as exc:
                        caught = exc
                        break
                    if two_register:
                        if isinstance(value, tuple):
                            first, second = value
                            value = (first, second)
                        else:
                            value = (value, 0)
                    results.append(value)
                    index += 1
                    if proc.pending:
                        break
            if caught is not None:
                deliver_pending_signals(ctx)
                if normalize:
                    raise SyscallError(caught.errno)
                raise caught
            if proc.pending:
                deliver_pending_signals(ctx)
        return results

    return entry_many


def build_compiled_dispatch(kernel, proc):
    """Compile *proc*'s emulation vector into flat per-number chains.

    Returns the table for ``proc.compiled_dispatch``: syscall number →
    ``(fn, fn_many)``.  Numbers whose chain offers no win (opaque at
    the top, or no kernel implementation) simply have no row — the
    trap's ``get`` misses and the tower runs.  As a side effect, every
    toolkit agent found on a chain gets its ``_down_compiled`` map
    populated for this number, flattening the sub-tower below it even
    when the agent itself is opaque.
    """
    if not kernel.fastpaths.compiled:
        return _COMPILED_DISABLED
    # Imported here: the toolkit imports repro.kernel.trap, which
    # imports this module — a top-level import would cycle.  The trap
    # module is likewise fully initialised by the time a trap runs.
    from repro.kernel.trap import deliver_pending_signals
    from repro.toolkit import compile_support as support

    entry_func = support.Agent._emulation_entry
    table = {}
    for number, handler in list(proc.emulation_vector.items()):
        # Walk the chain of toolkit boilerplate entries below the top.
        handlers = []
        agents = []
        tail = None
        cursor = handler
        while cursor is not None:
            if getattr(cursor, "__func__", None) is not entry_func:
                tail = cursor
                break
            agent = cursor.__self__
            if any(existing is agent for existing in agents):
                tail = cursor  # cyclic chain: treat the rest as opaque
                break
            handlers.append(cursor)
            agents.append(agent)
            cursor = agent._down.get(number)
        if not agents:
            continue
        plans = [support.peel(each, number) for each in handlers]

        # Trap-entry chain: collapse the transparent prefix.
        prefix = 0
        while prefix < len(plans) and plans[prefix] is not None:
            prefix += 1
        if prefix:
            fills = [plan.fill for plan in plans[:prefix]
                     if plan.fill is not None]
            normalize = any(plan.normalize for plan in plans[:prefix])
            many = None
            if prefix < len(handlers):
                terminal = (_opaque_chain(support, handlers[prefix], number)
                            or _below_terminal(handlers[prefix], number))
            elif tail is not None:
                terminal = _below_terminal(tail, number)
            else:
                terminal = _kernel_terminal(number, baked_interposed=True)
                if terminal is not None:
                    many = _make_entry_many(number, fills, normalize,
                                            deliver_pending_signals)
            if terminal is not None:
                chain = _make_chain(number, fills, normalize, terminal,
                                    _tower_fallback(handler, number))
                table[number] = (_make_entry(chain, handler, number), many)
        else:
            # Opaque at the very top — but an overridden sys_* method
            # with stock machinery around it can still be entered
            # directly, shedding the boilerplate/numeric walk that
            # precedes the agent's own code.
            chain = _opaque_chain(support, handler, number)
            if chain is not None:
                table[number] = (_make_entry(chain, handler, number), None)

        # Downcall chains: flatten the sub-tower below *every* agent on
        # the walk — an opaque agent's forwards are often the hot path
        # (the trace agent makes three per traced call).
        for position, agent in enumerate(agents):
            sub_plans = plans[position + 1:]
            sub_handlers = handlers[position + 1:]
            depth = 0
            while depth < len(sub_plans) and sub_plans[depth] is not None:
                depth += 1
            if depth < len(sub_handlers):
                terminal = _opaque_chain(support, sub_handlers[depth], number)
                if terminal is None:
                    if depth == 0:
                        continue  # immediately opaque below: nothing to skip
                    terminal = _below_terminal(sub_handlers[depth], number)
            elif tail is not None:
                if depth == 0:
                    continue
                terminal = _below_terminal(tail, number)
            else:
                # Kernel-terminated: worth baking even with no layers
                # to peel — the flat body replaces the htg round trip
                # (name lookup, dispatch lookup, two lock acquisitions).
                terminal = _kernel_terminal(number, baked_interposed=False)
                if terminal is None:
                    continue
            fills = [plan.fill for plan in sub_plans[:depth]
                     if plan.fill is not None]
            normalize = any(plan.normalize for plan in sub_plans[:depth])
            fallback = _down_fallback(agent._down.get(number), number)
            chain = _make_chain(number, fills, normalize, terminal, fallback)
            cache = agent._down_compiled
            if cache is None:
                cache = agent._down_compiled = {}
            cache[number] = _make_down(chain, fallback, cache, number)
    return table
