"""In-core inodes for the simulated UFS filesystem.

Each inode is one filesystem object: regular file, directory, symbolic
link, device node, or FIFO.  Directories map component names to inode
numbers within the same filesystem, as on disk; the higher-level name
space (including mount crossings) is assembled by :mod:`repro.kernel.namei`.
"""

from repro.kernel import stat as st
from repro.kernel.errno import EEXIST, ENOENT, ENOTEMPTY, SyscallError

#: maximum length of one pathname component (4.3BSD MAXNAMLEN)
MAXNAMLEN = 255


class Dirent:
    """One directory entry, as returned by ``getdirentries``."""

    __slots__ = ("d_ino", "d_name")

    def __init__(self, d_ino, d_name):
        self.d_ino = d_ino
        self.d_name = d_name

    def __eq__(self, other):
        if not isinstance(other, Dirent):
            return NotImplemented
        return (self.d_ino, self.d_name) == (other.d_ino, other.d_name)

    def __repr__(self):
        return "Dirent(%d, %r)" % (self.d_ino, self.d_name)


class Inode:
    """Base in-core inode.  Subclasses define the file type bits."""

    IFMT = 0

    #: filesystem mounted on this inode; only directories ever set it,
    #: but keeping the default on the base class lets namei's
    #: mount-crossing loop test one attribute instead of isinstance
    #: per pathname component.
    mounted = None

    def __init__(self, fs, ino, mode, uid, gid, now_usec):
        self.fs = fs
        self.ino = ino
        self.mode = (mode & ~st.S_IFMT) | self.IFMT
        self.uid = uid
        self.gid = gid
        self.nlink = 0
        self.rdev = 0
        self.atime = now_usec
        self.mtime = now_usec
        self.ctime = now_usec
        #: open-file references keeping the inode alive after unlink
        self.open_count = 0

    @property
    def size(self):
        return 0

    def is_dir(self):
        """True for directories."""
        return st.S_ISDIR(self.mode)

    def is_reg(self):
        """True for regular files."""
        return st.S_ISREG(self.mode)

    def is_symlink(self):
        """True for symbolic links."""
        return st.S_ISLNK(self.mode)

    def touch_atime(self, now_usec):
        """Record an access at *now_usec*."""
        self.atime = now_usec

    def touch_mtime(self, now_usec):
        """Record a modification (and status change)."""
        self.mtime = now_usec
        self.ctime = now_usec

    def touch_ctime(self, now_usec):
        """Record a status change."""
        self.ctime = now_usec

    def describe_meta(self):
        """A comparable metadata tuple for freeze-time snapshots.

        Two volumes (or one volume before a crash and after recovery)
        agree exactly when their ``snapshot_meta`` maps of these agree.
        Timestamps are deliberately excluded: recovery restores
        *structure*, not mtimes.
        """
        return {
            "type": type(self).__name__,
            "mode": self.mode,
            "uid": self.uid,
            "gid": self.gid,
            "nlink": self.nlink,
            "rdev": self.rdev,
            "size": self.size,
        }

    def stat_record(self):
        """Build the ``struct stat`` for this inode."""
        size = self.size
        return st.Stat(
            st_dev=self.fs.dev,
            st_ino=self.ino,
            st_mode=self.mode,
            st_nlink=self.nlink,
            st_uid=self.uid,
            st_gid=self.gid,
            st_rdev=self.rdev,
            st_size=size,
            st_atime=self.atime // 1_000_000,
            st_mtime=self.mtime // 1_000_000,
            st_ctime=self.ctime // 1_000_000,
            st_blksize=self.fs.block_size,
            st_blocks=-(-size // 512),
        )

    def __repr__(self):
        return "<%s ino=%d nlink=%d>" % (type(self).__name__, self.ino, self.nlink)


class RegularFile(Inode):
    """A regular file: a growable byte array."""

    IFMT = st.S_IFREG

    def __init__(self, fs, ino, mode, uid, gid, now_usec):
        super().__init__(fs, ino, mode, uid, gid, now_usec)
        self.data = bytearray()

    def is_dir(self):
        """Regular files are not directories (constant per class)."""
        return False

    def is_reg(self):
        """True: this is a regular file."""
        return True

    def is_symlink(self):
        """Regular files are not symlinks."""
        return False

    @property
    def size(self):
        return len(self.data)

    def read_at(self, offset, count):
        """Bytes at [*offset*, *offset*+*count*), short at EOF.

        With the volume's ``zero_copy`` fast path on, the return value
        is a :class:`memoryview` over the file's buffer — zero copies
        here; the open-file layer (``InodeFile.read``) materialises it
        into ``bytes`` exactly once at the kernel/user boundary, before
        anything can resize the underlying ``bytearray``.  Off, this is
        the seed's slice-then-bytes double copy.
        """
        if offset >= len(self.data):
            return b""
        if getattr(self.fs, "zero_copy", False):
            return memoryview(self.data)[offset : offset + count]
        return bytes(self.data[offset : offset + count])

    def write_at(self, offset, data):
        """Write *data* at *offset*, zero-filling any hole, return count."""
        if offset > len(self.data):
            self.data.extend(b"\0" * (offset - len(self.data)))
        end = offset + len(data)
        self.data[offset:end] = data
        return len(data)

    def truncate_to(self, length):
        """Shrink, or zero-extend, to *length* bytes."""
        if length < len(self.data):
            del self.data[length:]
        else:
            self.data.extend(b"\0" * (length - len(self.data)))


class Directory(Inode):
    """A directory: ordered mapping from component name to inode number.

    ``"."`` and ``".."`` are stored explicitly, as in UFS, so directory
    iteration (and the union agent's merged iteration above it) sees them.
    """

    IFMT = st.S_IFDIR

    def __init__(self, fs, ino, mode, uid, gid, now_usec):
        super().__init__(fs, ino, mode, uid, gid, now_usec)
        self.entries = {}
        #: filesystem mounted on this directory, if any
        self.mounted = None

    def is_dir(self):
        """True: this is a directory (constant per class)."""
        return True

    def is_reg(self):
        """Directories are not regular files."""
        return False

    def is_symlink(self):
        """Directories are not symlinks."""
        return False

    @property
    def size(self):
        # Rough UFS-flavoured accounting: a fixed cost per entry.
        return 16 * max(2, len(self.entries))

    def describe_meta(self):
        """Directory metadata plus its entry map (see :class:`Inode`)."""
        meta = super().describe_meta()
        meta["entries"] = dict(self.entries)
        return meta

    def lookup(self, name):
        """The inode number entered under *name* (ENOENT)."""
        try:
            return self.entries[name]
        except KeyError:
            raise SyscallError(ENOENT, name) from None

    def contains(self, name):
        """True if *name* is entered here."""
        return name in self.entries

    def enter(self, name, ino):
        """Add *name* -> *ino* (EEXIST if taken).

        Every directory mutation (here, :meth:`remove`, :meth:`replace`)
        invalidates the kernel's name cache entry for the touched name —
        this is the single funnel that keeps the cache coherent for all
        callers, agents included (they mutate through these same kernel
        paths via ``htg_unix_syscall``).
        """
        if name in self.entries:
            raise SyscallError(EEXIST, name)
        self.entries[name] = ino
        cache = getattr(self.fs, "namecache", None)
        if cache is not None:
            cache.invalidate(self, name)

    def remove(self, name):
        """Delete the entry *name* (ENOENT)."""
        try:
            del self.entries[name]
        except KeyError:
            raise SyscallError(ENOENT, name) from None
        cache = getattr(self.fs, "namecache", None)
        if cache is not None:
            cache.invalidate(self, name)

    def replace(self, name, ino):
        """Point an existing (or new) entry at *ino* (used by rename)."""
        self.entries[name] = ino
        cache = getattr(self.fs, "namecache", None)
        if cache is not None:
            cache.invalidate(self, name)

    def is_empty(self):
        """True when only . and .. remain."""
        return not (set(self.entries) - {".", ".."})

    def check_empty(self):
        """Raise ENOTEMPTY unless empty."""
        if not self.is_empty():
            raise SyscallError(ENOTEMPTY)

    def list_entries(self):
        """Dirents in on-disk order: ``.``, ``..``, then insertion order."""
        ordered = []
        for special in (".", ".."):
            if special in self.entries:
                ordered.append(Dirent(self.entries[special], special))
        for name, ino in self.entries.items():
            if name not in (".", ".."):
                ordered.append(Dirent(ino, name))
        return ordered


class Symlink(Inode):
    """A symbolic link holding its target path."""

    IFMT = st.S_IFLNK

    def __init__(self, fs, ino, mode, uid, gid, now_usec, target=""):
        super().__init__(fs, ino, mode | 0o777, uid, gid, now_usec)
        self.target = target

    def is_dir(self):
        """Symlinks are not directories (constant per class)."""
        return False

    def is_reg(self):
        """Symlinks are not regular files."""
        return False

    def is_symlink(self):
        """True: this is a symbolic link."""
        return True

    def describe_meta(self):
        """Symlink metadata plus its target (see :class:`Inode`)."""
        meta = super().describe_meta()
        meta["target"] = self.target
        return meta

    @property
    def size(self):
        return len(self.target)


class DeviceNode(Inode):
    """A character or block special file; behaviour lives in the device switch."""

    def __init__(self, fs, ino, mode, uid, gid, now_usec, kind, rdev):
        self.IFMT = st.S_IFBLK if kind == "block" else st.S_IFCHR
        super().__init__(fs, ino, mode, uid, gid, now_usec)
        self.rdev = rdev


class Fifo(Inode):
    """A named pipe; its buffer is attached on first open."""

    IFMT = st.S_IFIFO

    def __init__(self, fs, ino, mode, uid, gid, now_usec):
        super().__init__(fs, ino, mode, uid, gid, now_usec)
        self.pipe = None
