"""/proc: live kernel state exposed through the system interface.

The paper's thesis is that the system interface is the right place for
observation; this module applies it to the kernel's *own* state.  A
:class:`ProcFilesystem` is a mountable, read-only pseudo-filesystem
whose nodes have no stored data — each ``read`` synthesizes its content
on the spot from the live :class:`~repro.kernel.kernel.Kernel`,
:class:`~repro.kernel.proc.Process`, and observability registries.
Because it plugs into the ordinary ``namei``/``inode``/mount machinery,
plain ``open``/``read``/``getdirentries`` work, and so — crucially — do
interposition agents: a union or trace agent stacked over a client sees
the client's ``/proc`` reads like any other file I/O.

Node catalog::

    /proc/uptime                  seconds of virtual time since boot
    /proc/kernel/stats            the kernel_stats (trap 207) payload
    /proc/kernel/metrics          obs metrics registry snapshot
    /proc/kernel/namecache        name cache counters
    /proc/kernel/guard            guard-rail policy + counters
    /proc/kernel/recorder         record/replay counters
    /proc/kernel/profile          sampling profiler counters
    /proc/kernel/watch            watchpoint rule counters
    /proc/<pid>/status            one "key: value" line per field
    /proc/<pid>/fds               one open descriptor per line
    /proc/<pid>/vector            the emulation vector, one entry per line

``/proc/kernel/*`` files are JSON documents; ``uptime`` and the per-pid
files are line-oriented text (the in-world ``ps``/``top``/``vmstat``
programs in :mod:`repro.programs.procutils` parse both).

Pay-per-use: nothing here runs unless :func:`mount_procfs` is called —
an unmounted kernel is bit-for-bit the seed.  The volume deliberately
does **not** join ``kernel._volumes`` (its inodes are synthesized, so
the chaos harness's volume invariant walk has nothing durable to
check), and it allocates no inode storage: inode numbers are decoded
arithmetically and per-pid nodes are built fresh per lookup, vanishing
with their process (a stale number raises the same "stale inode" ENOENT
a recycled UFS inode would).

Lock discipline: content renderers run on the trap path with the kernel
lock already held, so they read ``kernel._procs`` and plain attributes
directly and never call lock-acquiring kernel methods.
"""

import json

from repro.kernel import stat as st
from repro.kernel.errno import EINVAL, ENOENT, EROFS, SyscallError
from repro.kernel.inode import Dirent, Inode
from repro.kernel.ofile import InodeFile, SEEK_CUR, SEEK_END, SEEK_SET
from repro.kernel.sysent import name_of
from repro.kernel.ufs import ROOT_INO

#: fixed inode numbers (the root must be 2, like every mounted volume,
#: so namei's ".." mount-crossing recognises it)
UPTIME_INO = 3
KERNEL_DIR_INO = 4
KERNEL_FILE_BASE = 5

#: per-pid inode numbers: ``PID_BASE + pid * PID_STRIDE + slot``
PID_BASE = 1024
PID_STRIDE = 8
SLOT_DIR, SLOT_STATUS, SLOT_FDS, SLOT_VECTOR = 0, 1, 2, 3

PID_FILES = ("status", "fds", "vector")

_READONLY = "/proc is read-only"


# ----------------------------------------------------------------------
# content renderers (kernel lock held; read state, never call back in)
# ----------------------------------------------------------------------


def _render_uptime(kernel):
    now = kernel.clock._usec
    up = (now - kernel.boot_usec) / 1e6
    return "%.6f %d\n" % (up, now)


def _render_stats(kernel):
    from repro.kernel.syscalls.obscalls import kernel_stats_payload

    return json.dumps(kernel_stats_payload(kernel)) + "\n"


def _render_metrics(kernel):
    obs = kernel.obs
    doc = obs.metrics.snapshot() if obs is not None else {"enabled": False}
    return json.dumps(doc, sort_keys=True) + "\n"


def _render_namecache(kernel):
    cache = kernel.namecache
    doc = cache.stats() if cache is not None else {"enabled": False}
    return json.dumps(doc, sort_keys=True) + "\n"


def _render_guard(kernel):
    rail = kernel.guard
    if rail is not None:
        doc = dict(rail.stats.snapshot(), policy=rail.policy.mode)
    else:
        doc = {"enabled": False}
    return json.dumps(doc, sort_keys=True) + "\n"


def _render_recorder(kernel):
    rec = kernel.recorder
    doc = rec.stats() if rec is not None else {"enabled": False}
    return json.dumps(doc, sort_keys=True) + "\n"


def _render_profile(kernel):
    prof = kernel.profiler
    doc = prof.stats() if prof is not None else {"enabled": False}
    return json.dumps(doc, sort_keys=True) + "\n"


def _render_watch(kernel):
    watches = kernel.watches
    doc = watches.stats() if watches is not None else {"enabled": False}
    return json.dumps(doc, sort_keys=True) + "\n"


#: name -> renderer for /proc/kernel, in directory order
KERNEL_FILES = (
    ("stats", _render_stats),
    ("metrics", _render_metrics),
    ("namecache", _render_namecache),
    ("guard", _render_guard),
    ("recorder", _render_recorder),
    ("profile", _render_profile),
    ("watch", _render_watch),
)


def _render_status(kernel, proc):
    lines = [
        ("pid", proc.pid),
        ("ppid", proc.ppid),
        ("pgrp", proc.pgrp),
        ("uid", proc.cred.uid),
        ("gid", proc.cred.gid),
        ("state", proc.state),
        ("comm", proc.comm or "?"),
        ("nsyscalls", proc.rusage.ru_nsyscalls),
        ("utime_usec", proc.rusage.ru_utime_usec),
        ("stime_usec", proc.rusage.ru_stime_usec),
        ("inblock", proc.rusage.ru_inblock),
        ("oublock", proc.rusage.ru_oublock),
        ("vector", len(proc.emulation_vector)),
        ("ktrace", int(proc.ktrace_on)),
    ]
    return "".join("%s: %s\n" % (key, value) for key, value in lines)


def _render_fds(kernel, proc):
    out = []
    for fd in proc.fdtable.descriptors():
        ofile = proc.fdtable.get(fd)
        out.append("%d %s\n" % (fd, ofile.describe()))
    return "".join(out)


def _render_vector(kernel, proc):
    out = []
    for number in sorted(proc.emulation_vector):
        handler = proc.emulation_vector[number]
        out.append("%d %s %s\n" % (
            number, name_of(number),
            getattr(handler, "__qualname__", type(handler).__name__)))
    return "".join(out)


PID_RENDERERS = {
    "status": _render_status,
    "fds": _render_fds,
    "vector": _render_vector,
}


# ----------------------------------------------------------------------
# synthesized inodes
# ----------------------------------------------------------------------


class ProcNode(Inode):
    """A synthesized read-only file; content is rendered per read."""

    IFMT = st.S_IFREG

    def __init__(self, fs, ino, name, render):
        super().__init__(fs, ino, 0o444, 0, 0, fs.clock._usec)
        self.nlink = 1
        self.name = name
        self._render = render

    def is_dir(self):
        return False

    def is_reg(self):
        return True

    def is_symlink(self):
        return False

    def render_bytes(self):
        """Synthesize this node's current content (and count the read)."""
        fs = self.fs
        fs.reads += 1
        fs.reads_by_node[self.name] = fs.reads_by_node.get(self.name, 0) + 1
        return self._render(fs.kernel).encode()

    @property
    def data(self):
        """Regular-file duck type (host helpers read ``node.data``)."""
        return self.render_bytes()

    # Raw inode I/O, for any path that bypasses ProcFile: reads render
    # fresh content, writes refuse.
    def read_at(self, offset, count):
        """Serve a read window out of the freshly rendered content."""
        data = self.render_bytes()
        return bytes(data[offset:offset + count])

    def write_at(self, offset, data):
        """Refuse: every /proc node is read-only."""
        raise SyscallError(EROFS, _READONLY)

    def truncate_to(self, length):
        """Refuse: every /proc node is read-only."""
        raise SyscallError(EROFS, _READONLY)

    def touch_atime(self, now_usec):
        """Pseudo-files have no stored times to maintain."""

    def touch_mtime(self, now_usec):
        raise SyscallError(EROFS, _READONLY)


class ProcDir(Inode):
    """A synthesized directory; its entries are computed per call."""

    IFMT = st.S_IFDIR

    def __init__(self, fs, ino, lookup_fn, entries_fn):
        super().__init__(fs, ino, 0o555, 0, 0, fs.clock._usec)
        self.nlink = 2
        self._lookup = lookup_fn
        self._entries = entries_fn
        self.mounted = None

    def is_dir(self):
        return True

    def is_reg(self):
        return False

    def is_symlink(self):
        return False

    def lookup(self, name):
        """Resolve *name* to a child inode number (namei's directory duck)."""
        return self._lookup(name)

    def contains(self, name):
        """True when *name* resolves in this directory right now."""
        try:
            self._lookup(name)
        except SyscallError:
            return False
        return True

    def list_entries(self):
        """Synthesize the Dirent list afresh (getdirentries' view)."""
        return self._entries()


class ProcFile(InodeFile):
    """An open /proc file: one content snapshot per open-file object.

    The snapshot materialises on first read (or SEEK_END), so a reader
    doing short sequential reads sees one coherent document instead of
    content re-rendered — and possibly resized — between its reads.
    """

    def __init__(self, inode, mode_bits, flags):
        super().__init__(inode, mode_bits, flags)
        self._data = None

    def _snapshot(self):
        if self._data is None:
            self._data = self.inode.render_bytes()
        return self._data

    def read(self, kernel, proc, count):
        self.require_read()
        if count < 0:
            raise SyscallError(EINVAL)
        data = self._snapshot()
        chunk = bytes(data[self.offset:self.offset + count])
        self.offset += len(chunk)
        return chunk

    def write(self, kernel, proc, data):
        raise SyscallError(EROFS, _READONLY)

    def truncate(self, kernel, length):
        raise SyscallError(EROFS, _READONLY)

    def seek(self, kernel, offset, whence):
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self.offset + offset
        elif whence == SEEK_END:
            new = len(self._snapshot()) + offset
        else:
            raise SyscallError(EINVAL, "bad whence %r" % (whence,))
        if new < 0:
            raise SyscallError(EINVAL, "negative offset")
        self.offset = new
        return new


# ----------------------------------------------------------------------
# the filesystem
# ----------------------------------------------------------------------


class ProcFilesystem:
    """Duck-types the :class:`repro.kernel.ufs.Filesystem` read surface.

    Synthesized nodes mean there is nothing to store: ``inode`` decodes
    numbers arithmetically, reference counting is a no-op, and every
    write-side method refuses with ``EROFS``.
    """

    def __init__(self, kernel, dev):
        self.kernel = kernel
        self.clock = kernel.clock
        self.dev = dev
        self.block_size = 512
        self.namecache = None
        self.zero_copy = False
        self.faultsites = None
        self.covered = None
        #: where mount_procfs put us, for umount_procfs and stats
        self.mounted_at = None
        #: content materialisations, total and per node name
        self.reads = 0
        self.reads_by_node = {}
        self.root = ProcDir(self, ROOT_INO,
                            self._root_lookup, self._root_entries)
        self._kernel_dir = ProcDir(self, KERNEL_DIR_INO,
                                   self._kernel_lookup, self._kernel_entries)

    # -- the open-file hook (consulted by Kernel.make_open_file) --------

    def open_file(self, kernel, proc, inode, flags):
        """Synthesized nodes get snapshotting open files; dirs are plain."""
        from repro.kernel.ofile import open_mode_bits

        bits = open_mode_bits(flags)
        if inode.is_dir():
            return InodeFile(inode, bits, flags)
        return ProcFile(inode, bits, flags)

    # -- inode decode ----------------------------------------------------

    def inode(self, ino):
        """Decode *ino* arithmetically into a freshly built node.

        Nothing is stored: fixed numbers name the static files, and
        ``PID_BASE + pid * PID_STRIDE + slot`` names the per-process
        ones — a number whose process has exited decodes to nothing
        and raises the stale-inode ``ENOENT``.
        """
        if ino == ROOT_INO:
            return self.root
        if ino == KERNEL_DIR_INO:
            return self._kernel_dir
        if ino == UPTIME_INO:
            return ProcNode(self, ino, "uptime", _render_uptime)
        if KERNEL_FILE_BASE <= ino < KERNEL_FILE_BASE + len(KERNEL_FILES):
            name, render = KERNEL_FILES[ino - KERNEL_FILE_BASE]
            return ProcNode(self, ino, "kernel/" + name, render)
        if ino >= PID_BASE:
            pid, slot = divmod(ino - PID_BASE, PID_STRIDE)
            proc = self.kernel._procs.get(pid)
            if proc is not None:
                if slot == SLOT_DIR:
                    return self._pid_dir(pid)
                if 0 < slot <= len(PID_FILES):
                    name = PID_FILES[slot - 1]
                    render = PID_RENDERERS[name]
                    return ProcNode(
                        self, ino, name,
                        lambda kernel, pid=pid, name=name,
                        render=render: self._render_pid(kernel, pid,
                                                        name, render))
        raise SyscallError(ENOENT, "stale inode %d" % ino)

    def _render_pid(self, kernel, pid, name, render):
        proc = kernel._procs.get(pid)
        if proc is None:
            raise SyscallError(ENOENT, "stale pid %d" % pid)
        return render(kernel, proc)

    # -- directory synthesis --------------------------------------------

    def _root_lookup(self, name):
        if name in (".", ".."):
            return ROOT_INO
        if name == "uptime":
            return UPTIME_INO
        if name == "kernel":
            return KERNEL_DIR_INO
        if name.isdigit():
            pid = int(name)
            if pid in self.kernel._procs:
                return PID_BASE + pid * PID_STRIDE
        raise SyscallError(ENOENT, name)

    def _root_entries(self):
        entries = [Dirent(ROOT_INO, "."), Dirent(ROOT_INO, ".."),
                   Dirent(KERNEL_DIR_INO, "kernel"),
                   Dirent(UPTIME_INO, "uptime")]
        for pid in sorted(self.kernel._procs):
            entries.append(Dirent(PID_BASE + pid * PID_STRIDE, str(pid)))
        return entries

    def _kernel_lookup(self, name):
        if name == ".":
            return KERNEL_DIR_INO
        if name == "..":
            return ROOT_INO
        for index, (fname, _render) in enumerate(KERNEL_FILES):
            if fname == name:
                return KERNEL_FILE_BASE + index
        raise SyscallError(ENOENT, name)

    def _kernel_entries(self):
        entries = [Dirent(KERNEL_DIR_INO, "."), Dirent(ROOT_INO, "..")]
        for index, (fname, _render) in enumerate(KERNEL_FILES):
            entries.append(Dirent(KERNEL_FILE_BASE + index, fname))
        return entries

    def _pid_dir(self, pid):
        base = PID_BASE + pid * PID_STRIDE

        def lookup(name, base=base, pid=pid):
            if name == ".":
                return base
            if name == "..":
                return ROOT_INO
            if name in PID_FILES:
                return base + 1 + PID_FILES.index(name)
            raise SyscallError(ENOENT, name)

        def entries(base=base):
            out = [Dirent(base, "."), Dirent(ROOT_INO, "..")]
            for index, name in enumerate(PID_FILES):
                out.append(Dirent(base + 1 + index, name))
            return out

        return ProcDir(self, base, lookup, entries)

    # -- reference counting (synthesized nodes need none) ----------------

    def incref(self, inode):
        """Track opens for symmetry; synthesized nodes need no reclaim."""
        inode.open_count += 1

    def decref(self, inode):
        """Drop an open; the node is garbage the moment Python forgets it."""
        if inode.open_count > 0:
            inode.open_count -= 1

    # -- the write side: every mutation refuses --------------------------

    def _readonly(self, *args, **kwargs):
        """Refuse any namespace mutation: the whole volume is read-only."""
        raise SyscallError(EROFS, _READONLY)

    create_file = _readonly
    create_symlink = _readonly
    create_fifo = _readonly
    create_device = _readonly
    create_directory = _readonly
    mkdir_in = _readonly
    link = _readonly
    unlink = _readonly

    # -- reporting -------------------------------------------------------

    def stats(self):
        """Counters for the ``kernel_stats`` payload's procfs section."""
        return {
            "enabled": True,
            "mounted_at": self.mounted_at,
            "reads": self.reads,
            "reads_by_node": dict(sorted(self.reads_by_node.items())),
        }


# ----------------------------------------------------------------------
# mounting
# ----------------------------------------------------------------------

#: the in-world viewer programs mount_procfs installs (registered in
#: repro.programs.procutils; they have no boot-time install path so an
#: unmounted world stays bit-for-bit the seed)
TOOL_NAMES = ("ps", "top", "vmstat")


def mount_procfs(kernel, path="/proc", tools=True):
    """Mount a fresh /proc at *path*; returns the ProcFilesystem.

    Idempotent: an already-mounted procfs is returned as-is.  With
    *tools* true (the default) the ``ps``/``top``/``vmstat`` binaries
    are installed under ``/bin`` — pass ``False`` to leave the root
    volume untouched (the pay-per-use equivalence tests do).
    """
    if kernel.procfs is not None:
        return kernel.procfs
    kernel.mkdir_p(path)
    fs = ProcFilesystem(kernel, dev=kernel._next_dev)
    kernel._next_dev += 1
    kernel.mount(fs, path)
    fs.mounted_at = path
    kernel.procfs = fs
    if tools:
        install_procfs_tools(kernel)
    return fs


def umount_procfs(kernel):
    """Unmount the kernel's /proc; returns the detached filesystem."""
    fs = kernel.procfs
    if fs is None:
        return None
    kernel.umount(fs.mounted_at)
    kernel.procfs = None
    return fs


def install_procfs_tools(kernel):
    """Register and install the /proc viewer programs (idempotent)."""
    from repro.programs import procutils  # noqa: F401 -- registration
    from repro.programs.registry import PROGRAMS

    for name in TOOL_NAMES:
        if name not in kernel._programs:
            kernel.register_program(name, PROGRAMS[name])
        path = "/bin/" + name
        try:
            kernel.lookup_host(path)
        except SyscallError:
            kernel.install_binary(path, name)
