"""The ``ktrace``/``ktrace_read`` system calls: in-world observability.

``ktrace(2)`` (BSD number 45, matching real 4.3BSD's slot) flips the
per-process trace flag; ``ktrace_read`` (extension trap 206) drains the
kernel ring buffer — our stand-in for BSD's trace vnode.  Together they
let the in-world ``ktrace``/``kdump`` programs work without any host
cooperation: enabling tracing on a kernel without observability installs
it on demand (metrics on, ring buffer sized by the ``arg`` hint).
"""

from repro.kernel.errno import EINVAL, EPERM, SyscallError
from repro.kernel.ktrace import (
    KTROP_CLEAR,
    KTROP_CLEARALL,
    KTROP_CLEARBUF,
    KTROP_SET,
)
from repro.kernel.syscalls import implements

#: ring capacity when ktrace(2) itself has to install observability
DEFAULT_CAPACITY = 4096


def _may_trace(tracer, target):
    """BSD's rule: root traces anyone, others only their own uid."""
    cred = tracer.cred
    return (
        cred.is_superuser()
        or cred.uid == target.cred.uid
        or cred.euid == target.cred.uid
    )


def _target(kernel, proc, pid):
    """Resolve a ktrace target pid (0 = the caller), checking permission."""
    if pid == 0:
        return proc
    target = kernel.find_process_locked(pid)
    if not _may_trace(proc, target):
        raise SyscallError(EPERM, "ktrace pid %d" % pid)
    return target


@implements("ktrace")
def sys_ktrace(kernel, proc, op, pid=0, arg=0):
    """ktrace(2): manipulate per-process kernel tracing.

    ``op`` is one of ``KTROP_SET`` (enable tracing for *pid*, 0 = self;
    installs observability with a ring of ``arg`` records — default
    4096 — if the kernel has none), ``KTROP_CLEAR`` (disable for
    *pid*), ``KTROP_CLEARALL`` (disable for every process), or
    ``KTROP_CLEARBUF`` (discard buffered records and the dropped
    counter).  Returns 0.
    """
    if op == KTROP_SET:
        target = _target(kernel, proc, pid)
        if kernel.obs is None:
            # Imported here: repro.obs.core pulls in the ktrace buffer,
            # and syscall modules load before the obs package is needed.
            from repro.obs import core as obs_core

            obs_core.enable(kernel, ktrace_capacity=arg or DEFAULT_CAPACITY)
        target.ktrace_on = True
        return 0
    if op == KTROP_CLEAR:
        _target(kernel, proc, pid).ktrace_on = False
        return 0
    if op == KTROP_CLEARALL:
        if not proc.cred.is_superuser():
            raise SyscallError(EPERM, "ktrace clearall")
        for target in kernel.live_processes_locked():
            target.ktrace_on = False
        return 0
    if op == KTROP_CLEARBUF:
        if kernel.obs is not None:
            kernel.obs.ktrace.clear()
        return 0
    raise SyscallError(EINVAL, "ktrace op %r" % (op,))


@implements("ktrace_read")
def sys_ktrace_read(kernel, proc, limit=0):
    """Drain up to *limit* trace records (0 = all) from the ring buffer.

    Returns ``(records, dropped)`` where each record is an event tuple
    (see :meth:`repro.obs.events.Event.to_tuple`) and *dropped* is how
    many records were overwritten before being read.  Draining consumes:
    each record is delivered exactly once across all readers.  With
    observability disabled the answer is simply ``([], 0)``.
    """
    obs = kernel.obs
    if obs is None:
        return ([], 0)
    ring = obs.ktrace
    dropped = ring.dropped
    ring.dropped = 0
    return ([event.to_tuple() for event in ring.drain(limit)], dropped)


#: the kernel_stats payload schema.  Version 2 added the field itself,
#: the pinned section ordering below, and the procfs/profile/watch
#: sections (the un-versioned seed payload is retroactively version 1).
#: Version 3 appended the ``journal`` section (the write-ahead journal's
#: machine-wide counters; see :mod:`repro.kernel.journal`).
KERNEL_STATS_SCHEMA_VERSION = 3

#: the pinned section order of the kernel_stats payload; the golden
#: test in tests/test_procfs.py holds future PRs to it — append new
#: sections, never reorder
KERNEL_STATS_SECTIONS = (
    "schema_version",
    "fastpaths",
    "trap",
    "namecache",
    "spans",
    "guard",
    "faultsites",
    "recorder",
    "procfs",
    "profile",
    "watch",
    "journal",
)


def kernel_stats_payload(kernel):
    """The kernel_stats document, sections in pinned order.

    Shared by the trap below and by ``/proc/kernel/stats`` (see
    :mod:`repro.kernel.procfs`), so the two views can never drift.
    Each optional subsystem reports ``{"enabled": False}`` when off.
    """
    cache = kernel.namecache
    obs = kernel.obs
    spans = (obs.spans.counts() if obs is not None and obs.spans is not None
             else {"enabled": False})
    rail = kernel.guard
    if rail is not None:
        guard = dict(rail.stats.snapshot(), policy=rail.policy.mode)
    else:
        guard = {"enabled": False}
    sites = kernel.faultsites
    rec = kernel.recorder
    procfs = kernel.procfs
    prof = kernel.profiler
    watches = kernel.watches
    if kernel.journal_on:
        journal = {"enabled": True}
        totals = {}
        for fs in kernel._volumes:
            if fs.journal is None:
                continue
            for key, value in fs.journal.stats().items():
                totals[key] = totals.get(key, 0) + value
        journal.update(totals)
        journal["volumes"] = sum(
            1 for fs in kernel._volumes if fs.journal is not None)
    else:
        journal = {"enabled": False}
    return {
        "schema_version": KERNEL_STATS_SCHEMA_VERSION,
        "fastpaths": kernel.fastpaths.describe(),
        "trap": {
            "total": kernel.trap_total,
            "fast": kernel.trap_fast_total,
            "compiled": kernel.trap_compiled_total,
            "down_compiled": kernel.down_compiled_total,
        },
        "namecache": cache.stats() if cache is not None else {"enabled": False},
        "spans": spans,
        "guard": guard,
        "faultsites": sites.stats() if sites is not None else {"enabled": False},
        "recorder": rec.stats() if rec is not None else {"enabled": False},
        "procfs": procfs.stats() if procfs is not None else {"enabled": False},
        "profile": prof.stats() if prof is not None else {"enabled": False},
        "watch": (watches.stats() if watches is not None
                  else {"enabled": False}),
        "journal": journal,
    }


@implements("kernel_stats")
def sys_kernel_stats(kernel, proc):
    """Report the kernel's fast-path configuration and counters.

    Extension trap 207.  The in-world route to the numbers the host sees
    on ``kernel.namecache`` — agents (the monitor in particular) call
    this instead of reaching around the system interface.  Always
    available; with a fast path off, its section reports accordingly.
    The ``spans`` section carries the causal span assembler's counters
    (``{"enabled": False}`` when span tracing is off), so agents can
    introspect the trace being built about them.  The ``guard``,
    ``faultsites``, ``recorder``, ``procfs``, ``profile``, and
    ``watch`` sections do the same for agent fault containment, armed
    kernel fault sites, record/replay, the /proc pseudo-filesystem, the
    sampling profiler, and watchpoints (``{"enabled": False}`` when
    off).  The payload carries ``schema_version`` and its section
    ordering is pinned (``KERNEL_STATS_SECTIONS``).
    """
    return kernel_stats_payload(kernel)
