"""System calls that operate on file descriptors.

These are the calls the toolkit's ``desc_symbolic_syscall`` routes through
the descriptor layer — the 48 calls the paper counts as "using
descriptors".
"""

from repro.kernel.errno import EINVAL, SyscallError
from repro.kernel.ofile import (
    F_DUPFD,
    F_GETFD,
    F_GETFL,
    F_SETFD,
    F_SETFL,
    FD_CLOEXEC,
    FREAD,
    FWRITE,
    O_APPEND,
    O_NONBLOCK,
    PipeEnd,
)
from repro.kernel.pipe import Pipe
from repro.kernel.syscalls import implements


@implements("read")
def sys_read(kernel, proc, fd, count):
    """read(2): read up to *count* bytes at the shared offset."""
    ofile = proc.fdtable.get(fd)
    data = ofile.read(kernel, proc, count)
    proc.rusage.ru_inblock += 1
    return data


@implements("write")
def sys_write(kernel, proc, fd, data):
    """write(2): write *data* at the shared offset (or at EOF with O_APPEND)."""
    if isinstance(data, str):
        data = data.encode()
    ofile = proc.fdtable.get(fd)
    written = ofile.write(kernel, proc, data)
    proc.rusage.ru_oublock += 1
    return written


@implements("readv")
def sys_readv(kernel, proc, fd, counts):
    """Scatter read: *counts* sizes the iovec; returns a list of buffers.

    Atomic with respect to the shared offset, like the real call: the
    whole vector is filled in one operation.
    """
    if not isinstance(counts, (list, tuple)) or not counts:
        raise SyscallError(EINVAL, "readv wants a non-empty iovec")
    ofile = proc.fdtable.get(fd)
    buffers = []
    for count in counts:
        if not isinstance(count, int) or count < 0:
            raise SyscallError(EINVAL)
        data = ofile.read(kernel, proc, count)
        buffers.append(data)
        if len(data) < count:
            break  # EOF mid-vector
    proc.rusage.ru_inblock += 1
    return buffers


@implements("writev")
def sys_writev(kernel, proc, fd, buffers):
    """Gather write: writes each buffer in order; returns the total."""
    if not isinstance(buffers, (list, tuple)) or not buffers:
        raise SyscallError(EINVAL, "writev wants a non-empty iovec")
    ofile = proc.fdtable.get(fd)
    total = 0
    for buffer in buffers:
        if isinstance(buffer, str):
            buffer = buffer.encode()
        total += ofile.write(kernel, proc, buffer)
    proc.rusage.ru_oublock += 1
    return total


@implements("close")
def sys_close(kernel, proc, fd):
    """close(2): free the slot; drop the open-file reference."""
    ofile = proc.fdtable.remove(fd)
    ofile.decref(kernel)
    return 0


@implements("lseek")
def sys_lseek(kernel, proc, fd, offset, whence):
    """lseek(2): reposition the shared offset; EINVAL when negative."""
    ofile = proc.fdtable.get(fd)
    return ofile.seek(kernel, offset, whence)


@implements("dup")
def sys_dup(kernel, proc, fd):
    """dup(2): lowest-free duplicate sharing the open-file entry."""
    ofile = proc.fdtable.get(fd)
    newfd = proc.fdtable.lowest_free()
    ofile.incref()
    proc.fdtable.install(newfd, ofile)
    return newfd


@implements("dup2")
def sys_dup2(kernel, proc, fd, newfd):
    """dup2(2): duplicate onto *newfd*, closing its old entry."""
    ofile = proc.fdtable.get(fd)
    if not 0 <= newfd < proc.fdtable.size:
        raise SyscallError(EINVAL, "dup2 target %r" % (newfd,))
    if newfd == fd:
        return newfd
    try:
        old = proc.fdtable.remove(newfd)
    except SyscallError:
        old = None
    if old is not None:
        old.decref(kernel)
    ofile.incref()
    proc.fdtable.install(newfd, ofile)
    return newfd


@implements("pipe")
def sys_pipe(kernel, proc):
    """pipe(2): new pipe; two return registers carry the descriptors."""
    pipe = Pipe()
    read_end = PipeEnd(pipe, FREAD)
    write_end = PipeEnd(pipe, FWRITE)
    rfd = proc.fdtable.allocate(read_end)
    wfd = proc.fdtable.allocate(write_end)
    return (rfd, wfd)


@implements("fstat")
def sys_fstat(kernel, proc, fd):
    """fstat(2): the ``struct stat`` of the open object."""
    ofile = proc.fdtable.get(fd)
    return ofile.stat_record(kernel)


@implements("fsync")
def sys_fsync(kernel, proc, fd):
    """fsync(2): flush the open object (a no-op for our volumes)."""
    ofile = proc.fdtable.get(fd)
    ofile.sync(kernel)
    return 0


@implements("ftruncate")
def sys_ftruncate(kernel, proc, fd, length):
    """ftruncate(2): set the file's length; needs write mode."""
    ofile = proc.fdtable.get(fd)
    ofile.truncate(kernel, length)
    return 0


@implements("fchmod")
def sys_fchmod(kernel, proc, fd, mode):
    """fchmod(2): change the backing inode's mode (owner or root)."""
    from repro.kernel import cred as credmod
    from repro.kernel import stat as st

    ofile = proc.fdtable.get(fd)
    inode = getattr(ofile, "inode", None)
    if inode is None:
        raise SyscallError(EINVAL)
    credmod.check_owner(inode, proc.cred)
    inode.mode = (inode.mode & st.S_IFMT) | (mode & 0o7777)
    inode.touch_ctime(kernel.clock.usec())
    return 0


@implements("fchown")
def sys_fchown(kernel, proc, fd, uid, gid):
    """fchown(2): change the backing inode's ownership (root only)."""
    from repro.kernel.errno import EPERM

    if not proc.cred.is_superuser():
        raise SyscallError(EPERM, "chown is restricted to root")
    ofile = proc.fdtable.get(fd)
    inode = getattr(ofile, "inode", None)
    if inode is None:
        raise SyscallError(EINVAL)
    if uid != -1:
        inode.uid = uid
    if gid != -1:
        inode.gid = gid
    inode.touch_ctime(kernel.clock.usec())
    return 0


@implements("ioctl")
def sys_ioctl(kernel, proc, fd, request, arg=None):
    """ioctl(2): forward to the open object's device."""
    ofile = proc.fdtable.get(fd)
    return ofile.ioctl(kernel, proc, request, arg)


@implements("fcntl")
def sys_fcntl(kernel, proc, fd, cmd, arg=0):
    """fcntl(2): F_DUPFD / close-on-exec flags / status flags."""
    ofile = proc.fdtable.get(fd)
    if cmd == F_DUPFD:
        newfd = proc.fdtable.lowest_free(arg)
        ofile.incref()
        proc.fdtable.install(newfd, ofile)
        return newfd
    if cmd == F_GETFD:
        return FD_CLOEXEC if proc.fdtable.get_cloexec(fd) else 0
    if cmd == F_SETFD:
        proc.fdtable.set_cloexec(fd, bool(arg & FD_CLOEXEC))
        return 0
    if cmd == F_GETFL:
        return ofile.flags
    if cmd == F_SETFL:
        settable = O_APPEND | O_NONBLOCK
        ofile.flags = (ofile.flags & ~settable) | (arg & settable)
        return 0
    raise SyscallError(EINVAL, "fcntl cmd %r" % (cmd,))


@implements("getdirentries")
def sys_getdirentries(kernel, proc, fd, count):
    """getdirentries(2): read directory entries at the shared offset."""
    ofile = proc.fdtable.get(fd)
    return ofile.getdirentries(kernel, count)


@implements("select")
def sys_select(kernel, proc, timeout_usec):
    """Timeout-only select: the simulated sleep primitive.

    Advances virtual time by the timeout and wakes when it elapses or a
    signal arrives.  Descriptor readiness sets are not modelled; programs
    in this world use blocking reads.
    """
    if timeout_usec < 0:
        raise SyscallError(EINVAL)
    kernel.clock.advance(timeout_usec)
    if proc.has_deliverable_signal():
        from repro.kernel.errno import EINTR

        raise SyscallError(EINTR)
    return 0


@implements("getdtablesize")
def sys_getdtablesize(kernel, proc):
    """getdtablesize(2): size of the per-process descriptor table."""
    return proc.fdtable.size
