"""The Mach-2.5-flavoured extension traps the interposition toolkit needs.

``task_set_emulation`` and ``task_set_signal_redirect`` are the general
system-call-handling facilities the paper's Goal 1 allows the kernel to
provide "once, so that agents can be written at all".  ``jump_to_image``
and ``image_header`` are the lower-level pieces an agent composes when it
reimplements ``execve`` (paper Section 3.5.1): unlike the native exec,
``jump_to_image`` replaces only the program image — the emulation vector,
descriptor table, and signal dispositions are left exactly as the caller
arranged them.
"""

from repro.kernel.errno import EINVAL, SyscallError
from repro.kernel.proc import ExecImage
from repro.kernel.sysent import SYSCALLS
from repro.kernel.syscalls import implements
from repro.obs import events as obs_events


@implements("task_set_emulation")
def sys_task_set_emulation(kernel, proc, numbers, handler):
    """Redirect the given system call numbers to *handler*.

    *handler* is called as ``handler(ctx, number, args)`` in the process's
    own context (*ctx* is the calling process's user context — the Mach
    analogue of the handler running in the client's address space) and
    must return the call's value or raise ``SyscallError``.  Passing
    ``None`` removes the redirection for those numbers.
    """
    if handler is not None and not callable(handler):
        raise SyscallError(EINVAL, "handler must be callable")
    for number in numbers:
        if not isinstance(number, int):
            raise SyscallError(EINVAL, "bad syscall number %r" % (number,))
        if handler is None:
            proc.emulation_vector.pop(number, None)
        else:
            proc.emulation_vector[number] = handler
    # The emulation vector changed: neither precomputed dispatch table
    # reflects it any more.  Both rebuild lazily on the next trap.
    proc.fast_dispatch = None
    proc.compiled_dispatch = None
    return 0


@implements("task_get_emulation")
def sys_task_get_emulation(kernel, proc, number):
    """Return the handler currently redirecting *number* (or ``None``).

    A newly interposing agent reads this before installing itself, so it
    can call the *previous* instance of the system interface as its
    downward path — this is how agents stack (paper Figure 1-3: agents,
    like the kernel, provide instances of the system interface).
    """
    if not isinstance(number, int):
        raise SyscallError(EINVAL, "bad syscall number %r" % (number,))
    return proc.emulation_vector.get(number)


@implements("task_get_descriptors")
def sys_task_get_descriptors(kernel, proc):
    """List the process's open descriptors as ``[(fd, close_on_exec)]``.

    On Mach 2.5 the BSD emulator kept the descriptor table in the task's
    own address space, so an agent reimplementing ``execve`` could find
    the close-on-exec subset without probing every slot; this trap
    stands in for that in-address-space knowledge.
    """
    return [
        (fd, proc.fdtable.get_cloexec(fd))
        for fd in proc.fdtable.descriptors()
    ]


@implements("task_set_signal_redirect")
def sys_task_set_signal_redirect(kernel, proc, handler):
    """Route incoming signal delivery through *handler* first.

    *handler* is called as ``handler(ctx, signum, action)`` where *action*
    is the application's current :class:`~repro.kernel.signals.Sigaction`;
    it decides whether and how to forward.  ``None`` removes redirection.
    """
    if handler is not None and not callable(handler):
        raise SyscallError(EINVAL, "handler must be callable")
    proc.signal_redirect = handler
    return 0


@implements("image_header")
def sys_image_header(kernel, proc, path):
    """Validate and describe an executable image without running it.

    Returns ``(program_name, implicit_argv)``; raises ``ENOEXEC``/``EACCES``
    exactly as ``execve`` would, so an agent can fail *before* it starts
    tearing down descriptor and signal state.
    """
    factory, base_argv = kernel.load_image_locked(proc, path)
    return (factory.program_name, list(base_argv))


@implements("jump_to_image")
def sys_jump_to_image(kernel, proc, path, argv=None, envp=None):
    """Replace the running program image and nothing else."""
    kernel.exec_total += 1
    factory, base_argv = kernel.load_image_locked(proc, path)
    given = list(argv if argv is not None else [path])
    argv = base_argv + given[1:] if base_argv else given
    obs = kernel.obs
    if obs is not None:
        if obs.metrics_on:
            obs.metrics.inc(("proc.execve",))
        if obs.wants(proc):
            obs.emit(obs_events.PROC_EXECVE, proc,
                     detail="jump_to_image %s" % path)
    proc.comm = argv[0] if argv else path
    raise ExecImage(factory, argv, dict(envp or {}))
