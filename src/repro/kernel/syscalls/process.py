"""Process-related system calls: identity, fork, execve, wait, exit."""

from repro.kernel import cred as credmod
from repro.kernel.errno import (
    EACCES,
    ECHILD,
    EINVAL,
    ENOEXEC,
    EPERM,
    ESRCH,
    SyscallError,
)
from repro.kernel.namei import namei
from repro.kernel.proc import (
    ExecImage,
    ProcessExit,
    ZOMBIE,
)
from repro.kernel.syscalls import implements
from repro.obs import events as obs_events


@implements("exit")
def sys_exit(kernel, proc, status=0):
    """exit(2): close descriptors, reparent children, become a zombie."""
    kernel.finish_exit_locked(proc, exit_code=status & 0xFF)
    raise ProcessExit(exit_code=status & 0xFF)


@implements("fork")
def sys_fork(kernel, proc, entry=None):
    """fork(2): duplicate the process; child runs *entry* (see DESIGN.md)."""
    kernel.fork_total += 1
    child = kernel.spawn_child_locked(proc, entry)
    # Two return registers, as on the VAX: rv[0] = child pid, rv[1] = 0 in
    # the parent (the child's "return" is its entry function starting).
    return (child.pid, 0)


@implements("vfork")
def sys_vfork(kernel, proc, entry=None):
    """vfork(2): treated as fork in the simulation."""
    return sys_fork(kernel, proc, entry)


@implements("wait")
def sys_wait(kernel, proc):
    """wait(2): block until a child is a zombie; reap and return it."""
    while True:
        if not proc.children:
            raise SyscallError(ECHILD)
        zombie = next((c for c in proc.children if c.state == ZOMBIE), None)
        if zombie is not None:
            return kernel.reap_locked(proc, zombie)
        kernel.sleep_until(
            lambda: any(c.state == ZOMBIE for c in proc.children),
            proc,
            "wait",
        )


@implements("execve")
def sys_execve(kernel, proc, path, argv=None, envp=None):
    """The native exec: atomic image replacement.

    Resets caught signals, applies close-on-exec, and — because the new
    image replaces the whole address space, agent included — clears the
    emulation vector and signal redirection.  An interposition agent that
    wants to survive exec must therefore reimplement this call from the
    lower-level pieces (paper Section 3.5.1).
    """
    kernel.exec_total += 1
    factory, base_argv = kernel.load_image_locked(proc, path)
    given = list(argv if argv is not None else [path])
    argv = base_argv + given[1:] if base_argv else given
    envp = dict(envp or {})

    # Close descriptors marked close-on-exec.
    for fd in list(proc.fdtable.descriptors()):
        if proc.fdtable.get_cloexec(fd):
            proc.fdtable.remove(fd).decref(kernel)

    # Caught signals revert to default; ignored ones stay ignored (BSD).
    from repro.kernel import signals as sig

    for signum, action in proc.dispositions.items():
        if action.handler not in (sig.SIG_DFL, sig.SIG_IGN):
            proc.dispositions[signum] = sig.Sigaction()

    # The new image replaces the address space: interposition is gone.
    proc.emulation_vector.clear()
    proc.fast_dispatch = None
    proc.compiled_dispatch = None
    proc.signal_redirect = None
    # ktrace is reset with it: a fresh image starts untraced (the
    # toolkit's jump_to_image, which replaces only the image, keeps it).
    obs = kernel.obs
    if obs is not None:
        if obs.metrics_on:
            obs.metrics.inc(("proc.execve",))
        if obs.wants(proc):
            obs.emit(obs_events.PROC_EXECVE, proc, detail=path)
    proc.ktrace_on = False

    proc.comm = argv[0] if argv else path
    raise ExecImage(factory, argv, envp)


@implements("getpid")
def sys_getpid(kernel, proc):
    """getpid(2)."""
    return proc.pid


@implements("getppid")
def sys_getppid(kernel, proc):
    """getppid(2)."""
    return proc.ppid


@implements("getuid")
def sys_getuid(kernel, proc):
    """getuid(2)."""
    return proc.cred.uid


@implements("geteuid")
def sys_geteuid(kernel, proc):
    """geteuid(2)."""
    return proc.cred.euid


@implements("getgid")
def sys_getgid(kernel, proc):
    """getgid(2)."""
    return proc.cred.gid


@implements("getegid")
def sys_getegid(kernel, proc):
    """getegid(2)."""
    return proc.cred.egid


@implements("setuid")
def sys_setuid(kernel, proc, uid):
    """setuid(2): set both ids; only root may change arbitrarily."""
    if not proc.cred.is_superuser() and uid not in (proc.cred.uid,):
        raise SyscallError(EPERM)
    proc.cred.uid = uid
    proc.cred.euid = uid
    return 0


@implements("getgroups")
def sys_getgroups(kernel, proc):
    """getgroups(2)."""
    return list(proc.cred.groups)


@implements("setgroups")
def sys_setgroups(kernel, proc, groups):
    """setgroups(2): root only; at most NGROUPS entries."""
    if not proc.cred.is_superuser():
        raise SyscallError(EPERM)
    if len(groups) > credmod.NGROUPS:
        raise SyscallError(EINVAL)
    proc.cred.groups = list(groups)
    return 0


@implements("getpgrp")
def sys_getpgrp(kernel, proc):
    """getpgrp(2)."""
    return proc.pgrp


@implements("setpgrp")
def sys_setpgrp(kernel, proc, pid=0, pgrp=0):
    """setpgrp(2): for self or an immediate child."""
    target = proc if pid in (0, proc.pid) else kernel.find_process_locked(pid)
    if target is not proc and target.ppid != proc.pid:
        raise SyscallError(ESRCH)
    target.pgrp = pgrp or target.pid
    return 0


@implements("umask")
def sys_umask(kernel, proc, mask):
    """umask(2): swap the creation mask, returning the old one."""
    old = proc.umask
    proc.umask = mask & 0o777
    return old


@implements("brk")
def sys_brk(kernel, proc, addr):
    """brk(2): record the break; memory is not otherwise modelled."""
    if addr < 0:
        raise SyscallError(EINVAL)
    proc.brk = addr
    return 0


@implements("getpagesize")
def sys_getpagesize(kernel, proc):
    """getpagesize(2)."""
    return kernel.page_size


@implements("gethostname")
def sys_gethostname(kernel, proc):
    """gethostname(2)."""
    return kernel.hostname
