"""Time and accounting system calls."""

from repro.kernel.clock import Timeval
from repro.kernel.errno import EINVAL, EPERM, SyscallError
from repro.kernel.syscalls import implements

RUSAGE_SELF = 0
RUSAGE_CHILDREN = -1


@implements("gettimeofday")
def sys_gettimeofday(kernel, proc):
    """Returns a fresh :class:`Timeval` — agents (timex!) may mutate it."""
    if kernel.recorder is not None:
        kernel.recorder.note("K", proc.pid, str(kernel.clock.usec()))
    return kernel.clock.now()


@implements("settimeofday")
def sys_settimeofday(kernel, proc, sec, usec):
    """settimeofday(2): step the virtual clock (root only)."""
    if not proc.cred.is_superuser():
        raise SyscallError(EPERM)
    if not 0 <= usec < 1_000_000:
        raise SyscallError(EINVAL)
    kernel.clock.set(Timeval(sec, usec))
    if kernel.recorder is not None:
        kernel.recorder.note("K", proc.pid, str(kernel.clock.usec()))
    return 0


@implements("getrusage")
def sys_getrusage(kernel, proc, who):
    """getrusage(2): snapshot accounting for self or children."""
    if who == RUSAGE_SELF:
        return proc.rusage.snapshot()
    if who == RUSAGE_CHILDREN:
        return proc.child_rusage.snapshot()
    raise SyscallError(EINVAL)
