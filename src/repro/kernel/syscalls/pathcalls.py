"""System calls that operate on pathnames.

These are the calls the toolkit's ``path_symbolic_syscall`` routes through
``pathname_set.getpn()`` — the 30 calls the paper counts as "using
pathnames".  Every one funnels through :func:`repro.kernel.namei.namei`.
"""

from repro.kernel import cred as credmod
from repro.kernel import stat as st
from repro.kernel.errno import (
    EACCES,
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    EPERM,
    EROFS,
    EXDEV,
    SyscallError,
)
from repro.kernel.namei import namei
from repro.kernel.ofile import (
    InodeFile,
    O_CREAT,
    O_EXCL,
    O_TRUNC,
    access_intent,
    open_mode_bits,
)
from repro.kernel.syscalls import implements


@implements("open")
def sys_open(kernel, proc, path, flags=0, mode=0o666):
    """open(2): resolve (creating under O_CREAT), check access, allocate a descriptor."""
    want_parent = bool(flags & O_CREAT)
    result = namei(proc, path, follow=True, want_parent=want_parent)
    inode = result.inode
    if inode is None:
        # Create a new regular file in the parent directory.
        parent = result.parent
        credmod.check_access(parent, proc.cred, credmod.W_OK)
        fs = parent.fs
        inode = fs.create_file((mode & 0o7777) & ~proc.umask, proc.cred)
        try:
            fs.link(parent, result.name, inode)
        except SyscallError:
            # Unwind the creat: the fresh inode (nlink 0, never opened)
            # must not survive a failed link, or it leaks in the table.
            fs.maybe_reclaim(inode)
            raise
    else:
        if flags & O_CREAT and flags & O_EXCL:
            raise SyscallError(EEXIST, path)
        want = access_intent(flags)
        if inode.is_dir() and want & credmod.W_OK:
            raise SyscallError(EISDIR, path)
        credmod.check_access(inode, proc.cred, want)
    ofile = kernel.make_open_file(proc, inode, flags)
    if flags & O_TRUNC and inode.is_reg():
        inode.truncate_to(0)
        inode.touch_mtime(kernel.clock.usec())
    return proc.fdtable.allocate(ofile)


@implements("link")
def sys_link(kernel, proc, path, newpath):
    """link(2): add a directory entry for an existing non-directory."""
    inode = namei(proc, path, follow=False).require()
    if inode.is_dir():
        raise SyscallError(EPERM, "link to directory")
    target = namei(proc, newpath, follow=True, want_parent=True)
    if target.inode is not None:
        raise SyscallError(EEXIST, newpath)
    if target.parent.fs is not inode.fs:
        raise SyscallError(EXDEV)
    credmod.check_access(target.parent, proc.cred, credmod.W_OK)
    inode.fs.link(target.parent, target.name, inode)
    return 0


@implements("unlink")
def sys_unlink(kernel, proc, path):
    """unlink(2): remove an entry; the inode survives while open."""
    result = namei(proc, path, follow=False)
    inode = result.require()
    if inode.is_dir():
        raise SyscallError(EPERM, "unlink of directory")
    credmod.check_access(result.parent, proc.cred, credmod.W_OK)
    inode.fs.unlink(result.parent, result.name, inode)
    return 0


@implements("chdir")
def sys_chdir(kernel, proc, path):
    """chdir(2): set the working directory (needs search permission)."""
    inode = namei(proc, path, follow=True).require()
    if not inode.is_dir():
        raise SyscallError(ENOTDIR, path)
    credmod.check_access(inode, proc.cred, credmod.X_OK)
    proc.cwd = inode
    return 0


@implements("chroot")
def sys_chroot(kernel, proc, path):
    """chroot(2): confine the process's root (superuser only)."""
    if not proc.cred.is_superuser():
        raise SyscallError(EPERM)
    inode = namei(proc, path, follow=True).require()
    if not inode.is_dir():
        raise SyscallError(ENOTDIR, path)
    proc.root_dir = inode
    proc.cwd = inode
    return 0


@implements("mknod")
def sys_mknod(kernel, proc, path, mode, dev=0):
    """mknod(2): create a file, FIFO, or (root only) device node."""
    fmt = mode & st.S_IFMT
    if fmt in (st.S_IFCHR, st.S_IFBLK) and not proc.cred.is_superuser():
        raise SyscallError(EPERM, "mknod of device")
    result = namei(proc, path, follow=True, want_parent=True)
    if result.inode is not None:
        raise SyscallError(EEXIST, path)
    parent = result.parent
    credmod.check_access(parent, proc.cred, credmod.W_OK)
    fs = parent.fs
    perm = (mode & 0o7777) & ~proc.umask
    if fmt == st.S_IFIFO:
        inode = fs.create_fifo(perm, proc.cred)
    elif fmt == st.S_IFCHR:
        inode = fs.create_device(perm, proc.cred, "char", dev)
    elif fmt == st.S_IFBLK:
        inode = fs.create_device(perm, proc.cred, "block", dev)
    elif fmt in (0, st.S_IFREG):
        inode = fs.create_file(perm, proc.cred)
    else:
        raise SyscallError(EINVAL, "mknod type %o" % fmt)
    try:
        fs.link(parent, result.name, inode)
    except SyscallError:
        # Same unwind as creat: never leak the just-allocated node.
        fs.maybe_reclaim(inode)
        raise
    return 0


@implements("chmod")
def sys_chmod(kernel, proc, path, mode):
    """chmod(2): set permission bits (owner or superuser)."""
    inode = namei(proc, path, follow=True).require()
    credmod.check_owner(inode, proc.cred)
    inode.mode = (inode.mode & st.S_IFMT) | (mode & 0o7777)
    inode.touch_ctime(kernel.clock.usec())
    return 0


@implements("chown")
def sys_chown(kernel, proc, path, uid, gid):
    """chown(2): set ownership; 4.3BSD restricts this to root."""
    if not proc.cred.is_superuser():
        raise SyscallError(EPERM, "chown is restricted to root")
    inode = namei(proc, path, follow=True).require()
    if uid != -1:
        inode.uid = uid
    if gid != -1:
        inode.gid = gid
    inode.touch_ctime(kernel.clock.usec())
    return 0


@implements("access")
def sys_access(kernel, proc, path, mode):
    """access(2): permission check using the *real* ids."""
    # access() checks with the *real* uid/gid, per 4.3BSD.
    real_cred = proc.cred.copy()
    real_cred.euid = real_cred.uid
    real_cred.egid = real_cred.gid

    class _RealView:
        cwd = proc.cwd
        root_dir = proc.root_dir
        cred = real_cred

    inode = namei(_RealView, path, follow=True).require()
    credmod.check_access(inode, real_cred, mode & 0o7)
    return 0


@implements("stat")
def sys_stat(kernel, proc, path):
    """stat(2): the ``struct stat`` of the resolved object."""
    inode = namei(proc, path, follow=True).require()
    return inode.stat_record()


@implements("lstat")
def sys_lstat(kernel, proc, path):
    """lstat(2): like stat but does not follow a final symlink."""
    inode = namei(proc, path, follow=False).require()
    return inode.stat_record()


@implements("symlink")
def sys_symlink(kernel, proc, target, path):
    """symlink(2): create a symbolic link holding *target*."""
    result = namei(proc, path, follow=False, want_parent=True)
    if result.inode is not None:
        raise SyscallError(EEXIST, path)
    parent = result.parent
    credmod.check_access(parent, proc.cred, credmod.W_OK)
    fs = parent.fs
    inode = fs.create_symlink(target, proc.cred)
    try:
        fs.link(parent, result.name, inode)
    except SyscallError:
        # Same unwind as creat: never leak the just-allocated node.
        fs.maybe_reclaim(inode)
        raise
    return 0


@implements("readlink")
def sys_readlink(kernel, proc, path, count=1024):
    """readlink(2): return (a prefix of) the link target."""
    inode = namei(proc, path, follow=False).require()
    if not inode.is_symlink():
        raise SyscallError(EINVAL, "not a symlink")
    if count < 0:
        raise SyscallError(EINVAL)
    return inode.target[:count]


@implements("truncate")
def sys_truncate(kernel, proc, path, length):
    """truncate(2): set a file's length (needs write access)."""
    inode = namei(proc, path, follow=True).require()
    credmod.check_access(inode, proc.cred, credmod.W_OK)
    if not inode.is_reg():
        raise SyscallError(EINVAL)
    if length < 0:
        raise SyscallError(EINVAL)
    inode.truncate_to(length)
    inode.touch_mtime(kernel.clock.usec())
    return 0


@implements("mkdir")
def sys_mkdir(kernel, proc, path, mode=0o777):
    """mkdir(2): create a directory, wiring . and .. and nlink."""
    result = namei(proc, path, follow=True, want_parent=True)
    if result.inode is not None:
        raise SyscallError(EEXIST, path)
    parent = result.parent
    credmod.check_access(parent, proc.cred, credmod.W_OK)
    parent.fs.mkdir_in(parent, result.name, (mode & 0o7777) & ~proc.umask, proc.cred)
    return 0


@implements("rmdir")
def sys_rmdir(kernel, proc, path):
    """rmdir(2): remove an empty directory, fixing parent nlink."""
    result = namei(proc, path, follow=False)
    inode = result.require()
    if not inode.is_dir():
        raise SyscallError(ENOTDIR, path)
    if result.name in (".", ".."):
        raise SyscallError(EINVAL, "rmdir of . or ..")
    if inode is proc.root_dir or inode.fs.covered is not None and inode.ino == 2:
        raise SyscallError(EINVAL, "rmdir of a root")
    inode.check_empty()
    credmod.check_access(result.parent, proc.cred, credmod.W_OK)
    fs = inode.fs
    # The whole teardown (dots, nlinks, parent entry) is one journaled
    # filesystem operation so a mid-rmdir crash is recoverable.
    fs.rmdir_in(result.parent, result.name, inode)
    # Entry-level invalidation through remove() above already covered
    # "." and ".." (an empty directory can have cached nothing else);
    # the whole-directory purge is the backstop that keeps a future
    # mutator that bypasses the Directory funnel from leaving stale
    # translations under a dead directory.
    cache = fs.namecache
    if cache is not None:
        cache.purge_dir(inode)
    return 0


def _is_ancestor(kernel, candidate, node):
    """True if directory *candidate* is *node* or an ancestor of *node*."""
    seen = set()
    current = node
    while current.ino not in seen:
        if current is candidate:
            return True
        seen.add(current.ino)
        if current.ino == 2 and current.fs.covered is not None:
            current = current.fs.covered
            continue
        parent_ino = current.entries[".."]
        if parent_ino == current.ino:
            return current is candidate
        current = current.fs.inode(parent_ino)
    return False


@implements("rename")
def sys_rename(kernel, proc, path, newpath):
    """rename(2): atomic move/replace with the 4.3BSD edge rules (subtree check, .. rewiring, target replacement)."""
    src = namei(proc, path, follow=False)
    inode = src.require()
    if src.name in (".", ".."):
        raise SyscallError(EINVAL)
    dst = namei(proc, newpath, follow=False, want_parent=True)
    if dst.name in (".", ".."):
        raise SyscallError(EINVAL)
    if dst.parent.fs is not inode.fs:
        raise SyscallError(EXDEV)
    credmod.check_access(src.parent, proc.cred, credmod.W_OK)
    credmod.check_access(dst.parent, proc.cred, credmod.W_OK)
    if inode.is_dir() and _is_ancestor(kernel, inode, dst.parent):
        raise SyscallError(EINVAL, "rename of directory into itself")
    target = dst.inode
    if target is inode:
        return 0
    fs = inode.fs
    if target is not None:
        if target.is_dir():
            if not inode.is_dir():
                raise SyscallError(EISDIR, newpath)
            target.check_empty()
            # Same journaled teardown as rmdir(2).
            fs.rmdir_in(dst.parent, dst.name, target)
        else:
            if inode.is_dir():
                raise SyscallError(ENOTDIR, newpath)
            fs.unlink(dst.parent, dst.name, target)
    # Move the entry (journaled: remove + replace + ".." rewiring).
    fs.rename(src.parent, src.name, dst.parent, dst.name, inode)
    return 0


@implements("utimes")
def sys_utimes(kernel, proc, path, atime_usec, mtime_usec):
    """utimes(2): set timestamps (owner, write access, or root)."""
    inode = namei(proc, path, follow=True).require()
    if not proc.cred.is_superuser() and proc.cred.euid != inode.uid:
        credmod.check_access(inode, proc.cred, credmod.W_OK)
    inode.atime = atime_usec
    inode.mtime = mtime_usec
    inode.touch_ctime(kernel.clock.usec())
    return 0


@implements("sync")
def sys_sync(kernel, proc):
    """sync(2): schedule writes; nothing to do for in-core volumes."""
    return 0
