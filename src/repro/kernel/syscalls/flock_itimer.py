"""flock() advisory locks and the interval timers (4.3BSD additions).

Locks belong to *open-file entries*, as in 4.3BSD: descriptors created
by dup or fork share the lock of their shared entry, and the lock is
released when the entry's last reference closes.
"""

from repro.kernel.errno import EBADF, EINVAL, EWOULDBLOCK, SyscallError
from repro.kernel.syscalls import implements

# flock operations
LOCK_SH = 1
LOCK_EX = 2
LOCK_NB = 4
LOCK_UN = 8

# interval timers
ITIMER_REAL = 0


class LockState:
    """Advisory lock state attached to an inode."""

    __slots__ = ("shared", "exclusive")

    def __init__(self):
        self.shared = set()     # open-file entries holding a shared lock
        self.exclusive = None   # the open-file entry holding it exclusively

    def holder_count(self):
        """How many open-file entries hold a lock."""
        return len(self.shared) + (1 if self.exclusive else 0)


def _lock_state(inode):
    state = getattr(inode, "lock_state", None)
    if state is None:
        state = LockState()
        inode.lock_state = state
    return state


def release_lock(inode, ofile, kernel):
    """Drop any lock *ofile* holds on *inode* (also used at last close)."""
    state = getattr(inode, "lock_state", None)
    if state is None:
        return
    changed = False
    if state.exclusive is ofile:
        state.exclusive = None
        changed = True
    if ofile in state.shared:
        state.shared.discard(ofile)
        changed = True
    if changed:
        kernel.wakeup()


@implements("flock")
def sys_flock(kernel, proc, fd, operation):
    """flock(2): shared/exclusive advisory locks with LOCK_NB."""
    ofile = proc.fdtable.get(fd)
    inode = getattr(ofile, "inode", None)
    if inode is None:
        raise SyscallError(EBADF, "flock needs a file")
    nonblocking = bool(operation & LOCK_NB)
    want = operation & ~LOCK_NB
    state = _lock_state(inode)

    if want == LOCK_UN:
        release_lock(inode, ofile, kernel)
        return 0
    if want not in (LOCK_SH, LOCK_EX):
        raise SyscallError(EINVAL, "flock operation %r" % (operation,))

    def acquirable():
        if want == LOCK_SH:
            return state.exclusive is None or state.exclusive is ofile
        others_shared = state.shared - {ofile}
        exclusive_other = state.exclusive is not None and state.exclusive is not ofile
        return not others_shared and not exclusive_other

    while not acquirable():
        if nonblocking:
            raise SyscallError(EWOULDBLOCK)
        kernel.sleep_until(acquirable, proc, "flock")

    # Converting between lock types drops the old one atomically.
    release_lock(inode, ofile, kernel)
    if want == LOCK_SH:
        state.shared.add(ofile)
    else:
        state.exclusive = ofile
    return 0


@implements("setitimer")
def sys_setitimer(kernel, proc, which, interval_usec, value_usec):
    """Arm (or disarm) the real-time interval timer.

    ``value_usec`` is the time to the first SIGALRM; ``interval_usec``
    reloads the timer after each expiry (0 = one shot).
    """
    if which != ITIMER_REAL:
        raise SyscallError(EINVAL, "only ITIMER_REAL is provided")
    if interval_usec < 0 or value_usec < 0:
        raise SyscallError(EINVAL)
    now = kernel.clock.usec()
    if kernel.recorder is not None:
        kernel.recorder.note("K", proc.pid, str(now))
    old_value = max(0, proc.alarm_deadline - now) if proc.alarm_deadline else 0
    old_interval = proc.alarm_interval
    proc.alarm_deadline = now + value_usec if value_usec else 0
    proc.alarm_interval = interval_usec if value_usec else 0
    return (old_interval, old_value)


@implements("getitimer")
def sys_getitimer(kernel, proc, which):
    """getitimer(2): the timer's (interval, value) in usec."""
    if which != ITIMER_REAL:
        raise SyscallError(EINVAL, "only ITIMER_REAL is provided")
    now = kernel.clock.usec()
    if kernel.recorder is not None:
        kernel.recorder.note("K", proc.pid, str(now))
    value = max(0, proc.alarm_deadline - now) if proc.alarm_deadline else 0
    return (proc.alarm_interval, value)
