"""System call implementations, dispatched by number.

Each implementation is a function ``impl(kernel, proc, *args)`` registered
against a name from :mod:`repro.kernel.sysent`.  Implementations run with
the kernel lock held (the classic single-threaded kernel) and either
return the call's value — a tuple models the two return registers ``rv[2]``
for calls like ``pipe`` and ``fork`` — or raise
:class:`~repro.kernel.errno.SyscallError`.
"""

from repro.kernel.sysent import BY_NAME

#: number -> implementation, populated by the @implements decorator
DISPATCH = {}


def implements(name):
    """Register a function as the implementation of system call *name*."""
    entry = BY_NAME[name]

    def register(func):
        assert entry.number not in DISPATCH, "duplicate impl for %s" % name
        DISPATCH[entry.number] = func
        func.syscall_name = name
        func.syscall_number = entry.number
        return func

    return register


def _load_all():
    # Import for registration side effects; order is unimportant.
    from repro.kernel.syscalls import (  # noqa: F401
        file_io,
        flock_itimer,
        mach,
        obscalls,
        pathcalls,
        process,
        sigcalls,
        timecalls,
    )


_load_all()
