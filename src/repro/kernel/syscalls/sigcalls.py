"""Signal-related system calls (4.3BSD ``sigvec`` family)."""

from repro.kernel import signals as sig
from repro.kernel.errno import EINTR, EINVAL, EPERM, ESRCH, SyscallError
from repro.kernel.proc import ZOMBIE
from repro.kernel.syscalls import implements


def _may_signal(sender, target):
    cred = sender.cred
    return (
        cred.is_superuser()
        or cred.uid == target.cred.uid
        or cred.euid == target.cred.uid
    )


def _deliver_to(kernel, sender, target, signum):
    if not _may_signal(sender, target):
        raise SyscallError(EPERM)
    if signum == 0:
        return
    target.post(signum)
    kernel.wakeup()


@implements("kill")
def sys_kill(kernel, proc, pid, signum):
    """kill(2): post a signal to a process, group, or broadcast."""
    if signum:
        sig.check_signal(signum)
    if pid > 0:
        target = kernel.find_process_locked(pid)
        if target.state == ZOMBIE:
            raise SyscallError(ESRCH)
        _deliver_to(kernel, proc, target, signum)
        return 0
    if pid == 0:
        return sys_killpg(kernel, proc, proc.pgrp, signum)
    if pid == -1:
        # Broadcast to every process we may signal (except init and self's
        # kernel bookkeeping); 4.3BSD semantics minus the init carve-out.
        hit = False
        for target in kernel.live_processes_locked():
            if target is proc or not _may_signal(proc, target):
                continue
            _deliver_to(kernel, proc, target, signum)
            hit = True
        if not hit:
            raise SyscallError(ESRCH)
        return 0
    return sys_killpg(kernel, proc, -pid, signum)


@implements("killpg")
def sys_killpg(kernel, proc, pgrp, signum):
    """killpg(2): post a signal to every member of a group."""
    if signum:
        sig.check_signal(signum)
    if pgrp <= 0:
        raise SyscallError(EINVAL)
    members = [
        p for p in kernel.live_processes_locked() if p.pgrp == pgrp
    ]
    if not members:
        raise SyscallError(ESRCH)
    for target in members:
        _deliver_to(kernel, proc, target, signum)
    return 0


@implements("sigvec")
def sys_sigvec(kernel, proc, signum, handler, mask=0):
    """Install a handler; returns the previous one.

    *handler* is ``SIG_DFL``, ``SIG_IGN``, or a callable invoked as
    ``handler(signum)`` in the process's context at delivery.
    """
    sig.check_signal(signum)
    if signum in sig.UNCATCHABLE and handler != sig.SIG_DFL:
        raise SyscallError(EINVAL, "cannot catch %s" % sig.signal_name(signum))
    if handler not in (sig.SIG_DFL, sig.SIG_IGN) and not callable(handler):
        raise SyscallError(EINVAL, "handler must be callable or SIG_DFL/SIG_IGN")
    old = proc.dispositions[signum]
    proc.dispositions[signum] = sig.Sigaction(handler, mask)
    if handler == sig.SIG_IGN:
        proc.pending &= ~sig.sigmask(signum)
    return old.handler


@implements("sigblock")
def sys_sigblock(kernel, proc, mask):
    """sigblock(2): OR *mask* into the blocked set (KILL/STOP immune)."""
    old = proc.sigmask
    proc.sigmask |= mask & ~_uncatchable_mask()
    return old


@implements("sigsetmask")
def sys_sigsetmask(kernel, proc, mask):
    """sigsetmask(2): replace the blocked set; wake sleepers to recheck."""
    old = proc.sigmask
    proc.sigmask = mask & ~_uncatchable_mask()
    kernel.wakeup()
    return old


def _uncatchable_mask():
    bits = 0
    for signum in sig.UNCATCHABLE:
        bits |= sig.sigmask(signum)
    return bits


@implements("sigpause")
def sys_sigpause(kernel, proc, mask):
    """Atomically set the blocked mask and sleep until a signal arrives.

    Always "fails" with ``EINTR`` after delivery, as the real call does.
    """
    old = proc.sigmask
    proc.sigmask = mask & ~_uncatchable_mask()
    try:
        kernel.sleep_until(lambda: False, proc, "pause")
        raise AssertionError("sigpause slept forever")
    finally:
        proc.sigmask = old


@implements("alarm")
def sys_alarm(kernel, proc, seconds):
    """alarm(2): arm a one-shot SIGALRM; returns seconds remaining."""
    now = kernel.clock.usec()
    remaining = 0
    if proc.alarm_deadline:
        remaining = max(0, (proc.alarm_deadline - now + 999_999) // 1_000_000)
    proc.alarm_deadline = now + seconds * 1_000_000 if seconds else 0
    proc.alarm_interval = 0  # alarm() arms a one-shot timer
    return remaining
