"""Pathname resolution (the 4.3BSD ``namei`` routine).

Resolution walks one component at a time from the caller's root or
current directory, enforcing search permission, expanding symbolic links
with a loop limit, and crossing mount points in both directions.  The
toolkit's ``pathname_set.getpn()`` sits directly above this: every
pathname an agent sees was (or will be) resolved here.
"""

import functools

from repro.kernel import cred as credmod
from repro.kernel import stat as st
from repro.kernel.errno import (
    EINVAL,
    ELOOP,
    ENAMETOOLONG,
    ENOENT,
    ENOTDIR,
    SyscallError,
)
from repro.kernel.inode import MAXNAMLEN, Directory
from repro.kernel.ufs import ROOT_INO

#: 4.3BSD limits
MAXPATHLEN = 1024
MAXSYMLINKS = 8


class NameiResult:
    """Outcome of a lookup: the parent directory, the final component name,
    and the resolved inode (``None`` when the final component is absent,
    which is the useful case for create-style operations)."""

    __slots__ = ("parent", "name", "inode")

    def __init__(self, parent, name, inode):
        self.parent = parent
        self.name = name
        self.inode = inode

    def require(self):
        """Return the inode, raising ``ENOENT`` if the path was dangling."""
        if self.inode is None:
            raise SyscallError(ENOENT, self.name)
        return self.inode


def _split(path):
    """Split a path into components, validating length limits.

    Returns ``(absolute, components, trailing_slash)`` with the
    components in a tuple.  Splitting is pure (no filesystem state), so
    results are memoised across calls — workloads stat and open the
    same handful of paths over and over.  Raising calls (overlong
    paths) are never cached by ``lru_cache``, so errors repeat exactly
    as uncached; the type check stays outside the memo because an
    unhashable argument must produce EINVAL, not a ``TypeError`` from
    the cache machinery.
    """
    if not isinstance(path, str):
        raise SyscallError(EINVAL, "pathname must be a string")
    return _split_str(path)


@functools.lru_cache(maxsize=8192)
def _split_str(path):
    if path == "":
        raise SyscallError(ENOENT, "empty pathname")
    if len(path) > MAXPATHLEN:
        raise SyscallError(ENAMETOOLONG, path[:32] + "...")
    absolute = path.startswith("/")
    trailing = path.endswith("/") and path != "/"
    components = tuple(c for c in path.split("/") if c)
    for component in components:
        if len(component) > MAXNAMLEN:
            raise SyscallError(ENAMETOOLONG, component[:32] + "...")
    return absolute, components, trailing


def _cross_down(inode):
    """Descend through any filesystems mounted on a directory.

    Every inode carries ``mounted`` (a class attribute ``None`` on
    non-directories), so the crossing test is one attribute load — this
    loop used to re-import ``Directory`` and run ``isinstance`` on every
    component of every lookup.
    """
    while inode.mounted is not None:
        inode = inode.mounted.root
    return inode


def _dir_type():
    """The ``Directory`` class (kept for callers of the old lazy hook)."""
    return Directory


def _dotdot_start(current, root_dir):
    """Resolve the starting directory for a ``..`` step, handling chroot
    confinement and upward mount crossings."""
    while True:
        if current is root_dir:
            return current
        if current.ino == ROOT_INO and current.fs.covered is not None:
            current = current.fs.covered
            continue
        return current


def namei(ctx, path, follow=True, want_parent=False):
    """Resolve *path* relative to *ctx* (an object with ``root_dir``,
    ``cwd``, and ``cred`` attributes).

    With ``want_parent`` the final component is not required to exist;
    the result carries ``inode=None`` in that case so callers implementing
    creat/mkdir/rename can act on the parent.  Without it a dangling final
    component raises ``ENOENT``.

    When the walked volume carries a name cache (``fs.namecache``, see
    :mod:`repro.kernel.namecache`), each non-``..`` component is looked
    up there first; a hit yields the already-mount-crossed child and its
    symlink flag.  Search permission is checked per component either
    way, and ``..`` always takes the slow path (its chroot and upward
    mount-crossing logic depends on the calling context, not just the
    directory).
    """
    kernel = getattr(ctx, "kernel", None)
    if kernel is not None:
        sites = getattr(kernel, "faultsites", None)
        if sites is not None:
            # Before any walking: no permission checks done, no cache
            # entries touched, no mount crossed.
            sites.check("namei.lookup", kernel=kernel)
    absolute, components, trailing = _split(path)
    root_dir = ctx.root_dir
    current = root_dir if absolute else ctx.cwd
    if current.mounted is not None:
        current = _cross_down(current)
    if not current.is_dir():
        raise SyscallError(ENOTDIR, "cwd is not a directory")

    if not components:
        # Path was "/" (or all slashes): the root itself.
        return NameiResult(current, ".", current)

    cred = ctx.cred
    check_access = credmod.check_access
    X_OK = credmod.X_OK
    link_budget = MAXSYMLINKS
    index = 0
    count = len(components)
    parent = current
    while index < count:
        name = components[index]
        last = index == count - 1
        if not current.is_dir():
            raise SyscallError(ENOTDIR, name)
        check_access(current, cred, X_OK)

        if name == "..":
            current = _dotdot_start(current, root_dir)
            if current is root_dir:
                # ".." at the process's root stays put (chroot confinement).
                child_ino = current.ino
            else:
                child_ino = current.lookup(name)
            child = current.fs.inode(child_ino)
            is_link = False
            if child.mounted is not None:
                child = _cross_down(child)
        else:
            # The name cache probe, inlined (see NameCache.get): one
            # dict.get per component on the hit path, no method call.
            cache = current.fs.namecache
            hit = None
            if cache is not None:
                key = (current, name)
                hit = cache._entries.get(key)
                if hit is not None:
                    cache.hits += 1
                    if cache.lru_live:
                        cache._entries.move_to_end(key)
                else:
                    cache.misses += 1
            if hit is not None:
                child, is_link = hit
            else:
                try:
                    child_ino = current.lookup(name)
                except SyscallError:
                    if last and want_parent:
                        return NameiResult(current, name, None)
                    raise SyscallError(ENOENT, path)
                child = current.fs.inode(child_ino)
                is_link = child.is_symlink()
                if not is_link and child.mounted is not None:
                    child = _cross_down(child)
                if cache is not None:
                    cache.put(current, name, child, is_link)

        if is_link and (follow or not last):
            if link_budget == 0:
                raise SyscallError(ELOOP, path)
            link_budget -= 1
            t_abs, t_components, t_trailing = _split(child.target or "/")
            components = t_components + components[index + 1 :]
            count = len(components)
            index = 0
            trailing = trailing or (t_trailing and not components)
            if t_abs:
                current = _cross_down(root_dir)
            # else: continue from `current`
            parent = current
            continue

        if last:
            if trailing and not child.is_dir():
                raise SyscallError(ENOTDIR, name)
            return NameiResult(current, name, child)
        parent = current
        current = child
        index += 1

    # Symlink expansion consumed every component: the link resolved to
    # the directory we are standing in.
    return NameiResult(parent, ".", current)


def lookup(ctx, path, follow=True):
    """Resolve *path* to an inode, raising ``ENOENT`` if absent."""
    return namei(ctx, path, follow=follow).require()
