"""Pathname resolution (the 4.3BSD ``namei`` routine).

Resolution walks one component at a time from the caller's root or
current directory, enforcing search permission, expanding symbolic links
with a loop limit, and crossing mount points in both directions.  The
toolkit's ``pathname_set.getpn()`` sits directly above this: every
pathname an agent sees was (or will be) resolved here.
"""

from repro.kernel import cred as credmod
from repro.kernel import stat as st
from repro.kernel.errno import (
    EINVAL,
    ELOOP,
    ENAMETOOLONG,
    ENOENT,
    ENOTDIR,
    SyscallError,
)
from repro.kernel.inode import MAXNAMLEN
from repro.kernel.ufs import ROOT_INO

#: 4.3BSD limits
MAXPATHLEN = 1024
MAXSYMLINKS = 8


class NameiResult:
    """Outcome of a lookup: the parent directory, the final component name,
    and the resolved inode (``None`` when the final component is absent,
    which is the useful case for create-style operations)."""

    __slots__ = ("parent", "name", "inode")

    def __init__(self, parent, name, inode):
        self.parent = parent
        self.name = name
        self.inode = inode

    def require(self):
        """Return the inode, raising ``ENOENT`` if the path was dangling."""
        if self.inode is None:
            raise SyscallError(ENOENT, self.name)
        return self.inode


def _split(path):
    """Split a path into components, validating length limits.

    Returns ``(absolute, components, trailing_slash)``.
    """
    if not isinstance(path, str):
        raise SyscallError(EINVAL, "pathname must be a string")
    if path == "":
        raise SyscallError(ENOENT, "empty pathname")
    if len(path) > MAXPATHLEN:
        raise SyscallError(ENAMETOOLONG, path[:32] + "...")
    absolute = path.startswith("/")
    trailing = path.endswith("/") and path != "/"
    components = [c for c in path.split("/") if c]
    for component in components:
        if len(component) > MAXNAMLEN:
            raise SyscallError(ENAMETOOLONG, component[:32] + "...")
    return absolute, components, trailing


def _cross_down(inode):
    """Descend through any filesystems mounted on a directory."""
    while isinstance(inode, _dir_type()) and inode.mounted is not None:
        inode = inode.mounted.root
    return inode


def _dir_type():
    from repro.kernel.inode import Directory

    return Directory


def _dotdot_start(current, root_dir):
    """Resolve the starting directory for a ``..`` step, handling chroot
    confinement and upward mount crossings."""
    while True:
        if current is root_dir:
            return current
        if current.ino == ROOT_INO and current.fs.covered is not None:
            current = current.fs.covered
            continue
        return current


def namei(ctx, path, follow=True, want_parent=False):
    """Resolve *path* relative to *ctx* (an object with ``root_dir``,
    ``cwd``, and ``cred`` attributes).

    With ``want_parent`` the final component is not required to exist;
    the result carries ``inode=None`` in that case so callers implementing
    creat/mkdir/rename can act on the parent.  Without it a dangling final
    component raises ``ENOENT``.
    """
    absolute, components, trailing = _split(path)
    current = ctx.root_dir if absolute else ctx.cwd
    current = _cross_down(current)
    if not current.is_dir():
        raise SyscallError(ENOTDIR, "cwd is not a directory")

    if not components:
        # Path was "/" (or all slashes): the root itself.
        return NameiResult(current, ".", current)

    link_budget = MAXSYMLINKS
    index = 0
    parent = current
    while index < len(components):
        name = components[index]
        last = index == len(components) - 1
        if not current.is_dir():
            raise SyscallError(ENOTDIR, name)
        credmod.check_access(current, ctx.cred, credmod.X_OK)

        if name == "..":
            current = _dotdot_start(current, ctx.root_dir)
            if current is ctx.root_dir:
                # ".." at the process's root stays put (chroot confinement).
                child_ino = current.ino
            else:
                child_ino = current.lookup(name)
        else:
            try:
                child_ino = current.lookup(name)
            except SyscallError:
                if last and want_parent:
                    return NameiResult(current, name, None)
                raise SyscallError(ENOENT, path)
        child = current.fs.inode(child_ino)

        if child.is_symlink() and (follow or not last):
            if link_budget == 0:
                raise SyscallError(ELOOP, path)
            link_budget -= 1
            t_abs, t_components, t_trailing = _split(child.target or "/")
            components = t_components + components[index + 1 :]
            index = 0
            trailing = trailing or (t_trailing and not components)
            if t_abs:
                current = _cross_down(ctx.root_dir)
            # else: continue from `current`
            parent = current
            continue

        child = _cross_down(child)
        if last:
            if trailing and not child.is_dir():
                raise SyscallError(ENOTDIR, name)
            return NameiResult(current, name, child)
        parent = current
        current = child
        index += 1

    # Symlink expansion consumed every component: the link resolved to
    # the directory we are standing in.
    return NameiResult(parent, ".", current)


def lookup(ctx, path, follow=True):
    """Resolve *path* to an inode, raising ``ENOENT`` if absent."""
    return namei(ctx, path, follow=follow).require()
