"""``make`` — dependency-driven rebuilds, 4.3BSD flavour.

Supports macros (``NAME = value`` and ``$(NAME)``/``${NAME}``), rule
lines (``target: dep dep``), tab-indented recipe lines run via
``/bin/sh -c``, the automatic variables ``$@`` and ``$<``, and
timestamp-based up-to-date checks.  ``make [target ...]`` defaults to
the first target in the Makefile.
"""

from repro.kernel.errno import ENOENT, SyscallError
from repro.programs.libc import exit_code
from repro.programs.registry import program


class Rule:
    """One Makefile rule: target, prerequisites, recipe lines."""
    def __init__(self, target):
        self.target = target
        self.deps = []
        self.recipe = []


def _expand(text, macros):
    out = ""
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "$" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt in "({":
                closer = ")" if nxt == "(" else "}"
                end = text.find(closer, i + 2)
                if end > 0:
                    name = text[i + 2 : end]
                    out += macros.get(name, "")
                    i = end + 1
                    continue
            if nxt == "$":
                out += "$"
                i += 2
                continue
            if nxt in macros:
                # Single-character macros: the automatic variables $@, $<.
                out += macros[nxt]
                i += 2
                continue
        out += ch
        i += 1
    return out


def _parse_makefile(text):
    macros = {}
    rules = []
    current = None
    for line in text.splitlines():
        if line.startswith("\t"):
            if current is None:
                continue
            current.recipe.append(line[1:])
            continue
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            current = None
            continue
        if "=" in stripped and (
            ":" not in stripped or stripped.index("=") < stripped.index(":")
        ):
            name, value = stripped.split("=", 1)
            macros[name.strip()] = _expand(value.strip(), macros)
            current = None
            continue
        if ":" in stripped:
            target_part, dep_part = stripped.split(":", 1)
            target = _expand(target_part.strip(), macros)
            current = Rule(target)
            current.deps = _expand(dep_part, macros).split()
            rules.append(current)
            continue
        current = None
    return macros, rules


class Make:
    """The dependency engine: timestamps decide what to rebuild."""
    def __init__(self, sys, macros, rules):
        self.sys = sys
        self.macros = macros
        self.rules = {rule.target: rule for rule in rules}
        self.order = [rule.target for rule in rules]
        self.built = set()
        #: recipe lines actually executed (drives "up to date" reporting)
        self.commands_run = 0

    def _mtime(self, path):
        try:
            return self.sys.stat(path).st_mtime
        except SyscallError as err:
            if err.errno == ENOENT:
                return None
            raise

    def update(self, target):
        """Bring *target* up to date; returns True if anything ran."""
        if target in self.built:
            return False
        self.built.add(target)
        rule = self.rules.get(target)
        if rule is None:
            if self._mtime(target) is None:
                self.sys.print_err(
                    "make: don't know how to make %s\n" % target
                )
                raise SystemExit(2)
            return False

        ran_dep = False
        for dep in rule.deps:
            ran_dep = self.update(dep) or ran_dep

        target_mtime = self._mtime(target)
        needs_build = target_mtime is None or ran_dep
        if not needs_build:
            for dep in rule.deps:
                dep_mtime = self._mtime(dep)
                if dep_mtime is not None and dep_mtime > target_mtime:
                    needs_build = True
                    break
        if not needs_build:
            return False

        local = dict(self.macros)
        local["@"] = rule.target
        local["<"] = rule.deps[0] if rule.deps else ""
        for recipe_line in rule.recipe:
            command = _expand(recipe_line, local)
            silent = command.startswith("@")
            if silent:
                command = command[1:]
            else:
                self.sys.print_out(command + "\n")
            self.commands_run += 1
            status = exit_code(
                self.sys.spawn_wait("/bin/sh", ["sh", "-c", command], {})
            )
            if status:
                self.sys.print_err(
                    "*** Error code %d (making %s)\n" % (status, rule.target)
                )
                raise SystemExit(status)
        return True


@program("make", install="/bin/make")
def make_main(sys, argv, envp):
    """make(1): bring the requested targets up to date."""
    args = argv[1:]
    makefile = "Makefile"
    targets = []
    i = 0
    while i < len(args):
        if args[i] == "-f":
            i += 1
            makefile = args[i]
        else:
            targets.append(args[i])
        i += 1
    try:
        text = sys.read_whole(makefile).decode(errors="replace")
    except SyscallError as err:
        sys.print_err("make: %s: %s\n" % (makefile, err))
        return 2
    macros, rules = _parse_makefile(text)
    if not rules:
        sys.print_err("make: no targets\n")
        return 2
    runner = Make(sys, macros, rules)
    if not targets:
        targets = [rules[0].target]
    try:
        for target in targets:
            runner.update(target)
        if runner.commands_run == 0:
            sys.print_out("make: all targets up to date\n")
        return 0
    except SystemExit as stop:
        return stop.code or 0
