"""Program registry and world installation.

``@program("name", install="/bin/name")`` registers a function
``main(sys, argv, envp) -> int`` as a runnable binary.  The kernel-level
factory it wraps builds the :class:`~repro.programs.libc.Sys` for the
process and converts uncaught :class:`SyscallError` into a 4.3BSD-style
"program died" exit, the way crt0 + libc would.
"""

from repro.kernel.errno import SyscallError, errno_name

#: name -> kernel-level factory
PROGRAMS = {}
#: name -> default install path
INSTALL_PATHS = {}


def program(name, install=None):
    """Register ``main(sys, argv, envp)`` as program *name*."""

    def register(main):
        def factory(ctx, argv, envp):
            from repro.programs.libc import Sys

            sys = Sys(ctx)
            try:
                return main(sys, argv, envp)
            except SyscallError as err:
                try:
                    sys.print_err(
                        "%s: uncaught %s: %s\n"
                        % (argv[0] if argv else name, errno_name(err.errno), err)
                    )
                except SyscallError:
                    pass  # even stderr may be denied (sandboxed clients)
                return 126

        factory.__name__ = "program_" + name
        factory.main = main
        PROGRAMS[name] = factory
        if install is not None:
            INSTALL_PATHS[name] = install
        return main

    return register


def install_world(kernel):
    """Register every program with *kernel* and install the binaries."""
    # Import for registration side effects.
    from repro.programs import (  # noqa: F401
        cc,
        coreutils,
        ktrace_prog,
        make_prog,
        procutils,
        scribe,
        sh,
        tracedump,
    )
    from repro.toolkit import loader  # noqa: F401  (the agent loader program)

    for name, factory in PROGRAMS.items():
        kernel.register_program(name, factory)
    for name, path in INSTALL_PATHS.items():
        kernel.install_binary(path, name)
    return kernel
