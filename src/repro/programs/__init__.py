"""Simulated userland: programs that run as unmodified "binaries".

Programs are written against :class:`repro.programs.libc.Sys`, a thin
libc over the trap instruction.  They are registered by name with
:func:`program` and installed as executable files in the simulated
filesystem by :func:`install_world`, after which the kernel (or an
interposition agent's reimplemented ``execve``) can load them by path —
the same program bits run identically with and without agents interposed.
"""

from repro.programs.registry import PROGRAMS, install_world, program

__all__ = ["PROGRAMS", "install_world", "program"]
