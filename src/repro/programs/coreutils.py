"""Core utilities for the simulated 4.3BSD world."""

from repro.kernel import stat as st
from repro.kernel.errno import SyscallError
from repro.programs.libc import (
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
)
from repro.programs.registry import program


@program("true", install="/bin/true")
def true_main(sys, argv, envp):
    """true(1): succeed."""
    return 0


@program("false", install="/bin/false")
def false_main(sys, argv, envp):
    """false(1): fail."""
    return 1


@program("echo", install="/bin/echo")
def echo_main(sys, argv, envp):
    """echo(1): print arguments (-n suppresses the newline)."""
    args = argv[1:]
    newline = True
    if args and args[0] == "-n":
        newline = False
        args = args[1:]
    sys.print_out(" ".join(args) + ("\n" if newline else ""))
    return 0


@program("cat", install="/bin/cat")
def cat_main(sys, argv, envp):
    """cat(1): concatenate files (or stdin) to stdout."""
    paths = argv[1:] or ["-"]
    status = 0
    for path in paths:
        if path == "-":
            fd = 0
            close_after = False
        else:
            try:
                fd = sys.open(path, O_RDONLY)
            except SyscallError as err:
                sys.print_err("cat: %s: %s\n" % (path, err))
                status = 1
                continue
            close_after = True
        while True:
            chunk = sys.read(fd, 4096)
            if not chunk:
                break
            sys.write(1, chunk)
        if close_after:
            sys.close(fd)
    return status


@program("cp", install="/bin/cp")
def cp_main(sys, argv, envp):
    """cp(1): copy one file, preserving its mode."""
    if len(argv) != 3:
        sys.print_err("usage: cp from to\n")
        return 2
    src, dst = argv[1], argv[2]
    try:
        src_stat = sys.stat(src)
        if st.S_ISDIR(sys.stat(dst).st_mode if sys.exists(dst) else 0):
            dst = dst.rstrip("/") + "/" + src.rsplit("/", 1)[-1]
    except SyscallError as err:
        sys.print_err("cp: %s: %s\n" % (src, err))
        return 1
    in_fd = sys.open(src, O_RDONLY)
    out_fd = sys.open(dst, O_WRONLY | O_CREAT | O_TRUNC, src_stat.st_mode & 0o777)
    while True:
        chunk = sys.read(in_fd, 8192)
        if not chunk:
            break
        sys.write(out_fd, chunk)
    sys.close(in_fd)
    sys.close(out_fd)
    return 0


@program("mv", install="/bin/mv")
def mv_main(sys, argv, envp):
    """mv(1): rename a file."""
    if len(argv) != 3:
        sys.print_err("usage: mv from to\n")
        return 2
    try:
        sys.rename(argv[1], argv[2])
    except SyscallError as err:
        sys.print_err("mv: %s\n" % err)
        return 1
    return 0


@program("rm", install="/bin/rm")
def rm_main(sys, argv, envp):
    """rm(1): remove files (-f ignores missing ones)."""
    args = argv[1:]
    force = False
    if args and args[0] == "-f":
        force = True
        args = args[1:]
    status = 0
    for path in args:
        try:
            sys.unlink(path)
        except SyscallError as err:
            if not force:
                sys.print_err("rm: %s: %s\n" % (path, err))
                status = 1
    return status


@program("ln", install="/bin/ln")
def ln_main(sys, argv, envp):
    """ln(1): hard or (-s) symbolic links."""
    args = argv[1:]
    symbolic = False
    if args and args[0] == "-s":
        symbolic = True
        args = args[1:]
    if len(args) != 2:
        sys.print_err("usage: ln [-s] from to\n")
        return 2
    try:
        if symbolic:
            sys.symlink(args[0], args[1])
        else:
            sys.link(args[0], args[1])
    except SyscallError as err:
        sys.print_err("ln: %s\n" % err)
        return 1
    return 0


@program("mkdir", install="/bin/mkdir")
def mkdir_main(sys, argv, envp):
    """mkdir(1): create directories."""
    status = 0
    for path in argv[1:]:
        try:
            sys.mkdir(path, 0o777)
        except SyscallError as err:
            sys.print_err("mkdir: %s: %s\n" % (path, err))
            status = 1
    return status


@program("rmdir", install="/bin/rmdir")
def rmdir_main(sys, argv, envp):
    """rmdir(1): remove empty directories."""
    status = 0
    for path in argv[1:]:
        try:
            sys.rmdir(path)
        except SyscallError as err:
            sys.print_err("rmdir: %s: %s\n" % (path, err))
            status = 1
    return status


@program("touch", install="/bin/touch")
def touch_main(sys, argv, envp):
    """touch(1): create files or update their timestamps."""
    now = sys.gettimeofday().to_usec()
    status = 0
    for path in argv[1:]:
        try:
            if sys.exists(path):
                sys.utimes(path, now, now)
            else:
                sys.close(sys.open(path, O_WRONLY | O_CREAT, 0o666))
        except SyscallError as err:
            sys.print_err("touch: %s: %s\n" % (path, err))
            status = 1
    return status


def _format_mode(mode):
    kind = {
        st.S_IFDIR: "d",
        st.S_IFCHR: "c",
        st.S_IFBLK: "b",
        st.S_IFLNK: "l",
        st.S_IFIFO: "p",
        st.S_IFSOCK: "s",
    }.get(mode & st.S_IFMT, "-")
    bits = ""
    for shift in (6, 3, 0):
        perm = (mode >> shift) & 7
        bits += "r" if perm & 4 else "-"
        bits += "w" if perm & 2 else "-"
        bits += "x" if perm & 1 else "-"
    return kind + bits


@program("ls", install="/bin/ls")
def ls_main(sys, argv, envp):
    """ls(1): list names (-l long format, -a dot entries)."""
    args = argv[1:]
    long_format = False
    show_all = False
    while args and args[0].startswith("-"):
        flag = args.pop(0)
        if "l" in flag:
            long_format = True
        if "a" in flag:
            show_all = True
    paths = args or ["."]
    status = 0
    for path in paths:
        try:
            record = sys.stat(path)
        except SyscallError as err:
            sys.print_err("ls: %s: %s\n" % (path, err))
            status = 1
            continue
        if st.S_ISDIR(record.st_mode):
            names = sorted(sys.listdir(path))
            if show_all:
                names = [".", ".."] + names
        else:
            names = [path]
        for name in names:
            if long_format:
                full = name if not st.S_ISDIR(record.st_mode) else (
                    path.rstrip("/") + "/" + name if name not in (".", "..") else name
                )
                try:
                    info = sys.lstat(full) if full != path else record
                except SyscallError:
                    continue
                sys.print_out(
                    "%s %2d %4d %4d %8d %s\n"
                    % (
                        _format_mode(info.st_mode),
                        info.st_nlink,
                        info.st_uid,
                        info.st_gid,
                        info.st_size,
                        name,
                    )
                )
            else:
                sys.print_out(name + "\n")
    return status


@program("pwd", install="/bin/pwd")
def pwd_main(sys, argv, envp):
    """pwd(1): print the working directory (classic getwd walk)."""
    # Walk ".." upwards matching inode numbers, the classic getwd().
    parts = []
    here = "."
    while True:
        cur = sys.stat(here)
        parent = sys.stat(here + "/..")
        if (cur.st_ino, cur.st_dev) == (parent.st_ino, parent.st_dev):
            break
        for name in [".", ".."] + sys.listdir(here + "/.."):
            if name in (".", ".."):
                continue
            try:
                candidate = sys.lstat(here + "/../" + name)
            except SyscallError:
                continue
            if (candidate.st_ino, candidate.st_dev) == (cur.st_ino, cur.st_dev):
                parts.append(name)
                break
        here += "/.."
    sys.print_out("/" + "/".join(reversed(parts)) + "\n")
    return 0


@program("head", install="/bin/head")
def head_main(sys, argv, envp):
    """head(1): the first -N lines of a file or stdin."""
    args = argv[1:]
    count = 10
    if args and args[0].startswith("-"):
        count = int(args.pop(0)[1:])
    data = sys.read_whole(args[0]) if args else b""
    if not args:
        while True:
            chunk = sys.read(0, 4096)
            if not chunk:
                break
            data += chunk
    lines = data.decode(errors="replace").splitlines(True)[:count]
    sys.print_out("".join(lines))
    return 0


@program("wc", install="/bin/wc")
def wc_main(sys, argv, envp):
    """wc(1): line, word, and byte counts."""
    paths = argv[1:]
    total = [0, 0, 0]

    def count(data, label):
        text = data.decode(errors="replace")
        lines = text.count("\n")
        words = len(text.split())
        chars = len(data)
        total[0] += lines
        total[1] += words
        total[2] += chars
        sys.print_out("%8d%8d%8d %s\n" % (lines, words, chars, label))

    if paths:
        for path in paths:
            try:
                count(sys.read_whole(path), path)
            except SyscallError as err:
                sys.print_err("wc: %s: %s\n" % (path, err))
                return 1
        if len(paths) > 1:
            sys.print_out("%8d%8d%8d total\n" % tuple(total))
    else:
        data = b""
        while True:
            chunk = sys.read(0, 4096)
            if not chunk:
                break
            data += chunk
        count(data, "")
    return 0


@program("grep", install="/bin/grep")
def grep_main(sys, argv, envp):
    """grep(1): print lines containing a fixed string."""
    args = argv[1:]
    if not args:
        sys.print_err("usage: grep pattern [file ...]\n")
        return 2
    pattern = args[0]
    paths = args[1:]
    found = False

    def scan(data, label, show_label):
        nonlocal found
        for line in data.decode(errors="replace").splitlines():
            if pattern in line:
                found = True
                prefix = label + ":" if show_label else ""
                sys.print_out(prefix + line + "\n")

    if paths:
        for path in paths:
            try:
                scan(sys.read_whole(path), path, len(paths) > 1)
            except SyscallError as err:
                sys.print_err("grep: %s: %s\n" % (path, err))
                return 2
    else:
        data = b""
        while True:
            chunk = sys.read(0, 4096)
            if not chunk:
                break
            data += chunk
        scan(data, "", False)
    return 0 if found else 1


@program("date", install="/bin/date")
def date_main(sys, argv, envp):
    """date(1): print the (virtual) time."""
    tv = sys.gettimeofday()
    sys.print_out("%d.%06d\n" % (tv.tv_sec, tv.tv_usec))
    return 0


@program("sleep", install="/bin/sleep")
def sleep_main(sys, argv, envp):
    """sleep(1): pause for N virtual seconds."""
    if len(argv) > 1:
        sys.sleep(float(argv[1]))
    return 0


@program("kill", install="/bin/kill")
def kill_main(sys, argv, envp):
    """kill(1): send a signal to processes."""
    args = argv[1:]
    signum = 15
    if args and args[0].startswith("-"):
        signum = int(args.pop(0)[1:])
    status = 0
    for pid in args:
        try:
            sys.kill(int(pid), signum)
        except SyscallError as err:
            sys.print_err("kill: %s: %s\n" % (pid, err))
            status = 1
    return status


@program("tee", install="/bin/tee")
def tee_main(sys, argv, envp):
    """tee(1): copy stdin to stdout and the named files."""
    args = argv[1:]
    append = False
    if args and args[0] == "-a":
        append = True
        args = args[1:]
    from repro.programs.libc import O_APPEND

    mode_flags = O_WRONLY | O_CREAT | (O_APPEND if append else O_TRUNC)
    fds = [sys.open(path, mode_flags, 0o666) for path in args]
    while True:
        chunk = sys.read(0, 4096)
        if not chunk:
            break
        sys.write(1, chunk)
        for fd in fds:
            sys.write(fd, chunk)
    for fd in fds:
        sys.close(fd)
    return 0


@program("sort", install="/bin/sort")
def sort_main(sys, argv, envp):
    """sort(1): sort lines (-r reverse, -u unique)."""
    args = argv[1:]
    reverse = False
    unique = False
    while args and args[0].startswith("-"):
        flag = args.pop(0)
        if "r" in flag:
            reverse = True
        if "u" in flag:
            unique = True
    data = b""
    if args:
        for path in args:
            try:
                data += sys.read_whole(path)
            except SyscallError as err:
                sys.print_err("sort: %s: %s\n" % (path, err))
                return 2
    else:
        while True:
            chunk = sys.read(0, 4096)
            if not chunk:
                break
            data += chunk
    lines = data.decode(errors="replace").splitlines()
    lines.sort(reverse=reverse)
    if unique:
        deduped = []
        for line in lines:
            if not deduped or deduped[-1] != line:
                deduped.append(line)
        lines = deduped
    if lines:
        sys.print_out("\n".join(lines) + "\n")
    return 0


@program("cmp", install="/bin/cmp")
def cmp_main(sys, argv, envp):
    """cmp(1): compare two files byte by byte."""
    if len(argv) != 3:
        sys.print_err("usage: cmp file1 file2\n")
        return 2
    try:
        first = sys.read_whole(argv[1])
        second = sys.read_whole(argv[2])
    except SyscallError as err:
        sys.print_err("cmp: %s\n" % err)
        return 2
    if first == second:
        return 0
    limit = min(len(first), len(second))
    for index in range(limit):
        if first[index] != second[index]:
            sys.print_out(
                "%s %s differ: char %d\n" % (argv[1], argv[2], index + 1)
            )
            return 1
    sys.print_out("cmp: EOF on %s\n" % (argv[1] if len(first) < len(second)
                                        else argv[2]))
    return 1


@program("hostname", install="/bin/hostname")
def hostname_main(sys, argv, envp):
    """hostname(1): print the host name."""
    sys.print_out(sys.gethostname() + "\n")
    return 0
