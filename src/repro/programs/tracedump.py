"""``tracedump`` — summarise a trace agent log (ktrace/kdump style).

Reads a log produced by the trace agent and prints per-call counts,
error counts, and per-process totals — turning the raw two-lines-per-
call stream into the summary a developer actually wants.

    tracedump /tmp/trace.out            # summary
    tracedump -e /tmp/trace.out         # only the calls that failed
"""

from repro.kernel.errno import SyscallError
from repro.programs.registry import program


def parse_trace_lines(text):
    """Yield ``(pid, call, result)`` for each completed call.

    *result* is ``None`` for the pre-call line, an errno name when the
    call failed, or the formatted value when it succeeded.
    """
    for line in text.splitlines():
        if not line.startswith("["):
            continue
        pid_part, _, rest = line.partition("] ")
        try:
            pid = int(pid_part.lstrip("["))
        except ValueError:
            continue
        rest = rest.strip()
        if rest.startswith("... "):
            body = rest[4:]
            call, _, outcome = body.partition(" -> ")
            yield (pid, call.strip().split("(")[0], outcome.strip())
        elif rest.endswith("..."):
            yield (pid, rest[:-4].split("(")[0], None)
        elif rest.startswith("signal "):
            yield (pid, rest, "signal")


def summarize(text):
    """Aggregate a trace log into count tables."""
    calls = {}
    errors = {}
    per_pid = {}
    signals = 0
    for pid, call, outcome in parse_trace_lines(text):
        if outcome == "signal":
            signals += 1
            continue
        if outcome is None:
            calls[call] = calls.get(call, 0) + 1
            per_pid[pid] = per_pid.get(pid, 0) + 1
        elif outcome.startswith("E") and outcome.isupper():
            key = (call, outcome)
            errors[key] = errors.get(key, 0) + 1
    return calls, errors, per_pid, signals


@program("tracedump", install="/bin/tracedump")
def tracedump_main(sys, argv, envp):
    """tracedump(1): summarise a trace agent log."""
    args = argv[1:]
    errors_only = False
    if args and args[0] == "-e":
        errors_only = True
        args = args[1:]
    if not args:
        sys.print_err("usage: tracedump [-e] trace-file\n")
        return 2
    try:
        text = sys.read_whole(args[0]).decode(errors="replace")
    except SyscallError as err:
        sys.print_err("tracedump: %s: %s\n" % (args[0], err))
        return 1

    calls, errors, per_pid, signals = summarize(text)
    if errors_only:
        if not errors:
            sys.print_out("no failed calls\n")
            return 0
        for (call, errno_name), count in sorted(errors.items()):
            sys.print_out("%6d %s -> %s\n" % (count, call, errno_name))
        return 0

    total = sum(calls.values())
    sys.print_out("%d calls, %d processes, %d signals\n"
                  % (total, len(per_pid), signals))
    for call in sorted(calls, key=lambda c: (-calls[c], c)):
        sys.print_out("%6d %s\n" % (calls[call], call))
    if errors:
        sys.print_out("errors:\n")
        for (call, errno_name), count in sorted(errors.items()):
            sys.print_out("%6d %s -> %s\n" % (count, call, errno_name))
    return 0
