"""``ktrace`` and ``kdump`` — the in-world kernel trace user interface.

``ktrace command [args...]`` enables kernel tracing on itself and then
transfers control into *command* with ``jump_to_image`` — the toolkit's
exec-without-replacing-interposition-state trap — so the trace flag
survives into the command.  (A native execve deliberately clears the
flag, the same conservative reset applied to the emulation vector; this
program sidesteps it exactly the way agents survive exec, paper Section
3.5.1.)  Because the flag is inherited across fork, tracing a shell
pipeline element covers everything that element spawns.

``kdump`` drains the kernel's ring buffer with ``ktrace_read`` and
prints one line per record in BSD kdump style, ending with an
``N events, M dropped`` summary line.

    ktrace cat /etc/passwd          # run traced
    ktrace -c                       # stop tracing the caller
    ktrace -C                       # stop tracing everyone (root)
    kdump                           # dump and empty the buffer
    kdump -n 20                     # dump at most 20 records
"""

from repro.kernel.errno import ENOENT, SyscallError
from repro.kernel.ktrace import (
    KTROP_CLEAR,
    KTROP_CLEARALL,
    KTROP_CLEARBUF,
    KTROP_SET,
)
from repro.obs.export import kdump_lines
from repro.programs.registry import program

#: the shell's binary search path, for bare command names
_PATH = ("/bin", "/usr/bin")


def _find_binary(sys, name):
    """Resolve a command name against the standard binary directories."""
    if "/" in name:
        return name
    for prefix in _PATH:
        candidate = prefix + "/" + name
        if sys.exists(candidate):
            return candidate
    raise SyscallError(ENOENT, name)


@program("ktrace", install="/bin/ktrace")
def ktrace_main(sys, argv, envp):
    """ktrace(1): run a command with kernel tracing enabled."""
    args = argv[1:]
    if args and args[0] == "-c":
        sys.ktrace(KTROP_CLEAR, 0)
        return 0
    if args and args[0] == "-C":
        sys.ktrace(KTROP_CLEARALL)
        sys.ktrace(KTROP_CLEARBUF)
        return 0
    if not args:
        sys.print_err("usage: ktrace [-c | -C | command [args...]]\n")
        return 2
    try:
        path = _find_binary(sys, args[0])
    except SyscallError:
        sys.print_err("ktrace: %s: not found\n" % args[0])
        return 127
    sys.ktrace(KTROP_SET, 0)
    # jump_to_image, not execve: the native exec resets the trace flag
    # along with the rest of the interposition state.
    sys.syscall("jump_to_image", path, args, envp)
    raise AssertionError("jump_to_image returned")


@program("kdump", install="/bin/kdump")
def kdump_main(sys, argv, envp):
    """kdump(1): print and drain the kernel trace buffer."""
    args = argv[1:]
    limit = 0
    if args and args[0] == "-n":
        if len(args) < 2 or not args[1].isdigit():
            sys.print_err("usage: kdump [-n limit]\n")
            return 2
        limit = int(args[1])
        args = args[2:]
    if args:
        sys.print_err("usage: kdump [-n limit]\n")
        return 2
    records, dropped = sys.ktrace_read(limit)
    for line in kdump_lines(records, dropped):
        sys.print_out(line + "\n")
    return 0
