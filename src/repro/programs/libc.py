"""A small C library for simulated programs.

:class:`Sys` wraps the raw trap instruction with one method per system
call (named as in Unix), plus a few libc conveniences (``read_whole``,
``listdir``, ``print_out``).  Everything here goes through
``UserContext.trap``, so every operation is visible to — and
interposable by — agents.
"""

from repro.kernel import cred as credmod
from repro.kernel import ofile
from repro.kernel import signals as sigdefs
from repro.kernel.errno import ENOENT, SyscallError
from repro.kernel.proc import WEXITSTATUS, WIFEXITED, WIFSIGNALED, WTERMSIG
from repro.kernel.sysent import number_of

# Re-exported so programs import one module.
O_RDONLY = ofile.O_RDONLY
O_WRONLY = ofile.O_WRONLY
O_RDWR = ofile.O_RDWR
O_APPEND = ofile.O_APPEND
O_CREAT = ofile.O_CREAT
O_TRUNC = ofile.O_TRUNC
O_EXCL = ofile.O_EXCL
SEEK_SET = ofile.SEEK_SET
SEEK_CUR = ofile.SEEK_CUR
SEEK_END = ofile.SEEK_END
F_DUPFD = ofile.F_DUPFD
F_GETFD = ofile.F_GETFD
F_SETFD = ofile.F_SETFD
F_GETFL = ofile.F_GETFL
F_SETFL = ofile.F_SETFL
FD_CLOEXEC = ofile.FD_CLOEXEC
R_OK = credmod.R_OK
W_OK = credmod.W_OK
X_OK = credmod.X_OK
F_OK = credmod.F_OK

_NR = {
    name: number_of(name)
    for name in (
        "exit", "fork", "read", "write", "open", "close", "wait", "link",
        "unlink", "chdir", "mknod", "chmod", "chown", "brk", "lseek",
        "getpid", "setuid", "getuid", "geteuid", "alarm", "access", "sync",
        "kill", "stat", "getppid", "lstat", "dup", "pipe", "getegid",
        "getgid", "killpg", "ioctl", "symlink", "readlink", "execve",
        "umask", "chroot", "fstat", "getpagesize", "vfork", "getgroups",
        "setgroups", "getpgrp", "setpgrp", "gethostname", "getdtablesize",
        "dup2", "fcntl", "select", "fsync", "sigvec", "sigblock",
        "sigsetmask", "sigpause", "gettimeofday", "getrusage",
        "settimeofday", "fchown", "fchmod", "rename", "truncate",
        "ftruncate", "mkdir", "rmdir", "utimes", "getdirentries",
        "flock", "setitimer", "getitimer", "readv", "writev",
        "ktrace", "ktrace_read", "kernel_stats", "jump_to_image",
    )
}

# flock operations
LOCK_SH = 1
LOCK_EX = 2
LOCK_NB = 4
LOCK_UN = 8


class Sys:
    """The libc: one method per system call, bound to one process."""

    def __init__(self, ctx):
        self._ctx = ctx
        # Buffered-stdio readahead hint, in bytes.  Nonzero only when the
        # kernel advertises a zero-copy read path with a configured
        # readahead (FastPathConfig.stdio_readahead); the default kernel
        # leaves it 0 so chunk sizes — and hence trap counts — match the
        # seed exactly.  stdio_bufsiz() folds it in for callers.
        fastpaths = getattr(getattr(ctx, "kernel", None), "fastpaths", None)
        if fastpaths is not None and fastpaths.zero_copy:
            self.readahead = fastpaths.stdio_readahead
        else:
            self.readahead = 0

    def stdio_bufsiz(self, default=8192):
        """The buffer size stdio-style helpers should use.

        The larger of *default* and the kernel's advertised readahead:
        sizing buffers up is only profitable once reads are zero-copy,
        and never sizes below what the caller already used.
        """
        readahead = self.readahead
        return readahead if readahead > default else default

    # -- raw access -----------------------------------------------------

    def syscall(self, name, *args):
        """Issue system call *name* through the trap instruction."""
        return self._ctx.trap(_NR[name], *args)

    def consume_cpu(self, usec):
        """Burn *usec* of user CPU time (advances the virtual clock)."""
        self._ctx.consume_cpu(usec)

    # -- files ------------------------------------------------------------

    def open(self, path, flags=O_RDONLY, mode=0o666):
        """open(2): open *path*; returns a descriptor."""
        return self.syscall("open", path, flags, mode)

    def creat(self, path, mode=0o666):
        """creat(2): create/truncate *path* for writing."""
        return self.open(path, O_WRONLY | O_CREAT | O_TRUNC, mode)

    def read(self, fd, count):
        """read(2): read up to *count* bytes from *fd*."""
        return self.syscall("read", fd, count)

    def write(self, fd, data):
        """write(2): write *data* (str is encoded) to *fd*."""
        if isinstance(data, str):
            data = data.encode()
        return self.syscall("write", fd, data)

    def close(self, fd):
        """close(2): release descriptor *fd*."""
        return self.syscall("close", fd)

    def readv(self, fd, counts):
        """readv(2): scatter read sized by *counts*."""
        return self.syscall("readv", fd, counts)

    def writev(self, fd, buffers):
        """writev(2): gather write of *buffers*."""
        return self.syscall("writev", fd, buffers)

    def lseek(self, fd, offset, whence=SEEK_SET):
        """lseek(2): reposition *fd*'s offset."""
        return self.syscall("lseek", fd, offset, whence)

    def dup(self, fd):
        """dup(2): duplicate *fd* at the lowest free slot."""
        return self.syscall("dup", fd)

    def dup2(self, fd, newfd):
        """dup2(2): duplicate *fd* onto *newfd*."""
        return self.syscall("dup2", fd, newfd)

    def pipe(self):
        """pipe(2): returns ``(read_fd, write_fd)``."""
        return self.syscall("pipe")

    def fcntl(self, fd, cmd, arg=0):
        """fcntl(2): descriptor control."""
        return self.syscall("fcntl", fd, cmd, arg)

    def ioctl(self, fd, request, arg=None):
        """ioctl(2): device control."""
        return self.syscall("ioctl", fd, request, arg)

    def fsync(self, fd):
        """fsync(2): flush *fd* to stable storage."""
        return self.syscall("fsync", fd)

    def stat(self, path):
        """stat(2): ``struct stat`` for *path*, following links."""
        return self.syscall("stat", path)

    def lstat(self, path):
        """lstat(2): ``struct stat`` for the name itself."""
        return self.syscall("lstat", path)

    def fstat(self, fd):
        """fstat(2): ``struct stat`` for the object behind *fd*."""
        return self.syscall("fstat", fd)

    def access(self, path, mode=F_OK):
        """access(2): check *path* with the real user id."""
        return self.syscall("access", path, mode)

    def truncate(self, path, length):
        """truncate(2): set the length of the file at *path*."""
        return self.syscall("truncate", path, length)

    def ftruncate(self, fd, length):
        """ftruncate(2): set the length of the file behind *fd*."""
        return self.syscall("ftruncate", fd, length)

    def getdirentries(self, fd, count=64):
        """getdirentries(2): read up to *count* entries from *fd*."""
        return self.syscall("getdirentries", fd, count)

    # -- name space ---------------------------------------------------------

    def link(self, path, newpath):
        """link(2): hard-link *path* as *newpath*."""
        return self.syscall("link", path, newpath)

    def unlink(self, path):
        """unlink(2): remove *path*."""
        return self.syscall("unlink", path)

    def rename(self, path, newpath):
        """rename(2): atomically rename *path* to *newpath*."""
        return self.syscall("rename", path, newpath)

    def symlink(self, target, path):
        """symlink(2): create *path* pointing at *target*."""
        return self.syscall("symlink", target, path)

    def readlink(self, path, count=1024):
        """readlink(2): return the target of the symlink at *path*."""
        return self.syscall("readlink", path, count)

    def mkdir(self, path, mode=0o777):
        """mkdir(2): create directory *path*."""
        return self.syscall("mkdir", path, mode)

    def rmdir(self, path):
        """rmdir(2): remove empty directory *path*."""
        return self.syscall("rmdir", path)

    def mknod(self, path, mode, dev=0):
        """mknod(2): create a file, FIFO, or device node."""
        return self.syscall("mknod", path, mode, dev)

    def chdir(self, path):
        """chdir(2): change the working directory."""
        return self.syscall("chdir", path)

    def chroot(self, path):
        """chroot(2): confine the root directory (root only)."""
        return self.syscall("chroot", path)

    def chmod(self, path, mode):
        """chmod(2): change *path*'s mode."""
        return self.syscall("chmod", path, mode)

    def chown(self, path, uid, gid):
        """chown(2): change *path*'s ownership (root only)."""
        return self.syscall("chown", path, uid, gid)

    def fchmod(self, fd, mode):
        """fchmod(2): change the mode behind *fd*."""
        return self.syscall("fchmod", fd, mode)

    def fchown(self, fd, uid, gid):
        """fchown(2): change the ownership behind *fd* (root only)."""
        return self.syscall("fchown", fd, uid, gid)

    def utimes(self, path, atime_usec, mtime_usec):
        """utimes(2): set access/modification times."""
        return self.syscall("utimes", path, atime_usec, mtime_usec)

    def umask(self, mask):
        """umask(2): set the creation mask; returns the old one."""
        return self.syscall("umask", mask)

    def sync(self):
        """sync(2): schedule filesystem writes (a no-op here)."""
        return self.syscall("sync")

    # -- processes ------------------------------------------------------------

    def fork(self, child=None):
        """fork(); *child* runs ``child(sys)`` in the new process.

        Returns the child pid (the parent's side of the two return
        registers).  A ``None`` child exits 0 immediately.
        """
        entry = None
        if child is not None:
            entry = lambda ctx: child(Sys(ctx))  # noqa: E731
        pid, _ = self.syscall("fork", entry)
        return pid

    def execve(self, path, argv=None, envp=None):
        """execve(2): replace this process's program image."""
        return self.syscall("execve", path, argv, envp)

    def wait(self):
        """wait(2): reap a child; returns ``(pid, status)``."""
        return self.syscall("wait")

    def _exit(self, status=0):
        self.syscall("exit", status)
        raise AssertionError("exit returned")

    def getpid(self):
        """getpid(2): this process's id."""
        return self.syscall("getpid")

    def getppid(self):
        """getppid(2): the parent's id."""
        return self.syscall("getppid")

    def getuid(self):
        """getuid(2): the real user id."""
        return self.syscall("getuid")

    def geteuid(self):
        """geteuid(2): the effective user id."""
        return self.syscall("geteuid")

    def getgid(self):
        """getgid(2): the real group id."""
        return self.syscall("getgid")

    def getegid(self):
        """getegid(2): the effective group id."""
        return self.syscall("getegid")

    def setuid(self, uid):
        """setuid(2): set the user ids (one-way unless root)."""
        return self.syscall("setuid", uid)

    def getgroups(self):
        """getgroups(2): the supplementary group list."""
        return self.syscall("getgroups")

    def setgroups(self, groups):
        """setgroups(2): replace the group list (root only)."""
        return self.syscall("setgroups", groups)

    def getpgrp(self):
        """getpgrp(2): the process group id."""
        return self.syscall("getpgrp")

    def setpgrp(self, pid=0, pgrp=0):
        """setpgrp(2): set a process's group."""
        return self.syscall("setpgrp", pid, pgrp)

    def getdtablesize(self):
        """getdtablesize(2): descriptor table size."""
        return self.syscall("getdtablesize")

    def getpagesize(self):
        """getpagesize(2): the page size."""
        return self.syscall("getpagesize")

    def gethostname(self):
        """gethostname(2): the host name."""
        return self.syscall("gethostname")

    def getrusage(self, who=0):
        """getrusage(2): resource usage for self or children."""
        return self.syscall("getrusage", who)

    def ktrace(self, op, pid=0, arg=0):
        """ktrace(2): manipulate kernel tracing (see repro.kernel.ktrace)."""
        return self.syscall("ktrace", op, pid, arg)

    def ktrace_read(self, limit=0):
        """Drain kernel trace records; returns ``(records, dropped)``."""
        return self.syscall("ktrace_read", limit)

    def kernel_stats(self):
        """Fast-path configuration and counters (extension trap 207)."""
        return self.syscall("kernel_stats")

    def brk(self, addr):
        """brk(2): set the address-space break."""
        return self.syscall("brk", addr)

    # -- signals ---------------------------------------------------------------

    SIG_DFL = sigdefs.SIG_DFL
    SIG_IGN = sigdefs.SIG_IGN

    def sigvec(self, signum, handler, mask=0):
        """sigvec(2): install a handler; returns the previous one."""
        return self.syscall("sigvec", signum, handler, mask)

    signal = sigvec

    def sigblock(self, mask):
        """sigblock(2): OR bits into the blocked mask."""
        return self.syscall("sigblock", mask)

    def sigsetmask(self, mask):
        """sigsetmask(2): replace the blocked mask."""
        return self.syscall("sigsetmask", mask)

    def sigpause(self, mask=0):
        """sigpause(2): sleep until a signal arrives (EINTR swallowed)."""
        try:
            self.syscall("sigpause", mask)
        except SyscallError:
            pass

    def kill(self, pid, signum):
        """kill(2): send *signum* to *pid*."""
        return self.syscall("kill", pid, signum)

    def killpg(self, pgrp, signum):
        """killpg(2): send *signum* to a process group."""
        return self.syscall("killpg", pgrp, signum)

    def alarm(self, seconds):
        """alarm(2): arm a one-shot SIGALRM."""
        return self.syscall("alarm", seconds)

    def flock(self, fd, operation):
        """flock(2): advisory-lock the file behind *fd*."""
        return self.syscall("flock", fd, operation)

    def setitimer(self, which, interval_usec, value_usec):
        """setitimer(2): arm the real-time interval timer."""
        return self.syscall("setitimer", which, interval_usec, value_usec)

    def getitimer(self, which=0):
        """getitimer(2): read the interval timer."""
        return self.syscall("getitimer", which)

    # -- time --------------------------------------------------------------------

    def gettimeofday(self):
        """gettimeofday(2): the current virtual time."""
        return self.syscall("gettimeofday")

    def settimeofday(self, sec, usec=0):
        """settimeofday(2): step the clock (root only)."""
        return self.syscall("settimeofday", sec, usec)

    def select_timeout(self, timeout_usec):
        """select(2), timeout-only: sleep in virtual time."""
        return self.syscall("select", timeout_usec)

    def sleep(self, seconds):
        """sleep(3): suspend for *seconds* of virtual time."""
        self.select_timeout(int(seconds * 1_000_000))

    # -- libc conveniences (built on the calls above) -------------------------------

    def read_whole(self, path):
        """Read an entire file, as stdio would: open, read loop, close."""
        bufsiz = self.stdio_bufsiz(8192)
        fd = self.open(path, O_RDONLY)
        try:
            chunks = []
            while True:
                chunk = self.read(fd, bufsiz)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
        finally:
            self.close(fd)

    def write_whole(self, path, data, mode=0o644):
        """Create/overwrite *path* with *data*, chunked like stdio."""
        if isinstance(data, str):
            data = data.encode()
        bufsiz = self.stdio_bufsiz(8192)
        fd = self.open(path, O_WRONLY | O_CREAT | O_TRUNC, mode)
        try:
            offset = 0
            while offset < len(data):
                offset += self.write(fd, data[offset : offset + bufsiz])
            return offset
        finally:
            self.close(fd)

    def append_whole(self, path, data, mode=0o644):
        """Append *data* to *path* (creating it if needed)."""
        if isinstance(data, str):
            data = data.encode()
        fd = self.open(path, O_WRONLY | O_CREAT | O_APPEND, mode)
        try:
            return self.write(fd, data)
        finally:
            self.close(fd)

    def listdir(self, path):
        """Names in a directory, excluding ``.`` and ``..``."""
        fd = self.open(path, O_RDONLY)
        try:
            names = []
            while True:
                batch = self.getdirentries(fd, 32)
                if not batch:
                    break
                names.extend(
                    d.d_name for d in batch if d.d_name not in (".", "..")
                )
            return names
        finally:
            self.close(fd)

    def exists(self, path):
        """True if *path* resolves (ENOENT swallowed, others raised)."""
        try:
            self.stat(path)
            return True
        except SyscallError as err:
            if err.errno == ENOENT:
                return False
            raise

    def print_out(self, text):
        """Write *text* to standard output."""
        self.write(1, text)

    def print_err(self, text):
        """Write *text* to standard error."""
        self.write(2, text)

    def spawn_wait(self, path, argv=None, envp=None, fd_moves=()):
        """fork + execve + wait: run a program to completion.

        *fd_moves* is a sequence of ``(from_fd, to_fd)`` dup2 operations
        performed in the child before exec (shell redirection plumbing).
        Returns the child's wait status.
        """
        argv = argv if argv is not None else [path]

        def child(csys):
            for from_fd, to_fd in fd_moves:
                csys.dup2(from_fd, to_fd)
                if from_fd != to_fd:
                    csys.close(from_fd)
            try:
                csys.execve(path, argv, envp)
            except SyscallError as err:
                csys.print_err("exec %s: %s\n" % (path, err))
                csys._exit(127)

        pid = self.fork(child)
        while True:
            reaped, status = self.wait()
            if reaped == pid:
                return status


def exit_code(status):
    """Decode a wait status into a shell-style exit code."""
    if WIFEXITED(status):
        return WEXITSTATUS(status)
    if WIFSIGNALED(status):
        return 128 + WTERMSIG(status)
    return 255
