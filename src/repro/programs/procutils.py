"""/proc viewer utilities: ps(1), top(1), and vmstat(8) for the world.

These programs are ordinary clients of the system interface — they
``open``/``read``/``getdirentries`` the /proc pseudo-filesystem (see
:mod:`repro.kernel.procfs`), which means interposition agents stacked
over them see (and may rewrite) their observation traffic like any
other file I/O.  None of them has an ``install=`` path: they are
registered here but only placed under ``/bin`` by ``mount_procfs``, so
a world that never mounts /proc carries no trace of them.

``top`` measures *rates* the only honest way a simulated machine can:
it reads every ``/proc/<pid>/status``, burns a virtual-time interval
with ``consume_cpu``, reads again, and divides the syscall-count deltas
by the interval — fully deterministic, since both the counters and the
clock are world-state.
"""

from repro.kernel.errno import SyscallError
from repro.programs.registry import program

PROC = "/proc"


def _read_status(sys, pid):
    """Parse ``/proc/<pid>/status`` into a dict (None if the pid died)."""
    try:
        text = sys.read_whole("%s/%s/status" % (PROC, pid)).decode()
    except SyscallError:
        return None
    fields = {}
    for line in text.splitlines():
        key, _, value = line.partition(": ")
        fields[key] = value
    return fields


def _pids(sys):
    """The numeric entries of /proc, sorted."""
    return sorted(
        (name for name in sys.listdir(PROC) if name.isdigit()), key=int)


@program("ps")
def ps_main(sys, argv, envp):
    """ps(1): one line per process, straight from /proc."""
    try:
        pids = _pids(sys)
    except SyscallError as err:
        sys.print_err("ps: %s: %s\n" % (PROC, err.args[1] if len(err.args) > 1
                                        else "not mounted"))
        return 1
    sys.print_out("  PID  PPID STAT  NSYS VECT COMM\n")
    for pid in pids:
        fields = _read_status(sys, pid)
        if fields is None:
            continue
        sys.print_out("%5s %5s %-5s %5s %4s %s\n" % (
            fields.get("pid", pid), fields.get("ppid", "?"),
            fields.get("state", "?")[:5], fields.get("nsyscalls", "?"),
            fields.get("vector", "0"), fields.get("comm", "?")))
    return 0


@program("top")
def top_main(sys, argv, envp):
    """top(1): per-pid syscall rates over virtual-time intervals.

    ``top [iterations] [interval_usec]`` — defaults: 1 iteration over
    100000 virtual µs.  Each iteration samples every process's
    ``nsyscalls``, consumes the interval, samples again, and prints
    processes by syscall rate (calls per virtual second).
    """
    iterations = int(argv[1]) if len(argv) > 1 else 1
    interval = int(argv[2]) if len(argv) > 2 else 100_000
    if iterations <= 0 or interval <= 0:
        sys.print_err("top: iterations and interval must be positive\n")
        return 2
    for round_no in range(iterations):
        try:
            before = {pid: _read_status(sys, pid) for pid in _pids(sys)}
        except SyscallError:
            sys.print_err("top: %s not mounted\n" % PROC)
            return 1
        sys.consume_cpu(interval)
        rows = []
        for pid in _pids(sys):
            after = _read_status(sys, pid)
            prev = before.get(pid)
            if after is None:
                continue
            now_calls = int(after.get("nsyscalls", 0))
            then_calls = int(prev.get("nsyscalls", 0)) if prev else 0
            rate = (now_calls - then_calls) * 1e6 / interval
            rows.append((rate, int(pid), after))
        rows.sort(key=lambda row: (-row[0], row[1]))
        sys.print_out("top: round %d, interval %d usec\n"
                      % (round_no + 1, interval))
        sys.print_out("  PID   CALLS/S  NSYS STAT  COMM\n")
        for rate, pid, fields in rows:
            sys.print_out("%5d %9.1f %5s %-5s %s\n" % (
                pid, rate, fields.get("nsyscalls", "?"),
                fields.get("state", "?")[:5], fields.get("comm", "?")))
    return 0


@program("vmstat")
def vmstat_main(sys, argv, envp):
    """vmstat(8): machine-wide counters from /proc/kernel and uptime."""
    import json

    try:
        uptime = sys.read_whole(PROC + "/uptime").decode().split()
        stats = json.loads(sys.read_whole(PROC + "/kernel/stats").decode())
    except SyscallError:
        sys.print_err("vmstat: %s not mounted\n" % PROC)
        return 1
    up_sec = float(uptime[0])
    trap = stats.get("trap", {})
    total = trap.get("total", 0)
    sys.print_out("uptime %.2fs  schema v%s\n"
                  % (up_sec, stats.get("schema_version", "?")))
    sys.print_out("traps %d  fast %d  compiled %d  down_compiled %d\n" % (
        total, trap.get("fast", 0), trap.get("compiled", 0),
        trap.get("down_compiled", 0)))
    if up_sec > 0:
        sys.print_out("traps/sec %.1f\n" % (total / up_sec))
    cache = stats.get("namecache", {})
    if cache.get("enabled", True) is not False:
        sys.print_out("namecache hits %s misses %s\n"
                      % (cache.get("hits", 0), cache.get("misses", 0)))
    for section in ("procfs", "profile", "watch", "recorder", "guard"):
        doc = stats.get(section, {})
        if doc.get("enabled"):
            brief = " ".join(
                "%s=%s" % (key, value) for key, value in sorted(doc.items())
                if key not in ("enabled", "reads_by_node") and
                not isinstance(value, dict))
            sys.print_out("%s %s\n" % (section, brief))
    return 0
