"""A small Bourne-flavoured shell.

Supports simple commands with PATH search, ``;`` sequencing, ``&&`` and
``||`` conditionals, pipelines, ``>``, ``>>`` and ``<`` redirection,
comments, positional parameters ``$0``-``$9`` and ``$?``, and the
builtins ``cd``, ``exit``, ``umask`` and ``:``.  Enough to run Makefile
recipe lines and demo scripts — and, importantly for the paper's
workloads, every external command costs a fork/execve pair.
"""

from repro.kernel.errno import ENOENT, SyscallError
from repro.programs.libc import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    exit_code,
)
from repro.programs.registry import program

PATH = ("/bin", "/usr/bin")


def _tokenize(line):
    """Split a command line into tokens, honouring quotes and comments."""
    tokens = []
    current = ""
    has_current = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "#" and not has_current:
            break
        if ch in "'\"":
            quote = ch
            i += 1
            start = i
            while i < len(line) and line[i] != quote:
                i += 1
            current += line[start:i]
            has_current = True
            i += 1
            continue
        if ch.isspace():
            if has_current:
                tokens.append(current)
                current = ""
                has_current = False
            i += 1
            continue
        if ch in "|;<>&":
            if has_current:
                tokens.append(current)
                current = ""
                has_current = False
            two = line[i : i + 2]
            if two in (">>", "&&", "||"):
                tokens.append(two)
                i += 2
            else:
                tokens.append(ch)
                i += 1
            continue
        current += ch
        has_current = True
        i += 1
    if has_current:
        tokens.append(current)
    return tokens


def _substitute(token, params, last_status):
    out = ""
    i = 0
    while i < len(token):
        ch = token[i]
        if ch == "$" and i + 1 < len(token):
            nxt = token[i + 1]
            if nxt == "?":
                out += str(last_status)
                i += 2
                continue
            if nxt.isdigit():
                index = int(nxt)
                out += params[index] if index < len(params) else ""
                i += 2
                continue
        out += ch
        i += 1
    return out


class _Command:
    """One pipeline stage: argv plus its redirections."""

    def __init__(self):
        self.argv = []
        self.stdin = None
        self.stdout = None
        self.append = False


def _parse_pipeline(tokens):
    stages = [_Command()]
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token == "|":
            stages.append(_Command())
        elif token == "<":
            i += 1
            stages[-1].stdin = tokens[i]
        elif token in (">", ">>"):
            stages[-1].append = token == ">>"
            i += 1
            stages[-1].stdout = tokens[i]
        else:
            stages[-1].argv.append(token)
        i += 1
    return [s for s in stages if s.argv or s.stdin or s.stdout]


def _split_conditionals(tokens):
    """Split a token list at ``&&``/``||`` into (connector, segment) pairs,
    evaluated left to right as in the Bourne shell."""
    chain = []
    connector = None
    current = []
    for token in tokens:
        if token in ("&&", "||"):
            chain.append((connector, current))
            connector = token
            current = []
        else:
            current.append(token)
    chain.append((connector, current))
    return chain


def _find_binary(sys, name):
    if "/" in name:
        return name
    for prefix in PATH:
        candidate = prefix + "/" + name
        if sys.exists(candidate):
            return candidate
    raise SyscallError(ENOENT, name)


class Shell:
    """One shell session: parameters, status, builtins, pipelines."""
    def __init__(self, sys, params, envp):
        self.sys = sys
        self.params = params
        self.envp = dict(envp or {})
        self.last_status = 0
        self.exited = None

    # -- builtins -------------------------------------------------------

    def _builtin(self, argv):
        name = argv[0]
        if name == "cd":
            target = argv[1] if len(argv) > 1 else "/"
            try:
                self.sys.chdir(target)
                return 0
            except SyscallError as err:
                self.sys.print_err("cd: %s: %s\n" % (target, err))
                return 1
        if name == "exit":
            self.exited = int(argv[1]) if len(argv) > 1 else self.last_status
            return self.exited
        if name == "umask":
            if len(argv) > 1:
                self.sys.umask(int(argv[1], 8))
            else:
                old = self.sys.umask(0)
                self.sys.umask(old)
                self.sys.print_out("%03o\n" % old)
            return 0
        if name == ":":
            return 0
        return None

    # -- execution ----------------------------------------------------------

    def run_line(self, line):
        """Execute one command line (;, &&, ||, pipelines)."""
        for piece in self._split_commands(line):
            tokens = _tokenize(piece)
            tokens = [
                _substitute(t, self.params, self.last_status) for t in tokens
            ]
            for connector, segment in _split_conditionals(tokens):
                stages = _parse_pipeline(segment)
                if not stages:
                    continue
                if connector == "&&" and self.last_status != 0:
                    continue
                if connector == "||" and self.last_status == 0:
                    continue
                self.last_status = self._run_pipeline(stages)
                if self.exited is not None:
                    return self.last_status
        return self.last_status

    @staticmethod
    def _split_commands(line):
        pieces = []
        current = ""
        quote = None
        for ch in line:
            if quote:
                if ch == quote:
                    quote = None
                current += ch
            elif ch in "'\"":
                quote = ch
                current += ch
            elif ch == ";":
                pieces.append(current)
                current = ""
            else:
                current += ch
        pieces.append(current)
        return [p for p in (piece.strip() for piece in pieces) if p]

    def _run_pipeline(self, stages):
        sys = self.sys
        if len(stages) == 1 and stages[0].argv:
            status = self._builtin(stages[0].argv)
            if status is not None:
                return status

        pids = []
        prev_read = None
        for index, stage in enumerate(stages):
            is_last = index == len(stages) - 1
            if not stage.argv:
                continue
            try:
                path = _find_binary(sys, stage.argv[0])
            except SyscallError:
                sys.print_err("%s: not found\n" % stage.argv[0])
                if prev_read is not None:
                    sys.close(prev_read)
                return 127
            if not is_last:
                pipe_read, pipe_write = sys.pipe()
            else:
                pipe_read = pipe_write = None

            def child(csys, stage=stage, prev_read=prev_read,
                      pipe_read=pipe_read, pipe_write=pipe_write,
                      path=path):
                if prev_read is not None:
                    csys.dup2(prev_read, 0)
                    csys.close(prev_read)
                if pipe_write is not None:
                    csys.dup2(pipe_write, 1)
                    csys.close(pipe_write)
                if pipe_read is not None:
                    csys.close(pipe_read)
                try:
                    if stage.stdin is not None:
                        fd = csys.open(stage.stdin, O_RDONLY)
                        csys.dup2(fd, 0)
                        csys.close(fd)
                    if stage.stdout is not None:
                        flags = O_WRONLY | O_CREAT | (
                            O_APPEND if stage.append else O_TRUNC
                        )
                        fd = csys.open(stage.stdout, flags, 0o666)
                        csys.dup2(fd, 1)
                        csys.close(fd)
                except SyscallError as err:
                    target = stage.stdout or stage.stdin
                    csys.print_err("%s: cannot open: %s\n" % (target, err))
                    csys._exit(1)
                try:
                    csys.execve(path, stage.argv, self.envp)
                except SyscallError as err:
                    csys.print_err("%s: %s\n" % (path, err))
                    csys._exit(126)

            pids.append(sys.fork(child))
            if prev_read is not None:
                sys.close(prev_read)
            if pipe_write is not None:
                sys.close(pipe_write)
            prev_read = pipe_read
        if prev_read is not None:
            sys.close(prev_read)

        status = 0
        remaining = set(pids)
        while remaining:
            pid, wstatus = sys.wait()
            if pid in remaining:
                remaining.discard(pid)
                if pid == pids[-1]:
                    status = exit_code(wstatus)
        return status


@program("sh", install="/bin/sh")
def sh_main(sys, argv, envp):
    """sh(1): -c command strings, script files, or stdin."""
    args = argv[1:]
    if args and args[0] == "-c":
        shell = Shell(sys, params=["sh"] + args[2:], envp=envp)
        shell.run_line(args[1] if len(args) > 1 else "")
        return shell.exited if shell.exited is not None else shell.last_status

    if args:
        # Script mode: argv[1] is the script, the rest are $1..$n.
        script_path = args[0]
        shell = Shell(sys, params=args, envp=envp)
        text = sys.read_whole(script_path).decode(errors="replace")
        for line in text.splitlines():
            if line.startswith("#!"):
                continue
            shell.run_line(line)
            if shell.exited is not None:
                break
        return shell.exited if shell.exited is not None else shell.last_status

    # Interactive mode: read commands from stdin until EOF.
    shell = Shell(sys, params=["sh"], envp=envp)
    buffered = ""
    while shell.exited is None:
        chunk = sys.read(0, 1024)
        if not chunk:
            break
        buffered += chunk.decode(errors="replace")
        while "\n" in buffered:
            line, buffered = buffered.split("\n", 1)
            shell.run_line(line)
            if shell.exited is not None:
                break
    return shell.exited if shell.exited is not None else shell.last_status
