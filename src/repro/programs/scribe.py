"""``scribe`` — a document formatter in the spirit of Scribe (1980).

Formats a ``.mss`` manuscript into paged, justified text.  Supported
directives (a small but genuine subset of Scribe's):

    @make(report)             document style (cosmetic)
    @device(file)             output device (cosmetic)
    @chapter(Title)           numbered chapter heading, starts a page
    @section(Title)           numbered section heading
    @subsection(Title)        numbered subsection heading
    @include(file)            textually include another manuscript
    @begin(itemize)/@end(itemize)    bulleted list
    @begin(verbatim)/@end(verbatim)  preformatted block
    @index(term)              add term to the back-of-book index
    @label(name) / @ref(name)       cross references (two passes)
    @cite(key)                bibliography citation ([n] numbering)

The formatter is deliberately CPU-heavy (greedy justification with
per-character hyphenation scoring, done in two passes so forward
references resolve) and deliberately light on system calls: the paper's
dissertation-formatting workload made only 716 calls in 81 seconds.
Output is written through a stdio-style buffer so writes hit the system
in page-sized chunks.
"""

from repro.kernel.errno import SyscallError
from repro.programs.libc import O_CREAT, O_TRUNC, O_WRONLY
from repro.programs.registry import program

LINE_WIDTH = 72
PAGE_LINES = 54

STYLE_FILES = (
    "/usr/lib/scribe/report.fmt",
    "/usr/lib/scribe/fonts.def",
    "/usr/lib/scribe/device.def",
)
BIB_DATABASE = "/usr/lib/scribe/bibliography.bib"


#: stdio BUFSIZ, 1989 vintage
BUFSIZ = 1024


def _read_buffered(sys, path):
    """Read a whole file through a BUFSIZ stdio buffer, as fread would.

    When the kernel advertises a zero-copy readahead (see
    ``Sys.stdio_bufsiz``), the buffer sizes up to it — the 1989 BUFSIZ
    stands whenever the advertisement is absent, keeping the seed's
    per-file trap counts.
    """
    bufsiz = sys.stdio_bufsiz(BUFSIZ)
    fd = sys.open(path)
    try:
        chunks = []
        while True:
            chunk = sys.read(fd, bufsiz)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)
    finally:
        sys.close(fd)


class _OutputBuffer:
    """stdio: buffer writes into BUFSIZ chunks (or the kernel's
    advertised readahead, when larger — see ``Sys.stdio_bufsiz``)."""

    def __init__(self, sys, fd, chunk=None):
        self.sys = sys
        self.fd = fd
        self.chunk = chunk if chunk is not None else sys.stdio_bufsiz(BUFSIZ)
        self.pending = []
        self.pending_len = 0
        self.lines_written = 0

    def put_line(self, line):
        data = (line + "\n").encode()
        self.pending.append(data)
        self.pending_len += len(data)
        self.lines_written += 1
        if self.pending_len >= self.chunk:
            self.flush()

    def flush(self):
        if self.pending:
            self.sys.write(self.fd, b"".join(self.pending))
            self.pending = []
            self.pending_len = 0


def _hyphenation_points(word):
    """Score candidate break points in a word (vowel-consonant boundaries).

    This is the formatter's deliberate CPU: a character-by-character pass
    over every long word, as a real justifier's hyphenation pass would be.
    """
    vowels = "aeiouyAEIOUY"
    points = []
    for i in range(2, len(word) - 2):
        prev_vowel = word[i - 1] in vowels
        this_vowel = word[i] in vowels
        if prev_vowel and not this_vowel:
            score = 0
            for j in range(max(0, i - 3), min(len(word), i + 3)):
                if word[j] in vowels:
                    score += 2
                elif word[j].isalpha():
                    score += 1
            points.append((i, score))
    return points


def _justify(words, width):
    """Distribute spaces so the line exactly fills *width* columns."""
    if len(words) < 2:
        return words[0] if words else ""
    text_len = sum(len(w) for w in words)
    gaps = len(words) - 1
    spaces = width - text_len
    if spaces <= gaps:
        return " ".join(words)
    base, extra = divmod(spaces, gaps)
    pieces = []
    for index, word in enumerate(words[:-1]):
        pieces.append(word)
        pad = base + (1 if index < extra else 0)
        pieces.append(" " * pad)
    pieces.append(words[-1])
    return "".join(pieces)


def _fill_paragraph(text, width, indent=0):
    """Greedy fill with hyphenation of overlong words; returns lines."""
    words = text.split()
    for word in words:
        if len(word) > 10:
            _hyphenation_points(word)  # scoring pass (CPU)
    lines = []
    current = []
    current_len = 0
    prefix = " " * indent
    for word in words:
        needed = len(word) + (1 if current else 0)
        if current and current_len + needed > width - indent:
            lines.append(prefix + _justify(current, width - indent))
            current = []
            current_len = 0
            needed = len(word)
        current.append(word)
        current_len += needed
    if current:
        lines.append(prefix + " ".join(current))
    return lines


def _parse_directive(line):
    """``@name(argument)`` -> (name, argument) or None."""
    if not line.startswith("@"):
        return None
    open_paren = line.find("(")
    if open_paren < 0:
        return (line[1:].strip().lower(), "")
    name = line[1:open_paren].strip().lower()
    arg = line[open_paren + 1 : line.rfind(")")] if ")" in line else line[open_paren + 1 :]
    return (name, arg)


class Formatter:
    """The two-pass formatter: pages, headings, references, index."""
    def __init__(self, sys, source_dir):
        self.sys = sys
        self.source_dir = source_dir
        self.labels = {}
        self.citations = []
        self.index = {}
        self.chapter = 0
        self.section = 0
        self.subsection = 0
        self.line_in_page = 0
        self.page = 1
        self.out = None
        self.emitting = False

    # -- page machinery ------------------------------------------------

    def emit(self, line):
        """Write one output line, breaking pages as needed."""
        if not self.emitting:
            return
        self.out.put_line(line)
        self.line_in_page += 1
        if self.line_in_page >= PAGE_LINES:
            self.out.put_line("")
            self.out.put_line(" " * 34 + "- %d -" % self.page)
            self.out.put_line("\f")
            self.page += 1
            self.line_in_page = 0

    def new_page(self):
        """Pad to the next page boundary."""
        if self.emitting and self.line_in_page:
            while self.line_in_page:
                self.emit("")

    # -- inline substitution ----------------------------------------------

    def _inline(self, text):
        for key, number in self._cite_numbers.items():
            text = text.replace("@cite(%s)" % key, "[%d]" % number)
        out = []
        i = 0
        while i < len(text):
            if text.startswith("@ref(", i):
                end = text.index(")", i)
                name = text[i + 5 : end]
                out.append(self.labels.get(name, "?"))
                i = end + 1
            elif text.startswith("@index(", i):
                end = text.index(")", i)
                term = text[i + 7 : end]
                self.index.setdefault(term, set()).add(self.page)
                i = end + 1
            else:
                out.append(text[i])
                i += 1
        return "".join(out)

    # -- the two formatting passes -----------------------------------------

    def read_manuscript(self, path):
        """Read a manuscript and its @include files into a line list."""
        data = _read_buffered(self.sys, path)
        lines = []
        for line in data.decode(errors="replace").splitlines():
            directive = _parse_directive(line.strip())
            if directive and directive[0] == "include":
                name = directive[1]
                full = name if name.startswith("/") else self.source_dir + "/" + name
                self.sys.stat(full)
                lines.extend(self.read_manuscript(full))
            else:
                lines.append(line)
        return lines

    def collect_citations(self, lines):
        """Pass 0: number every @cite key in order of appearance."""
        for line in lines:
            start = 0
            while True:
                pos = line.find("@cite(", start)
                if pos < 0:
                    break
                end = line.index(")", pos)
                key = line[pos + 6 : end]
                if key not in self.citations:
                    self.citations.append(key)
                start = end + 1
        self._cite_numbers = {
            key: number for number, key in enumerate(self.citations, 1)
        }

    def format(self, lines, out):
        """One full formatting pass over the manuscript lines."""
        self.out = out
        self.chapter = self.section = self.subsection = 0
        self.line_in_page = 0
        self.page = 1
        self.toc = []

        paragraph = []
        mode = []

        def flush_paragraph():
            if not paragraph:
                return
            text = self._inline(" ".join(paragraph))
            indent = 5 if "itemize" in mode else 0
            body = _fill_paragraph(text, LINE_WIDTH, indent)
            if "itemize" in mode and body:
                body[0] = "   - " + body[0][5:] if len(body[0]) > 5 else "   -"
            for formatted in body:
                self.emit(formatted)
            self.emit("")
            del paragraph[:]

        for raw in lines:
            line = raw.rstrip()
            stripped = line.strip()
            directive = _parse_directive(stripped)
            if "verbatim" in mode and not (
                directive and directive[0] == "end" and directive[1] == "verbatim"
            ):
                self.emit(line)
                continue
            if directive is None:
                if not stripped:
                    flush_paragraph()
                else:
                    paragraph.append(stripped)
                continue
            name, arg = directive
            if name in ("make", "device", "style", "comment"):
                continue
            if name == "label":
                self.labels[arg] = "%d.%d" % (self.chapter, self.section) if (
                    self.section
                ) else str(self.chapter)
                continue
            if name == "chapter":
                flush_paragraph()
                self.chapter += 1
                self.section = 0
                self.subsection = 0
                self.new_page()
                title = "Chapter %d.  %s" % (self.chapter, self._inline(arg))
                self.toc.append((0, title, self.page))
                self.emit(title)
                self.emit("=" * min(LINE_WIDTH, len(title)))
                self.emit("")
                continue
            if name == "section":
                flush_paragraph()
                self.section += 1
                self.subsection = 0
                title = "%d.%d  %s" % (self.chapter, self.section, self._inline(arg))
                self.toc.append((1, title, self.page))
                self.emit(title)
                self.emit("-" * min(LINE_WIDTH, len(title)))
                continue
            if name == "subsection":
                flush_paragraph()
                self.subsection += 1
                title = "%d.%d.%d  %s" % (
                    self.chapter,
                    self.section,
                    self.subsection,
                    self._inline(arg),
                )
                self.toc.append((2, title, self.page))
                self.emit(title)
                continue
            if name == "begin":
                flush_paragraph()
                mode.append(arg.strip().lower())
                continue
            if name == "end":
                flush_paragraph()
                wanted = arg.strip().lower()
                if wanted in mode:
                    mode.remove(wanted)
                continue
            if name == "index":
                self.index.setdefault(arg, set()).add(self.page)
                continue
            # Unknown directive: treat as text, as Scribe warns and goes on.
            paragraph.append(stripped)
        flush_paragraph()

    def back_matter(self, bibliography):
        """Emit the references and the index."""
        self.new_page()
        if self.citations:
            self.emit("References")
            self.emit("==========")
            self.emit("")
            for number, key in enumerate(self.citations, 1):
                entry = bibliography.get(key, "(reference not found)")
                for formatted in _fill_paragraph(
                    "[%d] %s" % (number, entry), LINE_WIDTH, 0
                ):
                    self.emit(formatted)
            self.emit("")
        if self.index:
            self.emit("Index")
            self.emit("=====")
            self.emit("")
            for term in sorted(self.index, key=str.lower):
                pages = ", ".join(str(p) for p in sorted(self.index[term]))
                self.emit("  %s %s %s" % (term, "." * max(2, 40 - len(term)), pages))


def _load_bibliography(sys):
    entries = {}
    try:
        data = sys.read_whole(BIB_DATABASE).decode(errors="replace")
    except SyscallError:
        return entries
    for line in data.splitlines():
        if "|" in line:
            key, text = line.split("|", 1)
            entries[key.strip()] = text.strip()
    return entries


@program("scribe", install="/usr/bin/scribe")
def scribe_main(sys, argv, envp):
    """scribe(1): format a manuscript to paged, justified text."""
    if len(argv) < 2:
        sys.print_err("usage: scribe manuscript.mss [output]\n")
        return 2
    source = argv[1]
    output = argv[2] if len(argv) > 2 else (
        source[:-4] + ".doc" if source.endswith(".mss") else source + ".doc"
    )
    source_dir = source.rsplit("/", 1)[0] if "/" in source else "."

    # Read the device/style databases, as Scribe does at startup.
    for style_file in STYLE_FILES:
        if sys.exists(style_file):
            _read_buffered(sys, style_file)
    bibliography = _load_bibliography(sys)

    formatter = Formatter(sys, source_dir)
    lines = formatter.read_manuscript(source)
    formatter.collect_citations(lines)

    # Pass 1: gather labels and page numbers (no output).
    null_fd = sys.open("/dev/null", O_WRONLY)
    formatter.emitting = True
    formatter.format(lines, _OutputBuffer(sys, null_fd))
    sys.close(null_fd)

    # Pass 2: real output with resolved cross references.
    out_fd = sys.open(output, O_WRONLY | O_CREAT | O_TRUNC, 0o644)
    buffer = _OutputBuffer(sys, out_fd)
    formatter.format(lines, buffer)
    formatter.back_matter(bibliography)
    formatter.out.flush()
    sys.fsync(out_fd)
    sys.close(out_fd)

    # Auxiliary outputs: table of contents and index summary.
    toc_lines = ["Table of Contents", ""]
    for depth, title, page in formatter.toc:
        toc_lines.append("%s%s  %d" % ("  " * depth, title, page))
    sys.write_whole(output + ".toc", "\n".join(toc_lines) + "\n")

    sys.print_out(
        "scribe: %s: %d pages, %d citations, %d index terms\n"
        % (output, formatter.page, len(formatter.citations), len(formatter.index))
    )
    return 0
