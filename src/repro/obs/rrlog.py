"""The ``.rrlog`` nondeterminism log: one scheduling decision per line.

A record/replay log is text-native and append-only, greppable exactly
like a kdump: a versioned header, a block of ``# key: value`` metadata
naming the scenario that produced it (enough to re-boot the same world),
and then one :class:`Decision` per line.  The format is deliberately
trivial — ``kind pid value`` separated by single spaces — because the
log is a *debugging artifact first*: the whole point of recording at the
system interface is that the resulting trace reads like the system's own
story, not like a binary blob.

Decision kinds (see :mod:`repro.obs.recorder` for the protocol):

``T`` / ``H`` / ``C``
    Turn-token acquisitions at kernel-world entry: a system call trap
    (value = call name), a top-level ``htg_unix_syscall`` downcall, or a
    ``consume_cpu`` clock advance (value = usec).
``W`` / ``E`` / ``Y``
    Sleep-queue admissions: a granted recheck batch that exited the
    sleep (``W``), raised ``EINTR`` (``E``), or had side effects — an
    alarm fired, the idle loop advanced the clock — and went back to
    sleep (``Y``).  Value = the wait channel.
``F`` / ``P`` / ``D`` / ``K``
    Validation notes, recorded in turn order: a fault-site firing
    (value = ``tag errno``), a pid allocation, a descriptor allocation,
    and a virtual-clock read in ``timecalls``/``flock_itimer``.
"""

RRLOG_VERSION = 1

#: decisions that acquire the turn token at kernel-world entry
ENTRY_KINDS = ("T", "H", "C")
#: decisions a sleeping thread's granted recheck batch can commit
SLEEP_KINDS = ("W", "E", "Y")
#: validation notes recorded under an already-held token
NOTE_KINDS = ("F", "P", "D", "K")

KINDS = ENTRY_KINDS + SLEEP_KINDS + NOTE_KINDS

_KIND_SET = frozenset(KINDS)


class Decision:
    """One recorded nondeterminism decision: ``kind pid value``."""

    __slots__ = ("kind", "pid", "value")

    def __init__(self, kind, pid, value=""):
        if kind not in _KIND_SET:
            raise ValueError("unknown rrlog decision kind %r" % (kind,))
        self.kind = kind
        self.pid = pid
        self.value = value

    def line(self):
        """This decision as one rrlog line (no newline)."""
        if self.value:
            return "%s %d %s" % (self.kind, self.pid, self.value)
        return "%s %d" % (self.kind, self.pid)

    @classmethod
    def parse(cls, line):
        """A decision from one log line (``ValueError`` on garbage)."""
        parts = line.split(" ", 2)
        if len(parts) < 2 or parts[0] not in KINDS:
            raise ValueError("bad rrlog decision line %r" % (line,))
        return cls(parts[0], int(parts[1]), parts[2] if len(parts) > 2 else "")

    def matches(self, kind, pid, value):
        """True when this decision is exactly (*kind*, *pid*, *value*)."""
        return self.kind == kind and self.pid == pid and self.value == value

    def __eq__(self, other):
        if not isinstance(other, Decision):
            return NotImplemented
        return (self.kind, self.pid, self.value) == \
            (other.kind, other.pid, other.value)

    def __repr__(self):
        return "<Decision %s>" % self.line()


def dump(meta, decisions):
    """Render a complete rrlog document as one string.

    *meta* is a mapping of scenario parameters (seed, policy, ...)
    written as ``# key: value`` header lines; values round-trip as
    strings, so drivers coerce types themselves on read.
    """
    lines = ["# rrlog v%d" % RRLOG_VERSION]
    for key in sorted(meta):
        lines.append("# %s: %s" % (key, meta[key]))
    for decision in decisions:
        lines.append(decision.line())
    return "\n".join(lines) + "\n"


def parse(text):
    """Parse an rrlog document; returns ``(meta, decisions)``.

    Raises ``ValueError`` on a missing/mismatched version header or an
    unparseable decision line — a truncated or hand-mangled log should
    fail loudly at load time, not as a baffling mid-replay divergence.
    """
    lines = text.splitlines()
    if not lines or not lines[0].startswith("# rrlog v"):
        raise ValueError("not an rrlog: missing '# rrlog v<N>' header")
    version = int(lines[0][len("# rrlog v"):])
    if version != RRLOG_VERSION:
        raise ValueError("rrlog version %d not supported (know v%d)"
                         % (version, RRLOG_VERSION))
    meta = {}
    decisions = []
    for line in lines[1:]:
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            key, sep, value = line[1:].partition(":")
            if sep:
                meta[key.strip()] = value.strip()
            continue
        decisions.append(Decision.parse(line))
    return meta, decisions


def write_file(path, meta, decisions):
    """Write one rrlog document to *path* (host filesystem)."""
    with open(path, "w") as f:
        f.write(dump(meta, decisions))


def read_file(path):
    """Read the rrlog at *path*; returns ``(meta, decisions)``."""
    with open(path, "r") as f:
        return parse(f.read())
