"""Deterministic record/replay: the turn token and the decision log.

**The problem.** Simulated processes run on real host threads serialised
by the big kernel lock, so a run's outcome depends on host scheduling:
which thread wins the lock, which sleeper's 50 ms recheck fires first,
which order two writers hit a fault site's RNG.  Everything *between*
kernel entries is per-process deterministic — processes interact only
through the kernel — so a total order over kernel-world entries is a
total order over the whole computation.

**The mechanism.** A :class:`Recorder` owns a re-entrant *turn token*.
Every kernel-world entry — a trap, a top-level ``htg`` downcall, a
``consume_cpu`` clock advance — acquires it first and holds it to the
end of the entry; a thread sleeping in ``sleep_until`` releases it
before waiting and re-acquires it (a *grant*) to run a recheck batch.
With the token held, nothing else can enter the kernel, so the sequence
of token acquisitions IS the execution:

* **record** mode grants first-come-first-served and appends one
  :class:`~repro.obs.rrlog.Decision` per acquisition (plus validation
  notes for fault-site firings and pid/fd allocations);
* **replay** mode grants only the thread named by the log head, so the
  recorded total order is *enforced*; every decision and note is
  compared against the log and the first mismatch becomes a structured
  :class:`ReplayDivergence` naming the differing trap and its span.

No-op rechecks (predicate still false, nothing fired) are invisible in
both modes: they have no side effects, so host-timing-dependent spurious
wakeups cannot pollute the log.

**Pay-per-use.** ``kernel.recorder`` is ``None`` by default and every
hook in the trap spine, scheduler, clock reads, fault sites, and
allocators is a single ``is None`` attribute test — the same discipline
as ``kernel.obs`` and ``kernel.guard``.

**Scope.** Same-space agents only: a
:class:`~repro.toolkit.remote.SeparateSpaceAgent`'s dispatcher threads
and wall-clock IPC watchdogs live outside the token protocol.  Host
panics (``_record_panic``) are likewise outside recording — a run whose
containment failed is not replayable, which is one more reason to keep
it from failing.
"""

import threading
import time

from repro.obs import events as ev
from repro.obs.rrlog import Decision, SLEEP_KINDS

RECORD = "record"
REPLAY = "replay"


class ReplayDivergence(Exception):
    """Replay departed from the recorded execution.

    ``position`` is the log index of the first differing decision,
    ``expected`` the recorded :class:`~repro.obs.rrlog.Decision` at that
    position (None when the log was exhausted), ``got`` the decision the
    replaying execution actually produced (a ``(kind, pid, value)``
    tuple, or None for a stall), and ``span`` the id of the causal span
    open for that pid at the moment of divergence (0 without span
    tracing).
    """

    def __init__(self, position, expected, got, pid=0, span=0, reason=""):
        self.position = position
        self.expected = expected
        self.got = got
        self.pid = pid
        self.span = span
        self.reason = reason
        want = expected.line() if expected is not None else "<end of log>"
        have = ("%s %d %s" % got if got is not None else "<stall>")
        super().__init__(
            "replay diverged at decision %d: expected %r, got %r"
            "%s (pid %d, span %d)"
            % (position, want, have,
               " — " + reason if reason else "", pid, span))


class _RecorderProc:
    """A pid-0 stand-in so the recorder can emit obs events."""

    pid = 0
    comm = "recorder"
    ktrace_on = False


class Recorder:
    """The turn token plus the decision log, in record or replay mode.

    Construct with ``mode="record"`` (decisions accumulate on
    ``self.decisions``) or ``mode="replay"`` with the recorded *log*.
    ``flip_fault=i`` is the bisect probe: replay faithfully up to the
    *i*-th fault-site firing (0-based), suppress that one injection, and
    free-run from there — the outcome delta against the recorded run is
    what ``scripts/replay.py bisect`` searches for.
    """

    def __init__(self, mode=RECORD, log=None, flip_fault=None,
                 stall_seconds=10.0):
        if mode not in (RECORD, REPLAY):
            raise ValueError("recorder mode must be %r or %r"
                             % (RECORD, REPLAY))
        if mode == REPLAY and log is None:
            raise ValueError("replay mode needs the recorded decision log")
        self.mode = mode
        #: the decision log: appended to in record mode, consumed from
        #: (``position`` advances) in replay mode
        self.decisions = list(log) if log is not None else []
        self.position = 0
        self.flip_fault = flip_fault
        self.stall_seconds = stall_seconds
        #: the first divergence seen (replay mode), or None
        self.divergence = None
        #: True once coordination stopped: after a divergence or a
        #: bisect flip the world free-runs so threads drain instead of
        #: deadlocking against an unreachable log
        self.passive = False
        #: why coordination stopped ("divergence" / "flip" / "")
        self.passive_reason = ""
        self.kernel = None
        self._cv = threading.Condition(threading.Lock())
        self._owner = None
        self._depth = 0
        self._last_progress = time.monotonic()
        self._faults_fired = 0
        self.notes_total = 0

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def attach(self, kernel):
        """Install this recorder on *kernel* (and its armed fault sites)."""
        kernel.recorder = self
        self.kernel = kernel
        if kernel.faultsites is not None:
            kernel.faultsites.recorder = self
        obs = kernel.obs
        if obs is not None:
            obs.emit(ev.RECORD_START if self.mode == RECORD
                     else ev.RECORD_STOP,
                     _RecorderProc(), self.mode,
                     "%d decision(s) loaded" % len(self.decisions)
                     if self.mode == REPLAY else "")
        return self

    def detach(self):
        """Remove this recorder from its kernel; returns it for reading."""
        kernel = self.kernel
        if kernel is not None and kernel.recorder is self:
            kernel.recorder = None
            if kernel.faultsites is not None:
                kernel.faultsites.recorder = None
        return self

    # ------------------------------------------------------------------
    # the turn token: kernel-world entries
    # ------------------------------------------------------------------

    def begin(self, proc, kind, value):
        """Acquire the token for a kernel-world entry (trap/htg/consume).

        Re-entrant per thread: a nested entry (an agent's ``htg`` inside
        its handler's trap) bumps the depth and logs nothing — it is a
        deterministic continuation of the outer turn.
        """
        me = threading.get_ident()
        with self._cv:
            if self.passive:
                return
            if self._owner == me:
                self._depth += 1
                return
            if self.mode == RECORD:
                while self._owner is not None and not self.passive:
                    self._cv.wait(0.5)
                if self.passive:
                    return
                self._owner = me
                self._depth = 1
                self._append_locked(Decision(kind, proc.pid, value))
                return
            while True:
                if self.passive:
                    return
                head = self._head_locked()
                if head is not None and head.pid == proc.pid:
                    if self._owner is None:
                        if head.kind != kind or head.value != value:
                            self._diverge_locked(proc.pid,
                                                 (kind, proc.pid, value))
                            return
                        self._owner = me
                        self._depth = 1
                        self._consume_locked()
                        return
                elif head is None:
                    self._diverge_locked(proc.pid, (kind, proc.pid, value),
                                         reason="log exhausted")
                    return
                if not self._cv.wait(0.2):
                    self._check_stall_locked(proc.pid, (kind, proc.pid, value))

    def end(self):
        """Release one level of the token at kernel-world exit."""
        me = threading.get_ident()
        with self._cv:
            if self.passive or self._owner != me:
                return
            self._depth -= 1
            if self._depth > 0:
                return
            self._owner = None
            self._cv.notify_all()
        self._notify_sleepers()

    # ------------------------------------------------------------------
    # the turn token: sleep-queue suspension and grants
    # ------------------------------------------------------------------

    def held_depth(self):
        """The calling thread's current token depth (0 if not holder)."""
        with self._cv:
            return self._depth if self._owner == threading.get_ident() else 0

    def suspend(self):
        """Release the token before waiting on the sleep queue.

        Called with the kernel lock held; the sleeper keeps its depth
        itself and passes it back to :meth:`try_resume`.  Nothing is
        logged: going to sleep is deterministic, only being *admitted
        back* is a decision.
        """
        me = threading.get_ident()
        with self._cv:
            if self.passive or self._owner != me:
                return
            self._owner = None
            self._cv.notify_all()

    def try_resume(self, proc, depth):
        """Non-blocking recheck grant for a woken sleeper (lock held).

        Record mode grants whenever the token is free (first come,
        first served — and the winner is what gets logged, by
        :meth:`commit`).  Replay mode grants only when the log head
        names this pid with a sleep decision.  Returns True on grant.
        """
        me = threading.get_ident()
        with self._cv:
            if self.passive:
                return True
            if self._owner is not None:
                return False
            if self.mode == RECORD:
                self._owner = me
                self._depth = depth
                return True
            head = self._head_locked()
            if (head is not None and head.pid == proc.pid
                    and head.kind in SLEEP_KINDS):
                self._owner = me
                self._depth = depth
                return True
            self._check_stall_locked(proc.pid, None)
            return False

    def commit(self, proc, kind, wchan):
        """Close a granted recheck batch with its outcome decision.

        *kind* is ``W`` (sleep exited), ``E`` (EINTR), or ``Y`` (side
        effects — an alarm fired or the idle loop advanced the clock —
        then back to sleep).  ``W``/``E`` keep the token: the thread
        resumes its interrupted turn.  ``Y`` releases it.
        """
        with self._cv:
            if self.passive:
                return
            if self.mode == RECORD:
                self._append_locked(Decision(kind, proc.pid, wchan))
            else:
                head = self._head_locked()
                if head is None or not head.matches(kind, proc.pid, wchan):
                    self._diverge_locked(proc.pid, (kind, proc.pid, wchan))
                    return
                self._consume_locked()
            if kind == "Y":
                self._owner = None
                self._depth = 0
                self._cv.notify_all()

    def release_grant(self, proc):
        """A granted recheck batch turned out to be a no-op.

        Record mode: release silently — nothing happened, nothing is
        logged.  Replay mode: the grant existed *because* the log head
        named this pid, so a no-op means the machine state differs from
        the recording — a divergence.
        """
        with self._cv:
            if self.passive:
                return
            if self.mode == REPLAY:
                self._diverge_locked(proc.pid, None,
                                     reason="granted recheck was a no-op")
                return
            self._owner = None
            self._depth = 0
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # validation notes (logged/checked under an already-held token)
    # ------------------------------------------------------------------

    def note(self, kind, pid, value):
        """Record (or validate) one ``F``/``P``/``D``/``K`` note."""
        with self._cv:
            if self.passive:
                return
            self.notes_total += 1
            if self.mode == RECORD:
                self._append_locked(Decision(kind, pid, value))
                return
            head = self._head_locked()
            if head is None or not head.matches(kind, pid, value):
                self._diverge_locked(pid, (kind, pid, value))
                return
            self._consume_locked()

    def on_fault(self, tag, errno_label, proc):
        """A fault site decided to fire; returns whether it should.

        Record/replay this as an ``F`` note — and, when this firing is
        the bisect probe's ``flip_fault``-th, suppress it and go passive
        so the run free-runs into its (possibly different) outcome.
        """
        pid = proc.pid if proc is not None else 0
        value = "%s %s" % (tag, errno_label)
        with self._cv:
            if self.passive:
                return True
            index = self._faults_fired
            self._faults_fired += 1
            if self.flip_fault is not None and index == self.flip_fault:
                self._go_passive_locked("flip")
                return False
        self.note("F", pid, value)
        return True

    def machine_crashed(self, tag):
        """The machine halted at *tag*: stop recording, free everyone.

        Called by ``Kernel._crash_locked`` with the kernel lock held,
        *after* ``kernel.crashed`` is set and after the crash's own
        ``F`` note — which is therefore the log's last decision in both
        record and replay.  Going passive releases every thread blocked
        on the turn token (and makes all further begin/end/note calls
        no-ops); each freed thread then sees ``kernel.crashed`` at its
        crash check and dies without logging, so the log tail is
        bit-identical regardless of host scheduling.
        """
        with self._cv:
            if not self.passive:
                self._go_passive_locked("crash")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self):
        """Counters for kernel_stats / MonitorAgent / obs snapshots."""
        with self._cv:
            return {
                "mode": self.mode,
                "decisions": len(self.decisions),
                "position": self.position,
                "notes": self.notes_total,
                "faults_seen": self._faults_fired,
                "passive": self.passive,
                "passive_reason": self.passive_reason,
                "diverged": self.divergence is not None,
            }

    def raise_divergence(self):
        """Raise the recorded :class:`ReplayDivergence`, if any."""
        if self.divergence is not None:
            raise self.divergence

    # ------------------------------------------------------------------
    # internals (call with self._cv held)
    # ------------------------------------------------------------------

    def _head_locked(self):
        if self.position < len(self.decisions):
            return self.decisions[self.position]
        return None

    def _append_locked(self, decision):
        self.decisions.append(decision)
        self._last_progress = time.monotonic()

    def _consume_locked(self):
        self.position += 1
        self._last_progress = time.monotonic()
        self._cv.notify_all()

    def _check_stall_locked(self, pid, got):
        if time.monotonic() - self._last_progress > self.stall_seconds:
            self._diverge_locked(pid, got,
                                 reason="stalled: no thread can consume "
                                        "the log head")

    def _diverge_locked(self, pid, got, reason=""):
        if self.divergence is None:
            span = self._span_of(pid)
            self.divergence = ReplayDivergence(
                self.position, self._head_locked(), got,
                pid=pid, span=span, reason=reason)
            kernel = self.kernel
            if kernel is not None and kernel.obs is not None:
                kernel.obs.emit(ev.REPLAY_DIVERGE, _RecorderProc(),
                                "decision %d" % self.position,
                                str(self.divergence))
        self._go_passive_locked("divergence")

    def _go_passive_locked(self, reason):
        self.passive = True
        self.passive_reason = reason
        self._owner = None
        self._depth = 0
        self._cv.notify_all()

    def _span_of(self, pid):
        kernel = self.kernel
        if kernel is None or kernel.obs is None or kernel.obs.spans is None:
            return 0
        stack = kernel.obs.spans._stacks.get(pid)
        return stack[-1].sid if stack else 0

    def _notify_sleepers(self):
        # Token released outside the kernel lock (trap exit): wake the
        # sleep queue so a sleeper whose decision is now at the log head
        # rechecks immediately instead of on its next 50 ms poll.
        kernel = self.kernel
        if kernel is not None:
            with kernel._sleepq:
                kernel._sleepq.notify_all()
