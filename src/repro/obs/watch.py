"""Declarative watchpoints over the metrics registry.

A :class:`WatchSet` holds rules written in a one-line-per-rule text
grammar and evaluates them at metric-flush points on the trap spine —
every ``interval_usec`` of *virtual* time, so evaluation cadence is a
property of the run, not of the host.  A rule that fires emits a
``watch.trip`` obs event, bumps the ``("watch.trip", <rule>)`` counter,
and can optionally post a signal at the offending process.

Rule grammar (``#`` comments and blank lines ignored)::

    counter_rate    <key>  <op> <value> [signal <signum>]
    histogram_p99   <key>  <op> <value> [signal <signum>]
    gauge_threshold <key>  <op> <value> [signal <signum>]

* ``<key>`` names a metrics-registry entry with its tuple parts joined
  by ``|`` (``trap|read``, ``trap.vusec|open``) — the same encoding
  :meth:`repro.obs.metrics.MetricsRegistry.snapshot` uses.  A ``<pid>``
  placeholder part (``trap.pid|<pid>|read``) makes the rule per-process:
  every matching pid is evaluated separately and a trip names the
  offender (which is who an attached ``signal`` clause targets).
* ``counter_rate`` compares the counter's increase per virtual second
  since the previous evaluation; ``gauge_threshold`` compares its
  current value; ``histogram_p99`` compares the 99th-percentile bucket
  bound of a histogram.
* ``<op>`` is ``>`` ``>=`` ``<`` ``<=``; ``<value>`` is a float.

Evaluation is armoured: a rule that raises counts an error and is
skipped, never panicking the machine — the property the chaos harness
fuzzes with :meth:`WatchSet.random`.  Pay-per-use as everywhere:
``kernel.watches`` is ``None`` by default, one ``is None`` test per
flush point, and rules read the registry without ever calling back
into lock-acquiring kernel methods (evaluation runs under the kernel
lock, so trips post signals with ``proc.post`` + ``kernel.wakeup``
directly).
"""

import random as _random_mod

from repro.obs import events as ev

#: default virtual-time distance between rule evaluations (µs)
DEFAULT_INTERVAL_USEC = 10_000

KINDS = ("counter_rate", "histogram_p99", "gauge_threshold")

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


class WatchRule:
    """One parsed rule plus its evaluation state."""

    __slots__ = ("kind", "key", "op", "value", "signum", "line",
                 "trips", "errors", "_prev")

    def __init__(self, kind, key, op, value, signum=0):
        if kind not in KINDS:
            raise ValueError("unknown watch kind %r" % (kind,))
        if op not in _OPS:
            raise ValueError("unknown comparator %r" % (op,))
        self.kind = kind
        self.key = tuple(key.split("|"))
        self.op = op
        self.value = float(value)
        self.signum = int(signum)
        self.line = "%s %s %s %g%s" % (
            kind, key, op, self.value,
            " signal %d" % self.signum if self.signum else "")
        self.trips = 0
        self.errors = 0
        #: per-instance previous counter values for counter_rate,
        #: keyed by pid (0 for machine-level rules)
        self._prev = {}

    @property
    def per_pid(self):
        return "<pid>" in self.key

    def _keys_for(self, metrics):
        """Concrete (pid, tuple-key) pairs this rule reads right now."""
        if not self.per_pid:
            return [(0, self.key)]
        index = self.key.index("<pid>")
        out = []
        with metrics._lock:
            source = (metrics.histograms if self.kind == "histogram_p99"
                      else metrics.counters)
            for key in source:
                if len(key) != len(self.key):
                    continue
                if all(a == b for i, (a, b) in enumerate(zip(key, self.key))
                       if i != index):
                    try:
                        pid = int(key[index])
                    except (TypeError, ValueError):
                        continue
                    out.append((pid, key))
        return out

    def evaluate(self, metrics, dt_usec):
        """Yield ``(pid, observed)`` for every firing of this rule."""
        for pid, key in self._keys_for(metrics):
            if self.kind == "histogram_p99":
                hist = metrics.histogram(key)
                if hist is None:
                    continue
                observed = _p99(hist)
            elif self.kind == "gauge_threshold":
                observed = metrics.counter(key)
            else:  # counter_rate
                current = metrics.counter(key)
                prev = self._prev.get(pid)
                self._prev[pid] = current
                if prev is None or dt_usec <= 0:
                    continue
                observed = (current - prev) * 1e6 / dt_usec
            if _OPS[self.op](observed, self.value):
                yield pid, observed


def _p99(hist):
    """The 99th-percentile bucket upper bound of *hist* (µs)."""
    from repro.obs.metrics import BUCKET_BOUNDS

    if not hist.count:
        return 0.0
    target = hist.count * 0.99
    seen = 0
    for bound, count in zip(BUCKET_BOUNDS, hist.counts):
        seen += count
        if seen >= target:
            return float(bound)
    return float(hist.max if hist.max is not None else BUCKET_BOUNDS[-1])


class WatchSet:
    """A set of watch rules attached to a kernel's flush points."""

    def __init__(self, rules=(), interval_usec=DEFAULT_INTERVAL_USEC):
        self.rules = list(rules)
        self.interval_usec = interval_usec
        self.kernel = None
        self.evals = 0
        self.trip_total = 0
        self.error_total = 0
        self._next_eval = 0
        self._last_eval = 0
        self._busy = False

    # -- construction ----------------------------------------------------

    @classmethod
    def parse(cls, text, interval_usec=DEFAULT_INTERVAL_USEC):
        """Build a set from the text grammar (see the module docstring)."""
        rules = []
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            signum = 0
            if len(parts) >= 6 and parts[-2] == "signal":
                signum = int(parts[-1])
                parts = parts[:-2]
            if len(parts) != 4:
                raise ValueError("watch line %d: expected "
                                 "'<kind> <key> <op> <value>', got %r"
                                 % (lineno, raw))
            kind, key, op, value = parts
            rules.append(WatchRule(kind, key, op, value, signum))
        return cls(rules, interval_usec=interval_usec)

    @classmethod
    def random(cls, seed, count=8, interval_usec=DEFAULT_INTERVAL_USEC):
        """A seeded fuzz set for the chaos harness.

        Rules are drawn over real and nonsense keys, absurd and
        plausible thresholds, and occasional signal clauses — the
        machine must survive all of them (trips included) without a
        panic.
        """
        rng = _random_mod.Random(seed)
        keys = ["trap|read", "trap|write", "trap|open", "trap|nosuch",
                "trap.vusec|read", "trap.vusec|stat", "htg|write",
                "trap.pid|<pid>|read", "trap.pid|<pid>|write",
                "bogus|key", "trap.error|open|ENOENT"]
        rules = []
        for _ in range(count):
            kind = rng.choice(KINDS)
            key = rng.choice(keys)
            op = rng.choice(list(_OPS))
            value = rng.choice([0, 1, 10, 1e3, 1e6, -5, 0.5])
            signum = rng.choice([0, 0, 0, 30, 16])  # mostly signal-less
            rules.append(WatchRule(kind, key, op, value, signum))
        return cls(rules, interval_usec=interval_usec)

    # -- lifecycle -------------------------------------------------------

    def attach(self, kernel):
        """Install on *kernel*; first evaluation one interval from now."""
        self.kernel = kernel
        now = kernel.clock.usec()
        self._last_eval = now
        self._next_eval = now + self.interval_usec
        kernel.watches = self
        return self

    def detach(self):
        """Remove this set from its kernel; evaluation stops immediately."""
        kernel = self.kernel
        if kernel is not None and kernel.watches is self:
            kernel.watches = None
        return self

    # -- evaluation (kernel lock held) -----------------------------------

    def maybe_evaluate(self, kernel, proc):
        """The flush-point hook: evaluate if an interval has elapsed."""
        if kernel.clock._usec < self._next_eval or self._busy:
            return
        self._busy = True
        try:
            self._evaluate(kernel, proc)
        finally:
            self._busy = False

    def _evaluate(self, kernel, proc):
        now = kernel.clock._usec
        dt = now - self._last_eval
        self._last_eval = now
        self._next_eval = now + self.interval_usec
        self.evals += 1
        obs = kernel.obs
        metrics = obs.metrics if obs is not None else None
        for rule in self.rules:
            try:
                if metrics is None:
                    continue
                for pid, observed in rule.evaluate(metrics, dt):
                    self._trip(kernel, proc, rule, pid, observed)
            except Exception:
                # Armour: a malformed rule (fuzzed thresholds, stale
                # keys, bad pids) must never take the machine down.
                rule.errors += 1
                self.error_total += 1

    def _trip(self, kernel, proc, rule, pid, observed):
        rule.trips += 1
        self.trip_total += 1
        target = kernel._procs.get(pid) if pid else None
        obs = kernel.obs
        if obs is not None:
            if obs.metrics_on:
                obs.metrics.inc(("watch.trip", rule.line))
            about = target if target is not None else proc
            if obs.wants(about):
                obs.emit(ev.WATCH_TRIP, about, rule.line,
                         "observed %g" % observed, link_pid=pid)
        if rule.signum and target is not None:
            # The lock is held: post directly and prod sleepers, never
            # through post_signal (which would re-acquire the lock).
            target.post(rule.signum)
            kernel.wakeup()

    # -- reporting -------------------------------------------------------

    def stats(self):
        """Counters for the ``kernel_stats`` payload's watch section."""
        return {
            "enabled": True,
            "rules": len(self.rules),
            "interval_usec": self.interval_usec,
            "evals": self.evals,
            "trips": self.trip_total,
            "errors": self.error_total,
        }

    def describe(self):
        """The rule set back as grammar text (round-trips via parse)."""
        return "\n".join(rule.line for rule in self.rules) + "\n"


def enable_watches(kernel, spec, interval_usec=DEFAULT_INTERVAL_USEC):
    """Parse *spec* (grammar text or a WatchSet) and attach it."""
    watches = (spec if isinstance(spec, WatchSet)
               else WatchSet.parse(spec, interval_usec=interval_usec))
    return watches.attach(kernel)


def disable_watches(kernel):
    """Detach the kernel's watch set; returns it (or None)."""
    watches = kernel.watches
    if watches is not None:
        watches.detach()
    return watches
