"""A simulated-time sampling profiler over the trap spine.

Host profilers sample on wall-clock timers; this one samples on the
*virtual* clock, which is the only clock the simulated machine agrees
on.  Every point where the kernel advances virtual time — the 100 µs
trap tick in :meth:`repro.kernel.kernel.Kernel.do_syscall` and the trap
fast paths, and the arbitrary advances of ``consume_cpu`` — asks the
profiler whether the advance crossed a sample boundary (a multiple of
``interval_usec``).  Each crossing charges one sample to the current
process's *layer stack*:

* ``user`` — the base frame every stack starts with;
* ``agent:<layer>`` — one frame per toolkit agent currently running a
  handler for the process (pushed/popped by
  ``Agent._emulation_entry``, so stacked agents nest naturally);
* ``kernel:<name>`` — the leaf frame while the kernel executes system
  call *name*.

Because sample points derive from the virtual clock and the per-pid
agent stacks — never from host time — a profile is a pure function of
the run: record/replay reproduces it bit for bit, and two runs of a
deterministic workload profile identically.

Pay-per-use: ``kernel.profiler`` is ``None`` by default and every hook
site is a single ``is None`` test.  While a profiler is attached the
compiled agent-stack dispatch stands down (flat chains skip the
``_emulation_entry`` frames the profiler attributes cost to), exactly
as it does for the recorder and dfstrace.

Output formats (see ``scripts/profile.py`` for the CLI):

* :meth:`Profiler.collapsed` — Brendan-Gregg collapsed stacks
  (``user;agent:trace;kernel:read 42``), flamegraph.pl-compatible;
* :meth:`Profiler.table` — per-frame self/total sample costs;
* :meth:`Profiler.chrome_counters` — a Chrome-trace counter track of
  samples per time bucket, mergeable into ``trace_timeline`` output.
"""

from repro.kernel.clock import TRAP_TICK_USEC

#: default virtual-time distance between samples (µs); every 10th trap
#: tick lands on a boundary, so sampling cost stays off the common path
DEFAULT_INTERVAL_USEC = 1000


class Profiler:
    """Virtual-clock sampling state for one kernel."""

    def __init__(self, interval_usec=DEFAULT_INTERVAL_USEC):
        if interval_usec <= 0:
            raise ValueError("interval_usec must be positive")
        self.interval_usec = interval_usec
        self.kernel = None
        #: (pid, stack tuple) -> sample count
        self.samples = {}
        #: total samples taken
        self.sample_total = 0
        #: virtual-time bucket index -> samples in that bucket (the
        #: Chrome counter track); bucket width is ``interval_usec``
        self.timeline = {}
        #: pid -> list of live agent frames (leaf last); each list is
        #: only touched by the thread running that process, so no lock
        self._frames = {}
        #: virtual usec at attach, for relative timeline export
        self.start_usec = 0

    # -- lifecycle -------------------------------------------------------

    def attach(self, kernel):
        """Install on *kernel* (replacing any previous profiler)."""
        from repro.kernel.compile import note_down_mutation

        self.kernel = kernel
        self.start_usec = kernel.clock.usec()
        kernel.profiler = self
        # Compiled flat chains bypass the agent-frame push/pop; retire
        # them machine-wide so attribution stays truthful.
        note_down_mutation()
        for proc in kernel._procs.values():
            proc.compiled_dispatch = None
        return self

    def detach(self):
        """Remove from the kernel; collected samples are kept."""
        kernel = self.kernel
        if kernel is not None and kernel.profiler is self:
            kernel.profiler = None
        return self

    # -- the hot hooks (called with the kernel lock held) ----------------

    def sample_tick(self, proc, frame):
        """Account the trap tick that just advanced the clock.

        Called immediately after ``clock.tick()`` on the dispatch paths;
        the tick's 100 µs window is charged to *frame* (the
        ``kernel:<name>`` leaf) atop the process's current agent stack
        whenever the window crossed a sample boundary.
        """
        now = self.kernel.clock._usec
        interval = self.interval_usec
        crossed = now // interval - (now - TRAP_TICK_USEC) // interval
        if crossed:
            self._charge(proc, frame, crossed, now)

    def sample_span(self, proc, frame, start_usec):
        """Account an arbitrary virtual-time advance ``[start, now)``.

        ``consume_cpu`` uses this: the whole burned span is charged to
        the process's current stack (*frame* is ``None`` for pure user
        time), one sample per boundary crossed.
        """
        now = self.kernel.clock._usec
        interval = self.interval_usec
        crossed = now // interval - start_usec // interval
        if crossed:
            self._charge(proc, frame, crossed, now)

    def _charge(self, proc, frame, crossed, now):
        frames = self._frames.get(proc.pid)
        stack = ("user",)
        if frames:
            stack += tuple(frames)
        if frame is not None:
            stack += (frame,)
        key = (proc.pid, stack)
        self.samples[key] = self.samples.get(key, 0) + crossed
        self.sample_total += crossed
        bucket = now // self.interval_usec
        self.timeline[bucket] = self.timeline.get(bucket, 0) + crossed

    # -- agent frame maintenance (called from the client's thread) -------

    def push(self, pid, frame):
        """Enter an agent handler frame for *pid*."""
        self._frames.setdefault(pid, []).append(frame)

    def pop(self, pid):
        """Leave the innermost agent handler frame for *pid*."""
        frames = self._frames.get(pid)
        if frames:
            frames.pop()

    # -- exports ---------------------------------------------------------

    def collapsed(self, per_pid=False):
        """Collapsed-stack lines (``frame;frame count``), sorted.

        With *per_pid* true, stacks are prefixed with ``pid<N>`` so one
        flamegraph separates processes; the default folds all processes
        together (the usual whole-machine view).
        """
        folded = {}
        for (pid, stack), count in self.samples.items():
            if per_pid:
                stack = ("pid%d" % pid,) + stack
            folded[stack] = folded.get(stack, 0) + count
        return [
            "%s %d" % (";".join(stack), count)
            for stack, count in sorted(folded.items())
        ]

    def table(self):
        """Per-frame cost rows: ``(frame, self_samples, total_samples)``.

        *self* counts samples where the frame is the stack leaf; *total*
        counts samples where it appears anywhere — the flamegraph
        width.  Rows are sorted by total, then frame name.
        """
        self_counts = {}
        total_counts = {}
        for (_pid, stack), count in self.samples.items():
            leaf = stack[-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + count
            for frame in set(stack):
                total_counts[frame] = total_counts.get(frame, 0) + count
        return sorted(
            ((frame, self_counts.get(frame, 0), total)
             for frame, total in total_counts.items()),
            key=lambda row: (-row[2], row[0]),
        )

    def chrome_counters(self, name="profile.samples"):
        """The timeline as Chrome-trace counter events (``ph: "C"``)."""
        interval = self.interval_usec
        return [
            {
                "name": name,
                "ph": "C",
                "ts": bucket * interval,
                "pid": 0,
                "args": {"samples": count},
            }
            for bucket, count in sorted(self.timeline.items())
        ]

    def stats(self):
        """Counters for the ``kernel_stats`` payload's profile section."""
        return {
            "enabled": True,
            "interval_usec": self.interval_usec,
            "samples": self.sample_total,
            "stacks": len(self.samples),
        }


def enable_profile(kernel, interval_usec=DEFAULT_INTERVAL_USEC):
    """Attach a fresh :class:`Profiler` to *kernel*; returns it.

    Idempotent in the useful sense: an already-attached profiler with
    the same interval is kept (its samples continue accumulating).
    """
    prof = kernel.profiler
    if prof is not None and prof.interval_usec == interval_usec:
        return prof
    return Profiler(interval_usec).attach(kernel)


def disable_profile(kernel):
    """Detach the kernel's profiler; returns it (or None) with its data."""
    prof = kernel.profiler
    if prof is not None:
        prof.detach()
    return prof
