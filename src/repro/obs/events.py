"""Typed kernel events and the event bus.

The observability layer describes everything the trap spine does as a
small taxonomy of *events* — the in-band record of where time and calls
go, which the paper's tables reconstruct from the outside.  One event is
one :class:`Event`; the set of kinds is fixed (``KINDS``) so consumers
can switch on them without string guessing:

``trap.agent``
    A system call trap entered and was redirected to an agent handler
    (the ``task_set_emulation`` path).
``trap.kernel``
    A trap entered and went straight to the kernel (the pay-per-use
    fast path — no agent registered for the number).
``trap.ret``
    The trap returned (detail carries the result or errno, and the
    virtual-clock latency in microseconds).
``htg.downcall``
    An agent bypassed interposition with ``htg_unix_syscall``.
``signal.upcall``
    An incoming signal was routed to an agent's redirection first.
``signal.deliver``
    A signal reached the application's own disposition.
``proc.fork`` / ``proc.execve`` / ``proc.exit``
    Process lifecycle; ``proc.execve`` distinguishes the native call
    from the toolkit's ``jump_to_image`` in its detail field.
``pipe.block`` / ``pipe.wakeup``
    A process blocked on (and was later woken from) a pipe end.
``guard.fault`` / ``guard.kill`` / ``guard.quarantine``
    Agent fault containment (see :mod:`repro.toolkit.guard`): an agent
    handler raised an unexpected exception and was contained; the
    containment policy killed the client process; an agent crossed its
    fault budget and was ejected from the interposition stack.
``remote.stall``
    A :class:`~repro.toolkit.remote.SeparateSpaceAgent` IPC watchdog
    fired: the agent task died mid-call, missed its reply deadline, or
    failed to stop at shutdown.
``fault.inject``
    A kernel fault site (see :mod:`repro.kernel.faultsite`) injected an
    error; the name field carries the site tag.
``record.start`` / ``record.stop``
    A :class:`~repro.obs.recorder.Recorder` attached to the kernel in
    record mode (``start``) or replay mode (``stop`` — the log is being
    consumed, not grown).
``replay.diverge``
    Replay departed from the recorded execution; the detail carries the
    rendered :class:`~repro.obs.recorder.ReplayDivergence`.

Events are deliberately flat — integers and strings only — so the same
object serves the ktrace ring buffer, bus subscribers, and the JSON-lines
exporter without translation.

When span tracing is on (see :mod:`repro.obs.spans`), two extra integer
fields are stamped at emission: ``span`` (the id of the causal span this
event opens, closes, or belongs to) and ``cause`` (the sequence number
of the event that causally precedes this one across processes — the
``proc.fork`` behind a child's first event, the waker's call behind a
``pipe.wakeup``, the ``signal.upcall`` behind a ``signal.deliver``).
Both default to 0 and stay 0 with tracing off, so the record format —
ring buffer, bus, and JSON lines alike — is unchanged when unused.
"""

TRAP_AGENT = "trap.agent"
TRAP_KERNEL = "trap.kernel"
TRAP_RET = "trap.ret"
HTG = "htg.downcall"
SIG_UPCALL = "signal.upcall"
SIG_DELIVER = "signal.deliver"
PROC_FORK = "proc.fork"
PROC_EXECVE = "proc.execve"
PROC_EXIT = "proc.exit"
PIPE_BLOCK = "pipe.block"
PIPE_WAKEUP = "pipe.wakeup"
GUARD_FAULT = "guard.fault"
GUARD_KILL = "guard.kill"
GUARD_QUARANTINE = "guard.quarantine"
REMOTE_STALL = "remote.stall"
FAULT_INJECT = "fault.inject"
RECORD_START = "record.start"
RECORD_STOP = "record.stop"
REPLAY_DIVERGE = "replay.diverge"
WATCH_TRIP = "watch.trip"
KERNEL_CRASH = "kernel.crash"
JOURNAL_REPLAY = "journal.replay"

#: every event kind the kernel emits, in rough trap-spine order
KINDS = (
    TRAP_AGENT,
    TRAP_KERNEL,
    TRAP_RET,
    HTG,
    SIG_UPCALL,
    SIG_DELIVER,
    PROC_FORK,
    PROC_EXECVE,
    PROC_EXIT,
    PIPE_BLOCK,
    PIPE_WAKEUP,
    GUARD_FAULT,
    GUARD_KILL,
    GUARD_QUARANTINE,
    REMOTE_STALL,
    FAULT_INJECT,
    RECORD_START,
    RECORD_STOP,
    REPLAY_DIVERGE,
    WATCH_TRIP,
    KERNEL_CRASH,
    JOURNAL_REPLAY,
)


class Event:
    """One observability event (also the ktrace record format).

    ``seq`` is a global sequence number assigned at emission, so records
    drained from the ring buffer or collected from the bus can be put in
    emission order even across processes.  ``time_usec`` is the virtual
    clock; ``pid``/``comm`` identify the process; ``name`` is the system
    call or signal name (empty for lifecycle events); ``detail`` is a
    short pre-formatted string.  ``span`` and ``cause`` are the span id
    and causal-predecessor sequence number stamped by span tracing
    (both 0 when tracing is off — see the module docstring).
    """

    __slots__ = ("seq", "time_usec", "pid", "comm", "kind", "name", "detail",
                 "span", "cause")

    def __init__(self, seq, time_usec, pid, comm, kind, name="", detail="",
                 span=0, cause=0):
        self.seq = seq
        self.time_usec = time_usec
        self.pid = pid
        self.comm = comm
        self.kind = kind
        self.name = name
        self.detail = detail
        self.span = span
        self.cause = cause

    def to_tuple(self):
        """The event as a plain tuple (the ``ktrace_read`` wire format).

        Span tracing off (span and cause both 0) keeps the historic
        7-field record; with ids stamped the tuple grows to 9 fields.
        Either form round-trips through :meth:`from_tuple`.
        """
        base = (self.seq, self.time_usec, self.pid, self.comm,
                self.kind, self.name, self.detail)
        if self.span or self.cause:
            return base + (self.span, self.cause)
        return base

    @classmethod
    def from_tuple(cls, record):
        """Rebuild an event from its :meth:`to_tuple` form (7 or 9 fields)."""
        return cls(*record)

    def __repr__(self):
        return "<Event #%d %s pid=%d %s %s>" % (
            self.seq, self.kind, self.pid, self.name, self.detail)


class EventBus:
    """Synchronous fan-out of events to registered subscribers.

    Subscribers are plain callables ``fn(event)`` run inline at the
    emission site (the kernel's threads), so they must be fast and must
    not call back into the kernel.  With no subscribers the bus costs
    one truthiness test per emission decision.
    """

    __slots__ = ("_subs",)

    def __init__(self):
        self._subs = []

    def subscribe(self, fn):
        """Register *fn* to receive every subsequent event."""
        self._subs.append(fn)
        return fn

    def unsubscribe(self, fn):
        """Remove a subscriber previously registered with :meth:`subscribe`."""
        self._subs.remove(fn)

    def active(self):
        """True when at least one subscriber is registered."""
        return bool(self._subs)

    def publish(self, event):
        """Deliver *event* to every subscriber, in registration order."""
        for fn in self._subs:
            fn(event)
