"""Counters and latency histograms for per-syscall / per-layer cost.

The registry is the in-band, runtime version of the paper's cost
attribution: counters keyed by tuples like ``("trap", "open")`` and
histograms of virtual-clock (or host wall-clock) microseconds keyed by
``("trap.vusec", "open")`` or ``("layer.usec", "symbolic")``.  Keys are
plain tuples whose first element names the metric and whose remaining
elements are labels (syscall name, pid, toolkit layer), so consumers can
slice with :meth:`MetricsRegistry.group` without a query language.

Well-known keys emitted by the kernel instrumentation are documented in
``docs/OBSERVABILITY.md``.
"""

import threading

#: histogram bucket upper bounds in microseconds (powers of two); one
#: overflow bucket is kept beyond the last bound
BUCKET_BOUNDS = tuple(2 ** i for i in range(21))


class Histogram:
    """A fixed-bucket latency histogram over microsecond observations."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self):
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, usec):
        """Record one observation of *usec* microseconds."""
        index = 0
        for bound in BUCKET_BOUNDS:
            if usec <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += usec
        if self.min is None or usec < self.min:
            self.min = usec
        if self.max is None or usec > self.max:
            self.max = usec

    def mean(self):
        """The mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merged(self, other):
        """A new histogram combining this one with *other*."""
        out = Histogram()
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.total = self.total + other.total
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        out.min = min(mins) if mins else None
        out.max = max(maxs) if maxs else None
        return out

    def snapshot(self):
        """The histogram as a plain dict (for the exporters)."""
        buckets = {}
        for bound, count in zip(BUCKET_BOUNDS, self.counts):
            if count:
                buckets["le_%d" % bound] = count
        if self.counts[-1]:
            buckets["overflow"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Tuple-keyed counters and histograms, safe across kernel threads.

    Simulated processes run on host threads, so updates take a small
    internal lock; the lock is a leaf (the registry never calls out),
    which keeps it safe to update from under the kernel lock and from
    the lock-free trap path alike.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.counters = {}
        self.histograms = {}

    # -- updates ---------------------------------------------------------

    def inc(self, key, n=1):
        """Add *n* to the counter at *key* (a tuple)."""
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + n

    def observe(self, key, usec):
        """Record *usec* in the histogram at *key* (a tuple)."""
        with self._lock:
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = Histogram()
            hist.observe(usec)

    # -- reads -----------------------------------------------------------

    def counter(self, key, default=0):
        """The counter value at *key* (or *default*)."""
        with self._lock:
            return self.counters.get(key, default)

    def histogram(self, key):
        """The histogram at *key* (or ``None``)."""
        with self._lock:
            return self.histograms.get(key)

    def group(self, metric):
        """Counters under *metric*, keyed by their remaining labels.

        A single remaining label is unwrapped (``("calls", "open")``
        appears as ``"open"``); multiple labels stay a tuple.
        """
        out = {}
        with self._lock:
            for key, value in self.counters.items():
                if key and key[0] == metric:
                    rest = key[1:]
                    out[rest[0] if len(rest) == 1 else rest] = value
        return out

    def histogram_group(self, metric, label_len=None):
        """Histograms under *metric*, keyed by their remaining labels.

        *label_len* restricts to keys with exactly that many labels
        (useful when a metric is recorded at several aggregation
        levels, like ``("layer.usec", layer)`` and
        ``("layer.usec", layer, name)``).
        """
        out = {}
        with self._lock:
            for key, hist in self.histograms.items():
                if not key or key[0] != metric:
                    continue
                rest = key[1:]
                if label_len is not None and len(rest) != label_len:
                    continue
                out[rest[0] if len(rest) == 1 else rest] = hist
        return out

    def snapshot(self):
        """Every counter and histogram as one plain, JSON-able dict.

        Tuple keys are joined with ``|`` (``("trap", "open")`` becomes
        ``"trap|open"``).
        """
        with self._lock:
            counters = {
                "|".join(str(part) for part in key): value
                for key, value in self.counters.items()
            }
            histograms = {
                "|".join(str(part) for part in key): hist.snapshot()
                for key, hist in self.histograms.items()
            }
        return {"counters": counters, "histograms": histograms}

    def clear(self):
        """Drop every counter and histogram."""
        with self._lock:
            self.counters.clear()
            self.histograms.clear()
