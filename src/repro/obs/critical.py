"""Critical-path analysis over an assembled span trace.

Given a finished workload's :class:`~repro.obs.spans.SpanAssembler`,
:func:`critical_path` walks the causal trace *backward* from its last
event and reports the longest dependency chain — the sequence of
intervals that actually gated completion — with every microsecond of
virtual-clock time on that chain attributed to one of five buckets:

``kernel``
    Uninterposed trap handling and agents' ``htg_unix_syscall``
    downcalls (real kernel work, whoever asked for it).
``agent``
    Time inside interposed (``trap.agent``) spans not covered by a
    nested downcall — the interposition machinery itself.  Agent Python
    code is free on the virtual clock (only syscall ticks advance it),
    so this bucket is the *structural* agent cost; the host-time cost
    per toolkit layer lives in the ``("layer.usec", ...)`` histograms
    and is reported alongside (see :func:`repro.obs.export.layer_rows`).
``pipe-blocked``
    Time asleep on a pipe end that the walk could not hand off to the
    waker (no waker known — e.g. woken by a close — or a causal cycle
    guard fired).  When the waker *is* known, the walk jumps to the
    waker's timeline instead, which is the whole point: the blocked
    process was not the critical path, the process it waited for was.
``signal-blocked``
    Time between an agent ``signal.upcall`` and the application-level
    ``signal.deliver`` not covered by other activity of the pid.
``user``
    Gaps between spans on the chain (expected ~0 here: simulated
    programs consume no virtual time between traps).

The walk tiles the report's window ``[start_usec, end_usec]`` with
contiguous, non-overlapping segments, so the bucket totals always sum
to exactly the path's elapsed virtual time — attribution is 100% by
construction, the in-band analogue of the paper's ablation tables that
account for every microsecond of measured overhead.
"""

from bisect import bisect_left

from repro.obs import events as ev

#: span kind -> critical-path bucket
SPAN_BUCKET = {
    ev.TRAP_KERNEL: "kernel",
    ev.TRAP_AGENT: "agent",
    "htg": "kernel",
    "pipe.blocked": "pipe-blocked",
    "signal.blocked": "signal-blocked",
}

#: every bucket a report can contain, in display order
BUCKETS = ("kernel", "agent", "pipe-blocked", "signal-blocked", "user")

#: trap names that park the caller until a child finishes — the walk
#: hands off from a waiting parent to the child that was actually
#: running, the same way it hands a pipe sleeper off to its waker
WAIT_NAMES = frozenset({"wait", "wait4", "waitpid"})


class Segment:
    """One contiguous piece of the critical path on one pid's timeline."""

    __slots__ = ("start_usec", "end_usec", "pid", "bucket", "name")

    def __init__(self, start_usec, end_usec, pid, bucket, name=""):
        self.start_usec = start_usec
        self.end_usec = end_usec
        self.pid = pid
        self.bucket = bucket
        self.name = name

    def duration_usec(self):
        """The segment's length on the virtual clock."""
        return self.end_usec - self.start_usec

    def __repr__(self):
        return "<Segment pid=%d %s %s [%d..%d]>" % (
            self.pid, self.bucket, self.name,
            self.start_usec, self.end_usec)


class CriticalPathReport:
    """The result of :func:`critical_path`.

    ``segments`` run backward in walk order (latest first) and tile
    ``[start_usec, end_usec]`` exactly; ``buckets`` maps bucket name to
    total virtual microseconds; ``hops`` counts cross-process jumps the
    walk took (pipe-waker, wait-to-child, and fork-parent handoffs).
    """

    def __init__(self, start_usec, end_usec, segments, hops):
        self.start_usec = start_usec
        self.end_usec = end_usec
        self.segments = segments
        self.hops = hops
        self.buckets = {}
        for seg in segments:
            self.buckets[seg.bucket] = (self.buckets.get(seg.bucket, 0)
                                        + seg.duration_usec())

    def total_usec(self):
        """The path's elapsed virtual time (equals the bucket sum)."""
        return self.end_usec - self.start_usec

    def to_dict(self):
        """The report as a plain JSON-ready dict."""
        return {
            "start_usec": self.start_usec,
            "end_usec": self.end_usec,
            "total_usec": self.total_usec(),
            "hops": self.hops,
            "buckets": {name: self.buckets.get(name, 0) for name in BUCKETS
                        if self.buckets.get(name, 0) or name in self.buckets},
            "segments": len(self.segments),
        }

    def render(self):
        """A small fixed-width text table of the bucket attribution."""
        total = self.total_usec() or 1
        lines = ["critical path: %d usec across %d segment(s), %d hop(s)"
                 % (self.total_usec(), len(self.segments), self.hops)]
        lines.append("%-16s %12s %7s" % ("bucket", "vusec", "share"))
        for name in BUCKETS:
            usec = self.buckets.get(name, 0)
            if not usec and name not in self.buckets:
                continue
            lines.append("%-16s %12d %6.1f%%"
                         % (name, usec, 100.0 * usec / total))
        return "\n".join(lines)


class _Timeline:
    """One pid's flattened, non-overlapping activity intervals."""

    __slots__ = ("intervals", "starts")

    def __init__(self, intervals):
        # (start, end, bucket, name, close_seq, kind) sorted by start
        self.intervals = intervals
        self.starts = [iv[0] for iv in intervals]

    def latest_before(self, t):
        """The last interval starting strictly before *t* (or None)."""
        idx = bisect_left(self.starts, t) - 1
        if idx < 0:
            return None
        return self.intervals[idx]


def _flatten(spans):
    """Per-pid flattened atomic intervals from a list of closed spans.

    Each span is cut into the pieces not covered by its children, so
    every instant of a pid's active time belongs to exactly one
    interval.  ``signal.blocked`` spans can straddle sibling traps
    (delivery happens at trap boundaries), so they are overlaid last
    and claim only time no other span covers.
    """
    by_pid = {}
    for span in spans:
        if span.end_usec is None:
            continue
        by_pid.setdefault(span.pid, []).append(span)
    timelines = {}
    for pid, pid_spans in by_pid.items():
        nested = [s for s in pid_spans if s.kind != "signal.blocked"]
        overlay = [s for s in pid_spans if s.kind == "signal.blocked"]
        children = {}
        for span in nested:
            children.setdefault(span.parent, []).append(span)
        intervals = []
        for span in nested:
            kids = sorted(children.get(span.sid, ()),
                          key=lambda s: s.start_usec)
            bucket = SPAN_BUCKET.get(span.kind, "user")
            cursor = span.start_usec
            for kid in kids:
                if kid.start_usec > cursor:
                    intervals.append((cursor, kid.start_usec, bucket,
                                      span.name, span.close_seq, span.kind))
                cursor = max(cursor, kid.end_usec)
            if span.end_usec > cursor:
                intervals.append((cursor, span.end_usec, bucket,
                                  span.name, span.close_seq, span.kind))
        intervals.sort()
        for span in overlay:
            cursor = span.start_usec
            pieces = []
            for iv in intervals:
                if iv[1] <= cursor or iv[0] >= span.end_usec:
                    continue
                if iv[0] > cursor:
                    pieces.append((cursor, iv[0]))
                cursor = max(cursor, iv[1])
            if span.end_usec > cursor:
                pieces.append((cursor, span.end_usec))
            for start, end in pieces:
                intervals.append((start, end, "signal-blocked", span.name,
                                  span.close_seq, span.kind))
        intervals.sort()
        timelines[pid] = _Timeline(intervals)
    return timelines


def critical_path(assembler, max_steps=1_000_000):
    """Walk the trace backward and attribute the longest dependency chain.

    *assembler* is a :class:`~repro.obs.spans.SpanAssembler` whose
    workload has finished (call :meth:`close_open` first if processes
    never exited).  Returns a :class:`CriticalPathReport`; returns a
    zero-length report when the trace is empty.

    The walk starts at the latest span end anywhere in the trace and
    moves backward through that pid's intervals.  At a pipe-blocked
    interval whose waker is known it *hops* to the waker's timeline
    (the waker was the critical work); at a ``wait``-family trap it
    hops to the forked child with the most recent activity (what the
    parent was parked on); at the start of a pid's life it hops to the
    forking parent.  A visited-set guard breaks causal cycles by
    falling back to honest blocked attribution.
    """
    spans = assembler.finished()
    edges = assembler.all_edges()
    closed = [s for s in spans if s.end_usec is not None]
    if not closed:
        return CriticalPathReport(0, 0, [], 0)
    timelines = _flatten(closed)
    # pipe wakeups: the closing event's seq -> (waker pid, waker usec)
    waker_by_close = {e.dst_seq: (e.src_pid, e.src_usec)
                      for e in edges if e.kind == "pipe"}
    fork_parent = {e.dst_pid: (e.src_pid, e.src_usec)
                   for e in edges if e.kind == "fork"}
    children = {}
    for e in edges:
        if e.kind == "fork":
            children.setdefault(e.src_pid, []).append(e.dst_pid)

    def _busiest(pids, skip, t, floor):
        # The candidate pid with the most recent *productive* activity
        # in (floor, t] — blocked intervals and wait-parks don't count.
        best_pid, best_end = 0, floor
        for pid in pids:
            if pid == skip:
                continue
            timeline = timelines.get(pid)
            iv = timeline.latest_before(t) if timeline is not None else None
            if iv is None:
                continue
            if iv[5] in ("pipe.blocked", "signal.blocked"):
                continue
            if iv[3] in WAIT_NAMES:
                continue
            if min(iv[1], t) > best_end:
                best_pid, best_end = pid, min(iv[1], t)
        return best_pid

    def busiest_child(pid, t, floor):
        # What a parent parked in wait() was actually waiting on.
        return _busiest(children.get(pid, ()), None, t, floor)

    def busiest_other(pid, t, floor):
        # Agent Python is free on the virtual clock, so virtual time
        # inside an agent-residue interval can only be other processes'
        # syscall ticks — find the process that was doing the work.
        return _busiest(timelines, pid, t, floor)
    anchor = max(closed, key=lambda s: (s.end_usec, s.close_seq))
    cur_pid, t = anchor.pid, anchor.end_usec
    end_usec = t
    segments = []
    hops = 0
    visited = set()
    for _ in range(max_steps):
        timeline = timelines.get(cur_pid)
        iv = timeline.latest_before(t) if timeline is not None else None
        if iv is None:
            parent = fork_parent.get(cur_pid)
            if parent is None or parent[1] > t:
                break
            if parent[1] < t:
                segments.append(Segment(parent[1], t, cur_pid, "user"))
                t = parent[1]
            cur_pid = parent[0]
            hops += 1
            continue
        start, end, bucket, name, close_seq, kind = iv
        seg_end = min(end, t)
        if seg_end < t:
            # A gap: this pid was outside every span, so if the clock
            # moved, some other process moved it — follow that process,
            # or attribute honestly to "user" when nobody else was on.
            other = busiest_other(cur_pid, t, seg_end)
            if other and (other, t) not in visited:
                visited.add((other, t))
                cur_pid = other
                hops += 1
                continue
            segments.append(Segment(seg_end, t, cur_pid, "user"))
            t = seg_end
            continue
        if kind == "pipe.blocked":
            waker = waker_by_close.get(close_seq)
            if waker is not None and (waker[0], t) not in visited:
                visited.add((waker[0], t))
                cur_pid = waker[0]
                hops += 1
                continue
        elif name in WAIT_NAMES:
            child = busiest_child(cur_pid, t, start)
            if child and (child, t) not in visited:
                visited.add((child, t))
                cur_pid = child
                hops += 1
                continue
        elif bucket == "agent":
            other = busiest_other(cur_pid, t, start)
            if other and (other, t) not in visited:
                visited.add((other, t))
                cur_pid = other
                hops += 1
                continue
        if start < t:
            segments.append(Segment(start, t, cur_pid, bucket, name))
        t = start
    return CriticalPathReport(t, end_usec, segments, hops)
