"""Pay-per-use observability for the simulated kernel.

The package is the runtime answer to the paper's cost-attribution
tables: an event bus with a fixed taxonomy of trap-spine events
(:mod:`repro.obs.events`), a tuple-keyed metrics registry with
virtual-clock latency histograms (:mod:`repro.obs.metrics`), the
:class:`Observability` switchboard that the kernel consults
(:mod:`repro.obs.core`), the causal span assembler that turns the flat
stream into a cross-process trace (:mod:`repro.obs.spans`), the
critical-path analyzer over that trace (:mod:`repro.obs.critical`),
and exporters for kdump text / JSON lines / Chrome trace-event JSON /
experiment tables (:mod:`repro.obs.export`).

Disabled — the default, ``kernel.obs is None`` — the whole subsystem
costs one attribute test per trap; ``benchmarks/bench_obs_overhead.py``
holds it to that claim.  Enable with::

    from repro import obs
    obs.enable(kernel)                 # metrics only
    obs.enable(kernel, trace_all=True) # plus firehose ktrace
    obs.enable(kernel, spans=True)     # plus causal span assembly

or at construction time with ``Kernel(obs="metrics,trace,spans")``, or
from inside the world with the ``ktrace`` program / syscall.
"""

from repro.obs.core import (Observability, disable, enable,
                            enable_from_spec, is_enabled)
from repro.obs.critical import CriticalPathReport, critical_path
from repro.obs.events import Event, EventBus, KINDS
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import Edge, Span, SpanAssembler

__all__ = [
    "Observability",
    "enable",
    "enable_from_spec",
    "disable",
    "is_enabled",
    "Event",
    "EventBus",
    "KINDS",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Edge",
    "SpanAssembler",
    "CriticalPathReport",
    "critical_path",
]
