"""Time-travel debugging drivers: record, replay, compare, bisect.

This module glues the chaos harness (:mod:`repro.workloads.chaos`) to
the :class:`~repro.obs.recorder.Recorder`: one function records a
seeded scenario into a decision log, one re-executes the log and checks
bit-for-bit fidelity, and one bisects over the recorded fault-site
firings to name the first injection without which the outcome changes.

The fidelity criterion is deliberately external to the recorder: a
replay is *bit-identical* when the full observability event stream
(every ``Event.to_tuple()`` published on the bus, recorder meta events
filtered out) and the scenario report (outcome, status, fault counts,
invariant walk) are equal to the recording's.  The recorder enforces
the total order; these drivers check that enforcing it reproduces the
world.
"""

from repro.obs import events as ev
from repro.obs.recorder import RECORD, REPLAY, Recorder
from repro.workloads.chaos import run_scenario

#: events about the recorder itself — emitted by whichever mode is
#: running, so they are filtered before record/replay streams are
#: compared (both modes emit exactly one at attach, keeping the
#: sequence numbers of every real event aligned)
META_EVENT_KINDS = frozenset(
    {ev.RECORD_START, ev.RECORD_STOP, ev.REPLAY_DIVERGE})


def scenario_meta(seed, policy="fail-open", mechanism="wrapper",
                  workload="files", agent_rate=0.05, site_rate=0.01):
    """The ``.rrlog`` meta block naming a scenario (string values)."""
    return {
        "seed": str(seed),
        "policy": policy,
        "mechanism": mechanism,
        "workload": workload,
        "agent_rate": repr(float(agent_rate)),
        "site_rate": repr(float(site_rate)),
    }


def scenario_kwargs(meta):
    """Parse an ``.rrlog`` meta block back into run_scenario arguments."""
    try:
        return {
            "seed": int(meta["seed"]),
            "policy": meta["policy"],
            "mechanism": meta["mechanism"],
            "workload": meta["workload"],
            "agent_rate": float(meta["agent_rate"]),
            "site_rate": float(meta["site_rate"]),
        }
    except KeyError as err:
        raise ValueError("rrlog meta is missing key %s" % (err,))


class RunResult:
    """One recorded or replayed scenario: report + recorder + events."""

    def __init__(self, report, recorder, events, meta):
        self.report = report
        self.recorder = recorder
        #: the filtered event stream (tuples, recorder meta events out)
        self.events = events
        self.meta = meta

    @property
    def decisions(self):
        return self.recorder.decisions

    def signature(self):
        """The outcome fingerprint bisection compares across replays."""
        report = self.report
        return (report.outcome, report.status, report.passed,
                tuple(sorted(report.violations)))


def _drive(recorder, meta, timeout):
    """Run the scenario named by *meta* with *recorder* installed."""
    events = []

    def on_boot(kernel):
        kernel.obs.bus.subscribe(lambda e: events.append(e.to_tuple()))
        recorder.attach(kernel)

    report = run_scenario(timeout=timeout, obs="metrics",
                          on_boot=on_boot, **scenario_kwargs(meta))
    filtered = [t for t in events if t[4] not in META_EVENT_KINDS]
    return RunResult(report, recorder, filtered, dict(meta))


def record_run(seed, policy="fail-open", mechanism="wrapper",
               workload="files", agent_rate=0.05, site_rate=0.01,
               timeout=60.0):
    """Record one seeded scenario; returns a :class:`RunResult`.

    ``result.decisions`` plus ``result.meta`` are everything
    :func:`repro.obs.rrlog.write_file` needs to persist the run.
    """
    meta = scenario_meta(seed, policy, mechanism, workload,
                         agent_rate, site_rate)
    return _drive(Recorder(mode=RECORD), meta, timeout)


def replay_run(meta, decisions, flip_fault=None, strict=True,
               timeout=60.0, stall_seconds=10.0):
    """Re-execute a recorded scenario; returns a :class:`RunResult`.

    With *strict* (the default) a :class:`ReplayDivergence` detected
    during the run is raised after the world has drained — the recorder
    goes passive at the moment of divergence so threads free-run to
    completion instead of deadlocking, and the structured exception
    surfaces here.  *flip_fault* passes the bisect probe through (a
    flip is deliberate, never a divergence, and never strict-raised).
    """
    recorder = Recorder(mode=REPLAY, log=decisions, flip_fault=flip_fault,
                        stall_seconds=stall_seconds)
    result = _drive(recorder, meta, timeout)
    if strict and flip_fault is None:
        recorder.raise_divergence()
    return result


def compare_runs(recorded, replayed):
    """Differences between a recording and its replay (empty = faithful).

    Compares the filtered event streams element by element, then the
    scenario reports — the determinism proof the tests and the CI
    replay-smoke job assert on.
    """
    differences = []
    a, b = recorded.events, replayed.events
    if len(a) != len(b):
        differences.append("event count: recorded %d, replayed %d"
                           % (len(a), len(b)))
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            differences.append("event %d: recorded %r, replayed %r"
                               % (i, x, y))
            break
    ra, rb = recorded.report.to_dict(), replayed.report.to_dict()
    for key in sorted(set(ra) | set(rb)):
        if ra.get(key) != rb.get(key):
            differences.append("report[%r]: recorded %r, replayed %r"
                               % (key, ra.get(key), rb.get(key)))
    residual = len(replayed.recorder.decisions) - replayed.recorder.position
    if replayed.recorder.divergence is None and residual:
        differences.append("%d recorded decision(s) never consumed"
                           % residual)
    return differences


def verify_roundtrip(seed, policy="fail-open", mechanism="wrapper",
                     workload="files", agent_rate=0.05, site_rate=0.01,
                     timeout=60.0):
    """Record a scenario, replay it, and demand bit-identity.

    Returns ``(recorded, replayed)`` on success; raises
    :class:`ReplayDivergence` (replay departed mid-run) or
    :class:`AssertionError` (streams or reports differ) otherwise.
    """
    recorded = record_run(seed, policy, mechanism, workload,
                          agent_rate, site_rate, timeout=timeout)
    replayed = replay_run(recorded.meta, recorded.decisions,
                          timeout=timeout)
    differences = compare_runs(recorded, replayed)
    if differences:
        raise AssertionError("replay not bit-identical:\n  "
                             + "\n  ".join(differences))
    return recorded, replayed


class BisectResult:
    """Which recorded fault-site firing first changes the outcome."""

    def __init__(self, index, decision, position, baseline, flipped):
        #: 0-based index among ``F`` decisions, or -1 when no flip
        #: changed anything
        self.index = index
        #: the flipped :class:`~repro.obs.rrlog.Decision` (None at -1)
        self.decision = decision
        #: its position in the full decision log (-1 when not found)
        self.position = position
        self.baseline = baseline
        self.flipped = flipped

    @property
    def found(self):
        return self.index >= 0

    def __repr__(self):
        if not self.found:
            return "<BisectResult no fault changes the outcome>"
        return ("<BisectResult fault #%d (%s) at decision %d: %r -> %r>"
                % (self.index, self.decision.value, self.position,
                   self.baseline, self.flipped))


def bisect_run(meta, decisions, timeout=60.0, progress=None):
    """Find the first fault injection the recorded failure depends on.

    Replays the log once faithfully to establish the baseline outcome
    signature, then replays once per recorded ``F`` decision with that
    firing suppressed (``flip_fault=i``): the first flip whose outcome
    signature differs from the baseline is the earliest injection the
    failure needs.  Linear in the fault count — fault streams are short
    even when decision logs are long.  *progress*, when given, is
    called with a one-line status string per replay.
    """
    fault_positions = [i for i, d in enumerate(decisions) if d.kind == "F"]
    baseline = replay_run(meta, decisions, strict=False, timeout=timeout)
    base_sig = baseline.signature()
    if progress is not None:
        progress("baseline replay: %r over %d fault firing(s)"
                 % (base_sig, len(fault_positions)))
    for index, position in enumerate(fault_positions):
        flipped = replay_run(meta, decisions, flip_fault=index,
                             strict=False, timeout=timeout)
        flip_sig = flipped.signature()
        if progress is not None:
            progress("flip %d (%s): %r" % (index, decisions[position].value,
                                           flip_sig))
        if flip_sig != base_sig:
            return BisectResult(index, decisions[position], position,
                                base_sig, flip_sig)
    return BisectResult(-1, None, -1, base_sig, base_sig)
