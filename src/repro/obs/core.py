"""The kernel-wide observability switchboard.

One :class:`Observability` instance per kernel, installed as
``kernel.obs`` by :func:`enable`.  Everything hangs off it: the event
bus, the metrics registry, and the ktrace ring buffer.  The design rule
is the paper's own pay-per-use claim applied to the observer itself:

* **Disabled** (``kernel.obs is None``, the default): every
  instrumentation site in the trap spine is guarded by a single
  attribute load and ``is None`` test — the same order of cost as the
  emulation-vector lookup that makes uninterposed calls free.
* **Enabled**: metrics are updated on every trap, and :class:`Event`
  objects are built only when someone is listening — a bus subscriber,
  a ktrace'd process, or the ``trace_all`` firehose.

``benchmarks/bench_obs_overhead.py`` measures both sides of that claim.
"""

import itertools

from repro.kernel.ktrace import KtraceBuffer
from repro.obs.events import Event, EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanAssembler


class Observability:
    """Event bus + metrics registry + ktrace buffer for one kernel."""

    def __init__(self, kernel, ktrace_capacity=4096, metrics=True,
                 trace_all=False, spans=False):
        self.kernel = kernel
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        #: when False, the trap spine skips counter/histogram updates
        self.metrics_on = metrics
        self.ktrace = KtraceBuffer(ktrace_capacity)
        #: trace every process, ignoring per-process ktrace flags
        self.trace_all = trace_all
        #: the causal span assembler, or None when span tracing is off
        self.spans = SpanAssembler() if spans else None
        self._seq = itertools.count(1)

    # -- emission (called from the instrumented kernel paths) ------------

    def wants(self, proc):
        """True when an event about *proc* would reach any consumer.

        The trap path asks this once per call so that event objects are
        never built just to be dropped.
        """
        return (bool(self.bus._subs) or self.trace_all
                or proc.ktrace_on or self.spans is not None)

    def emit(self, kind, proc, name="", detail="", link_pid=0):
        """Build an event about *proc* and route it to spans + ring + bus.

        *link_pid* names the other process the event causally involves,
        when the emission site knows one: the child pid on ``proc.fork``,
        the waker's pid on ``pipe.wakeup``.  The span assembler (when
        installed) consumes it — and runs *first*, so the span/cause ids
        it stamps onto the event are already present in the record the
        ring buffer keeps and the bus publishes.
        """
        event = Event(next(self._seq), self.kernel.clock.usec(),
                      proc.pid, proc.comm, kind, name, detail)
        if self.spans is not None:
            self.spans.observe(event, link_pid)
        if self.trace_all or proc.ktrace_on:
            self.ktrace.append(event)
        if self.bus._subs:
            self.bus.publish(event)
        return event

    # -- span tracing ----------------------------------------------------

    def enable_spans(self):
        """Install a span assembler (idempotent); returns the assembler."""
        if self.spans is None:
            self.spans = SpanAssembler()
        return self.spans

    def disable_spans(self):
        """Stop span assembly; returns the detached assembler (or None).

        The detached assembler keeps its collected spans and edges for
        export or critical-path analysis.
        """
        spans = self.spans
        self.spans = None
        return spans

    def layer_usec(self, layer, name, usec):
        """Attribute *usec* of host time inside an agent handler to a layer.

        Recorded at both aggregation levels: ``("layer.usec", layer)``
        and ``("layer.usec", layer, name)``, plus the call counter
        ``("agent.call", layer, name)``.  Host (wall-clock) time is used
        because agent handlers burn real CPU the virtual clock never
        sees — this is the same quantity ``bench_ablation_layers``
        measures from the outside.
        """
        if not self.metrics_on:
            return
        metrics = self.metrics
        metrics.observe(("layer.usec", layer), usec)
        metrics.observe(("layer.usec", layer, name), usec)
        metrics.inc(("agent.call", layer, name))

    # -- convenience reads ----------------------------------------------

    def snapshot(self):
        """The metrics registry snapshot plus ktrace buffer statistics.

        Also exports the kernel fast-path counters (name cache hit/miss
        rates, fast-dispatch traps) so one snapshot answers both "what
        did the workload do" and "what did the kernel's caches do".
        The fast-path counters are plain attributes kept hot-path-cheap;
        they are merely *reported* through the registry snapshot here.
        """
        snap = self.metrics.snapshot()
        snap["ktrace"] = {
            "buffered": len(self.ktrace),
            "dropped": self.ktrace.dropped,
            "total": self.ktrace.total,
            "capacity": self.ktrace.capacity,
        }
        kernel = self.kernel
        cache = kernel.namecache
        snap["namecache"] = (cache.stats() if cache is not None
                             else {"enabled": False})
        snap["fastpath"] = {
            "flags": kernel.fastpaths.describe(),
            "trap_total": kernel.trap_total,
            "trap_fast_total": kernel.trap_fast_total,
            "trap_compiled_total": kernel.trap_compiled_total,
            "down_compiled_total": kernel.down_compiled_total,
        }
        snap["spans"] = (self.spans.counts() if self.spans is not None
                         else {"enabled": False})
        recorder = kernel.recorder
        snap["recorder"] = (recorder.stats() if recorder is not None
                            else {"enabled": False})
        return snap


def enable(kernel, ktrace_capacity=4096, metrics=True, trace_all=False,
           spans=False):
    """Switch observability on for *kernel*; returns the instance.

    Idempotent: an already-enabled kernel keeps its instance (the
    capacity and flags of the existing instance win, except *spans*,
    which is additive: asking for spans on an enabled kernel installs
    an assembler via :meth:`Observability.enable_spans`).
    """
    if kernel.obs is None:
        kernel.obs = Observability(kernel, ktrace_capacity=ktrace_capacity,
                                   metrics=metrics, trace_all=trace_all,
                                   spans=spans)
    elif spans:
        kernel.obs.enable_spans()
    return kernel.obs


def enable_from_spec(kernel, spec):
    """Enable observability from a ``Kernel(obs=...)`` spec string.

    *spec* is a comma-separated feature list: ``"metrics"`` (counters
    and histograms only), ``"trace"`` (plus trace_all into the ring
    buffer), ``"spans"`` (plus causal span assembly), ``"record"``
    (plus a :class:`~repro.obs.recorder.Recorder` in record mode
    installed as ``kernel.recorder`` — read its ``decisions`` after the
    run to write an ``.rrlog``), ``"profile"`` (plus a
    :class:`~repro.obs.profile.Profiler` installed as
    ``kernel.profiler``).  ``True`` means ``"metrics"``; features
    compose (``"trace,spans"``).  Unknown feature names raise
    ``ValueError`` so typos fail loudly at boot.
    """
    if spec is True:
        spec = "metrics"
    features = {part.strip() for part in spec.split(",") if part.strip()}
    unknown = features - {"metrics", "trace", "spans", "record", "profile"}
    if unknown:
        raise ValueError("unknown obs feature(s): %s"
                         % ", ".join(sorted(unknown)))
    obs = enable(kernel, trace_all="trace" in features,
                 spans="spans" in features)
    if "record" in features and kernel.recorder is None:
        from repro.obs.recorder import Recorder

        Recorder().attach(kernel)
    if "profile" in features and kernel.profiler is None:
        from repro.obs.profile import Profiler

        Profiler().attach(kernel)
    return obs


def disable(kernel):
    """Switch observability off; returns the detached instance (or None).

    After this the trap spine is back to the single ``is None`` check —
    the detached instance keeps its collected data for inspection.
    """
    obs = kernel.obs
    kernel.obs = None
    return obs


def is_enabled(kernel):
    """True when *kernel* currently has observability installed."""
    return kernel.obs is not None
