"""Exporters: JSON-lines event dumps, kdump text, and table helpers.

Three consumers share the event/metric formats and all of them live
here so they cannot drift apart:

* the in-world ``kdump`` program (``repro.programs.ktrace_prog``) prints
  :func:`format_record` lines;
* benchmarks and ``scripts/generate_experiments.py`` build per-layer /
  per-syscall tables from :func:`layer_rows` and :func:`syscall_rows`;
* host-side tooling serialises event streams with
  :func:`events_to_jsonl` and metric snapshots with
  :func:`snapshot_to_json`;
* span traces (see :mod:`repro.obs.spans`) become Chrome trace-event
  JSON via :func:`chrome_trace` — one track per simulated pid, flow
  arrows for the cross-process causal edges — which loads directly in
  Perfetto or ``chrome://tracing``; :func:`validate_chrome_trace`
  checks a document against the spec so exports never silently break.
"""

import json

from repro.obs import events as ev

#: kdump's short mnemonic for each event kind (BSD kdump uses CALL/RET/...)
KIND_SHORT = {
    ev.TRAP_AGENT: "CALL*",
    ev.TRAP_KERNEL: "CALL",
    ev.TRAP_RET: "RET",
    ev.HTG: "HTG",
    ev.SIG_UPCALL: "SIGU",
    ev.SIG_DELIVER: "SIG",
    ev.PROC_FORK: "FORK",
    ev.PROC_EXECVE: "EXEC",
    ev.PROC_EXIT: "EXIT",
    ev.PIPE_BLOCK: "BLOCK",
    ev.PIPE_WAKEUP: "WAKE",
}


def event_to_dict(event):
    """One event as a plain dict (accepts an Event or its tuple form)."""
    if isinstance(event, tuple):
        event = ev.Event.from_tuple(event)
    return {
        "seq": event.seq,
        "time_usec": event.time_usec,
        "pid": event.pid,
        "comm": event.comm,
        "kind": event.kind,
        "name": event.name,
        "detail": event.detail,
        "span": event.span,
        "cause": event.cause,
    }


def events_to_jsonl(records):
    """Serialise *records* (Events or tuples) as one JSON object per line."""
    return "\n".join(
        json.dumps(event_to_dict(record), sort_keys=True)
        for record in records)


def snapshot_to_json(snapshot, indent=2):
    """A metrics/obs snapshot dict rendered as deterministic JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def format_record(record):
    """One kdump output line for *record* (an Event or its tuple form).

    The layout follows BSD ``kdump``: pid and command, then a short kind
    mnemonic (``CALL*`` marks a trap redirected to an agent, ``CALL``
    the uninterposed kernel path), then the call name and detail.  When
    span tracing stamped causal ids onto the record, they are appended
    as a ``[span=N cause=M]`` suffix; with tracing off (both ids zero)
    the line is byte-identical to the historic format.
    """
    if isinstance(record, tuple):
        record = ev.Event.from_tuple(record)
    short = KIND_SHORT.get(record.kind, record.kind)
    rest = record.name
    if record.detail:
        rest = (rest + " " if rest else "") + record.detail
    stamp = "%d.%06d" % divmod(record.time_usec, 1_000_000)
    line = "%6d %s %5d %-8s %-6s %s" % (
        record.seq, stamp, record.pid, record.comm, short, rest.rstrip())
    if record.span or record.cause:
        line = "%s [span=%d cause=%d]" % (line.rstrip(), record.span,
                                          record.cause)
    return line


def kdump_lines(records, dropped=0):
    """kdump's full output: one line per record plus a trailing summary."""
    lines = [format_record(record) for record in records]
    lines.append("%d events, %d dropped" % (len(records), dropped))
    return lines


def chrome_trace(assembler, workload=""):
    """Render an assembled span trace as a Chrome trace-event document.

    *assembler* is a :class:`repro.obs.spans.SpanAssembler` (close open
    spans with :meth:`~repro.obs.spans.SpanAssembler.close_open` first
    for a tidy timeline).  Returns a dict ready for ``json.dump``: the
    JSON-object trace format with a ``traceEvents`` array that Perfetto
    and ``chrome://tracing`` load directly.

    Layout: one track per simulated pid (``pid`` and ``tid`` both carry
    the simulated pid; a ``process_name`` metadata event labels each
    with pid and command), one complete ``"X"`` slice per span (``ts``
    and ``dur`` in virtual-clock microseconds, normalised so the trace
    starts at 0), and one ``"s"``/``"f"`` flow-event pair per causal
    edge so fork/exec/pipe/signal causality renders as arrows between
    tracks.
    """
    spans = assembler.finished()
    edges = assembler.all_edges()
    closed = [s for s in spans if s.end_usec is not None]
    t0 = min([s.start_usec for s in closed]
             + [e.src_usec for e in edges], default=0)
    trace_events = []
    comms = {}
    for span in closed:
        comms[span.pid] = span.comm  # latest wins (comm changes on exec)
        args = {"sid": span.sid, "kind": span.kind}
        if span.detail:
            args["detail"] = span.detail
        if span.cause:
            args["cause"] = span.cause
        trace_events.append({
            "name": span.name or span.kind,
            "cat": span.kind,
            "ph": "X",
            "ts": span.start_usec - t0,
            "dur": span.end_usec - span.start_usec,
            "pid": span.pid,
            "tid": span.pid,
            "args": args,
        })
    for flow_id, edge in enumerate(edges, start=1):
        common = {"name": edge.kind, "cat": "edge." + edge.kind,
                  "id": flow_id}
        trace_events.append(dict(common, ph="s", pid=edge.src_pid,
                                 tid=edge.src_pid,
                                 ts=edge.src_usec - t0))
        trace_events.append(dict(common, ph="f", bp="e", pid=edge.dst_pid,
                                 tid=edge.dst_pid,
                                 ts=edge.dst_usec - t0))
    trace_events.sort(key=lambda e: (e["ts"], e["pid"], e["ph"] != "s"))
    meta = [{"name": "process_name", "ph": "M", "pid": pid, "tid": pid,
             "args": {"name": "pid %d (%s)" % (pid, comm)}}
            for pid, comm in sorted(comms.items())]
    doc = {
        "traceEvents": meta + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual-usec", "spans": len(closed),
                      "edges": len(edges)},
    }
    if workload:
        doc["otherData"]["workload"] = workload
    return doc


def validate_chrome_trace(doc):
    """Check *doc* against the Chrome trace-event spec; raise on error.

    Validates what Perfetto actually depends on: a ``traceEvents``
    array; required keys per phase (``ph``/``pid``/``tid``/``ts`` on
    slices and flows, non-negative ``dur`` on complete ``"X"`` events);
    per-track monotone non-decreasing timestamps; matched ``B``/``E``
    begin/end pairs; and ``s``/``f`` flow ids that pair up exactly.
    Raises :class:`ValueError` naming the first offending event;
    returns a summary dict of counts on success.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace document must be a dict with traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    counts = {"X": 0, "M": 0, "flows": 0, "tracks": 0}
    last_ts = {}
    begin_stacks = {}
    flow_starts = {}
    flow_ends = {}
    for idx, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError("event %d: not a dict with a ph" % idx)
        ph = event["ph"]
        if ph == "M":
            if "name" not in event or "pid" not in event:
                raise ValueError("event %d: metadata needs name+pid" % idx)
            counts["M"] += 1
            continue
        for key in ("pid", "tid", "ts", "name"):
            if key not in event:
                raise ValueError("event %d (ph=%s): missing %s"
                                 % (idx, ph, key))
        track = (event["pid"], event["tid"])
        if event["ts"] < last_ts.get(track, 0):
            raise ValueError("event %d: ts %s goes backward on track %s"
                             % (idx, event["ts"], track))
        last_ts[track] = event["ts"]
        if ph == "X":
            if event.get("dur", -1) < 0:
                raise ValueError("event %d: X needs dur >= 0" % idx)
            counts["X"] += 1
        elif ph == "B":
            begin_stacks.setdefault(track, []).append(event["name"])
        elif ph == "E":
            stack = begin_stacks.get(track)
            if not stack:
                raise ValueError("event %d: E without B on track %s"
                                 % (idx, track))
            stack.pop()
        elif ph in ("s", "f"):
            if "id" not in event:
                raise ValueError("event %d: flow event needs an id" % idx)
            store = flow_starts if ph == "s" else flow_ends
            store[event["id"]] = store.get(event["id"], 0) + 1
        else:
            raise ValueError("event %d: unknown phase %r" % (idx, ph))
    for track, stack in begin_stacks.items():
        if stack:
            raise ValueError("unclosed B event(s) %s on track %s"
                             % (stack, track))
    if set(flow_starts) != set(flow_ends):
        raise ValueError("unpaired flow ids: starts %s vs finishes %s"
                         % (sorted(flow_starts), sorted(flow_ends)))
    counts["flows"] = len(flow_starts)
    counts["tracks"] = len(last_ts)
    return counts


def layer_rows(metrics):
    """Per-toolkit-layer latency attribution rows from *metrics*.

    Returns ``(layer, calls, mean_usec, total_usec)`` tuples sorted by
    mean cost ascending — the runtime, in-band version of what
    ``benchmarks/bench_ablation_layers.py`` measures from outside, so
    the orderings can be compared directly.
    """
    rows = []
    for layer, hist in metrics.histogram_group("layer.usec",
                                               label_len=1).items():
        rows.append((layer, hist.count, hist.mean(), hist.total))
    rows.sort(key=lambda row: row[2])
    return rows


def syscall_rows(metrics, top=None):
    """Per-syscall rows: ``(name, calls, agent, kernel, mean_vusec)``.

    ``calls`` counts traps entered; ``agent``/``kernel`` split them by
    path taken; ``mean_vusec`` is the mean virtual-clock latency.  Rows
    are sorted by call count descending and truncated to *top* if given.
    """
    traps = metrics.group("trap")
    agent = metrics.group("trap.agent")
    kernel = metrics.group("trap.kernel")
    vusec = metrics.histogram_group("trap.vusec", label_len=1)
    rows = []
    for name, calls in traps.items():
        hist = vusec.get(name)
        rows.append((name, calls, agent.get(name, 0), kernel.get(name, 0),
                     hist.mean() if hist else 0.0))
    rows.sort(key=lambda row: (-row[1], row[0]))
    if top is not None:
        rows = rows[:top]
    return rows
