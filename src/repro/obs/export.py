"""Exporters: JSON-lines event dumps, kdump text, and table helpers.

Three consumers share the event/metric formats and all of them live
here so they cannot drift apart:

* the in-world ``kdump`` program (``repro.programs.ktrace_prog``) prints
  :func:`format_record` lines;
* benchmarks and ``scripts/generate_experiments.py`` build per-layer /
  per-syscall tables from :func:`layer_rows` and :func:`syscall_rows`;
* host-side tooling serialises event streams with
  :func:`events_to_jsonl` and metric snapshots with
  :func:`snapshot_to_json`.
"""

import json

from repro.obs import events as ev

#: kdump's short mnemonic for each event kind (BSD kdump uses CALL/RET/...)
KIND_SHORT = {
    ev.TRAP_AGENT: "CALL*",
    ev.TRAP_KERNEL: "CALL",
    ev.TRAP_RET: "RET",
    ev.HTG: "HTG",
    ev.SIG_UPCALL: "SIGU",
    ev.SIG_DELIVER: "SIG",
    ev.PROC_FORK: "FORK",
    ev.PROC_EXECVE: "EXEC",
    ev.PROC_EXIT: "EXIT",
    ev.PIPE_BLOCK: "BLOCK",
    ev.PIPE_WAKEUP: "WAKE",
}


def event_to_dict(event):
    """One event as a plain dict (accepts an Event or its tuple form)."""
    if isinstance(event, tuple):
        event = ev.Event.from_tuple(event)
    return {
        "seq": event.seq,
        "time_usec": event.time_usec,
        "pid": event.pid,
        "comm": event.comm,
        "kind": event.kind,
        "name": event.name,
        "detail": event.detail,
    }


def events_to_jsonl(records):
    """Serialise *records* (Events or tuples) as one JSON object per line."""
    return "\n".join(
        json.dumps(event_to_dict(record), sort_keys=True)
        for record in records)


def snapshot_to_json(snapshot, indent=2):
    """A metrics/obs snapshot dict rendered as deterministic JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def format_record(record):
    """One kdump output line for *record* (an Event or its tuple form).

    The layout follows BSD ``kdump``: pid and command, then a short kind
    mnemonic (``CALL*`` marks a trap redirected to an agent, ``CALL``
    the uninterposed kernel path), then the call name and detail.
    """
    if isinstance(record, tuple):
        record = ev.Event.from_tuple(record)
    short = KIND_SHORT.get(record.kind, record.kind)
    rest = record.name
    if record.detail:
        rest = (rest + " " if rest else "") + record.detail
    stamp = "%d.%06d" % divmod(record.time_usec, 1_000_000)
    return "%6d %s %5d %-8s %-6s %s" % (
        record.seq, stamp, record.pid, record.comm, short, rest.rstrip())


def kdump_lines(records, dropped=0):
    """kdump's full output: one line per record plus a trailing summary."""
    lines = [format_record(record) for record in records]
    lines.append("%d events, %d dropped" % (len(records), dropped))
    return lines


def layer_rows(metrics):
    """Per-toolkit-layer latency attribution rows from *metrics*.

    Returns ``(layer, calls, mean_usec, total_usec)`` tuples sorted by
    mean cost ascending — the runtime, in-band version of what
    ``benchmarks/bench_ablation_layers.py`` measures from outside, so
    the orderings can be compared directly.
    """
    rows = []
    for layer, hist in metrics.histogram_group("layer.usec",
                                               label_len=1).items():
        rows.append((layer, hist.count, hist.mean(), hist.total))
    rows.sort(key=lambda row: row[2])
    return rows


def syscall_rows(metrics, top=None):
    """Per-syscall rows: ``(name, calls, agent, kernel, mean_vusec)``.

    ``calls`` counts traps entered; ``agent``/``kernel`` split them by
    path taken; ``mean_vusec`` is the mean virtual-clock latency.  Rows
    are sorted by call count descending and truncated to *top* if given.
    """
    traps = metrics.group("trap")
    agent = metrics.group("trap.agent")
    kernel = metrics.group("trap.kernel")
    vusec = metrics.histogram_group("trap.vusec", label_len=1)
    rows = []
    for name, calls in traps.items():
        hist = vusec.get(name)
        rows.append((name, calls, agent.get(name, 0), kernel.get(name, 0),
                     hist.mean() if hist else 0.0))
    rows.sort(key=lambda row: (-row[1], row[0]))
    if top is not None:
        rows = rows[:top]
    return rows
