"""Causal spans: assembling the flat event stream into a trace.

The event bus (:mod:`repro.obs.events`) tells you *what* happened; this
module reconstructs *why*.  A :class:`SpanAssembler` installed on the
observability switchboard (``obs.enable(kernel, spans=True)`` or
``Kernel(obs="spans")``) watches every emitted event and assembles:

* **Spans** — intervals of virtual-clock time with a kind, a pid, and a
  parent.  Every trap becomes a span (``trap.kernel`` or ``trap.agent``
  by the path it took); an agent's ``htg_unix_syscall`` downcalls become
  ``htg`` child spans inside the agent span; a pipe sleep becomes a
  ``pipe.blocked`` child span from ``pipe.block`` to ``pipe.wakeup``;
  an agent's signal routing becomes a ``signal.blocked`` span from
  ``signal.upcall`` to the matching ``signal.deliver``.
* **Edges** — cross-process causal links: ``fork`` (the parent's
  ``proc.fork`` to the child's first event), ``exec`` (a ``proc.execve``
  or ``jump_to_image`` to the new image's first trap), ``pipe`` (the
  *waker's* last call to the sleeper's ``pipe.wakeup``), and ``signal``
  (``signal.upcall`` to ``signal.deliver``).

Every observed event is stamped in place: ``event.span`` gets the id of
the span it opens, closes, or marks, and ``event.cause`` the sequence
number of its causal predecessor — so the same ids ride along into the
ktrace ring buffer, ``kdump`` output, and the JSON-lines export.

Pay-per-use: the assembler only runs when installed (``obs.spans`` is
``None`` by default and the trap spine's probes are unchanged); when
installed it costs one dict-driven state update per event, under its own
leaf lock (events arrive concurrently from every simulated process's
host thread).

Consumers: :func:`repro.obs.export.chrome_trace` renders spans + edges
as Chrome trace-event JSON (Perfetto/chrome://tracing load it directly)
and :func:`repro.obs.critical.critical_path` walks the edges backward to
attribute the workload's longest dependency chain.
"""

import itertools
import threading

from repro.obs import events as ev

#: span kinds an assembler produces, in rough nesting order
SPAN_KINDS = (
    ev.TRAP_KERNEL,   # an uninterposed trap handled by the kernel
    ev.TRAP_AGENT,    # a trap redirected to an agent handler
    "htg",            # an agent's htg_unix_syscall downcall
    "pipe.blocked",   # a sleep on a pipe end (block -> wakeup)
    "signal.blocked", # agent signal routing (upcall -> deliver)
)

#: causal edge kinds (cross-process arrows in the exported timeline)
EDGE_KINDS = ("fork", "exec", "pipe", "signal")


class Span:
    """One interval of a process's life on the virtual clock.

    ``sid`` is the assembler-local span id (also stamped into the
    opening/closing events); ``parent`` is the enclosing span's sid (0
    for a top-level span); ``cause`` is the sequence number of the event
    that causally released this span (the upcall behind a
    ``signal.blocked`` span, the waker's call behind a ``pipe.blocked``
    one — 0 when unknown).  ``end_usec`` is ``None`` while the span is
    still open.
    """

    __slots__ = ("sid", "pid", "comm", "kind", "name", "detail",
                 "start_usec", "end_usec", "parent", "cause",
                 "open_seq", "close_seq")

    def __init__(self, sid, pid, comm, kind, name="", detail="",
                 start_usec=0, parent=0, open_seq=0):
        self.sid = sid
        self.pid = pid
        self.comm = comm
        self.kind = kind
        self.name = name
        self.detail = detail
        self.start_usec = start_usec
        self.end_usec = None
        self.parent = parent
        self.cause = 0
        self.open_seq = open_seq
        self.close_seq = 0

    def duration_usec(self):
        """The span's virtual-clock length (0 while still open)."""
        if self.end_usec is None:
            return 0
        return self.end_usec - self.start_usec

    def __repr__(self):
        return "<Span #%d %s pid=%d %s [%s..%s]>" % (
            self.sid, self.kind, self.pid, self.name,
            self.start_usec, self.end_usec)


class Edge:
    """A causal link from one process's event to another's.

    ``kind`` is one of :data:`EDGE_KINDS`; the source is the causing
    event (``src_seq`` may be 0 when the cause could not be resolved,
    e.g. a pipe wakeup whose waker was a close on an unobserved path).
    """

    __slots__ = ("kind", "src_seq", "src_pid", "src_usec",
                 "dst_seq", "dst_pid", "dst_usec")

    def __init__(self, kind, src_seq, src_pid, src_usec,
                 dst_seq, dst_pid, dst_usec):
        self.kind = kind
        self.src_seq = src_seq
        self.src_pid = src_pid
        self.src_usec = src_usec
        self.dst_seq = dst_seq
        self.dst_pid = dst_pid
        self.dst_usec = dst_usec

    def __repr__(self):
        return "<Edge %s #%d pid=%d -> #%d pid=%d>" % (
            self.kind, self.src_seq, self.src_pid,
            self.dst_seq, self.dst_pid)


class SpanAssembler:
    """Builds the cross-process span trace from the live event stream.

    One instance per observability switchboard; installed via
    ``obs.enable(kernel, spans=True)`` /
    ``Observability.enable_spans``.  All state is guarded by one leaf
    lock, so events may arrive from any simulated process's thread.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._sid = itertools.count(1)
        #: finished spans, in close order
        self.spans = []
        #: cross-process causal edges, in creation order
        self.edges = []
        #: events observed (all kinds, all pids)
        self.events = 0
        # per-pid open-span stacks and causal bookkeeping
        self._stacks = {}         # pid -> [open Span, ...] innermost last
        self._pending_fork = {}   # child pid -> parent's proc.fork Event
        self._pending_exec = {}   # pid -> its proc.execve Event
        self._pending_upcall = {} # (pid, signame) -> signal.upcall Event
        self._last = {}           # pid -> (seq, usec) of the pid's last event

    # -- emission-side entry point ---------------------------------------

    def observe(self, event, link_pid=0):
        """Fold one event into the trace, stamping ``span``/``cause``.

        Called synchronously from ``Observability.emit`` *before* the
        event reaches the ring buffer and the bus, so the stamped ids
        are visible to every downstream consumer.  ``link_pid`` names
        the other process involved, when the emitter knows one (the
        fork child, the pipe waker).
        """
        with self._lock:
            self.events += 1
            pid = event.pid
            kind = event.kind
            # A pid's very first event resolves a pending fork edge.
            pending = self._pending_fork.pop(pid, None)
            if pending is not None:
                self._edge("fork", pending, event)
                if not event.cause:
                    event.cause = pending.seq
            if kind == ev.TRAP_AGENT or kind == ev.TRAP_KERNEL:
                self._on_trap_enter(event)
            elif kind == ev.TRAP_RET:
                self._on_trap_ret(event)
            elif kind == ev.HTG:
                self._on_htg(event)
            elif kind == ev.PIPE_BLOCK:
                self._on_pipe_block(event)
            elif kind == ev.PIPE_WAKEUP:
                self._on_pipe_wakeup(event, link_pid)
            elif kind == ev.SIG_UPCALL:
                self._on_sig_upcall(event)
            elif kind == ev.SIG_DELIVER:
                self._on_sig_deliver(event)
            elif kind == ev.PROC_FORK:
                if link_pid:
                    self._pending_fork[link_pid] = event
            elif kind == ev.PROC_EXECVE:
                self._close_top_htg(pid, event.time_usec, event.seq)
                self._pending_exec[pid] = event
            elif kind == ev.PROC_EXIT:
                self._on_exit(event)
            self._last[pid] = (event.seq, event.time_usec)

    # -- per-kind assembly (lock held) -----------------------------------

    def _open(self, event, kind, name, detail=""):
        stack = self._stacks.setdefault(event.pid, [])
        span = Span(next(self._sid), event.pid, event.comm, kind, name,
                    detail, start_usec=event.time_usec,
                    parent=stack[-1].sid if stack else 0,
                    open_seq=event.seq)
        stack.append(span)
        return span

    def _close(self, span, usec, seq):
        span.end_usec = usec
        span.close_seq = seq
        self.spans.append(span)

    def _close_top_htg(self, pid, usec, seq):
        # An htg downcall has no return event of its own; it ends when
        # the process's next event arrives (exact in virtual time: agent
        # Python between the downcall's return and that event ticks no
        # virtual clock).  A pipe.block nests *inside* the downcall, so
        # its handler does not call this.
        stack = self._stacks.get(pid)
        if stack and stack[-1].kind == "htg":
            self._close(stack.pop(), usec, seq)

    def _edge(self, kind, src_event, dst_event):
        self.edges.append(Edge(kind, src_event.seq, src_event.pid,
                               src_event.time_usec, dst_event.seq,
                               dst_event.pid, dst_event.time_usec))

    def _on_trap_enter(self, event):
        pid = event.pid
        self._close_top_htg(pid, event.time_usec, event.seq)
        pending = self._pending_exec.pop(pid, None)
        if pending is not None:
            self._edge("exec", pending, event)
            if not event.cause:
                event.cause = pending.seq
        span = self._open(event, event.kind, event.name, event.detail)
        event.span = span.sid

    def _on_trap_ret(self, event):
        # Close the matching trap span, and with it anything still open
        # above it (an htg cut short by an unwind, an orphaned block).
        stack = self._stacks.get(event.pid)
        if not stack:
            return
        match = None
        for span in reversed(stack):
            if (span.kind in (ev.TRAP_AGENT, ev.TRAP_KERNEL)
                    and span.name == event.name):
                match = span
                break
        if match is None:
            return
        while True:
            span = stack.pop()
            self._close(span, event.time_usec, event.seq)
            if span is match:
                break
        event.span = match.sid

    def _on_htg(self, event):
        self._close_top_htg(event.pid, event.time_usec, event.seq)
        span = self._open(event, "htg", event.name, event.detail)
        event.span = span.sid

    def _on_pipe_block(self, event):
        span = self._open(event, "pipe.blocked", event.name, event.detail)
        event.span = span.sid

    def _on_pipe_wakeup(self, event, waker_pid):
        stack = self._stacks.get(event.pid)
        if not (stack and stack[-1].kind == "pipe.blocked"):
            return
        span = stack.pop()
        if waker_pid and waker_pid != event.pid:
            last = self._last.get(waker_pid)
            if last is not None:
                span.cause = last[0]
                event.cause = last[0]
                self.edges.append(Edge("pipe", last[0], waker_pid, last[1],
                                       event.seq, event.pid,
                                       event.time_usec))
        self._close(span, event.time_usec, event.seq)
        event.span = span.sid

    def _on_sig_upcall(self, event):
        self._pending_upcall[(event.pid, event.name)] = event

    def _on_sig_deliver(self, event):
        upcall = self._pending_upcall.pop((event.pid, event.name), None)
        if upcall is None:
            return
        # The routing interval is a closed span in its own right: the
        # time between the kernel handing the signal to the agent and
        # the application's disposition finally running.
        stack = self._stacks.get(event.pid)
        span = Span(next(self._sid), event.pid, event.comm,
                    "signal.blocked", event.name,
                    start_usec=upcall.time_usec,
                    parent=stack[-1].sid if stack else 0,
                    open_seq=upcall.seq)
        span.cause = upcall.seq
        self._close(span, event.time_usec, event.seq)
        event.span = span.sid
        event.cause = upcall.seq
        self._edge("signal", upcall, event)

    def _on_exit(self, event):
        # The exit trap never returns; its "unwound" trap.ret will still
        # arrive and close the exit span itself.  Close anything the
        # process leaves open besides that, and drop its causal state.
        pid = event.pid
        stack = self._stacks.get(pid, [])
        while len(stack) > 1:
            self._close(stack.pop(), event.time_usec, event.seq)
        self._pending_exec.pop(pid, None)
        for key in [k for k in self._pending_upcall if k[0] == pid]:
            del self._pending_upcall[key]

    # -- consumer-side reads ---------------------------------------------

    def close_open(self, at_usec=None):
        """Close every still-open span (e.g. a process that never
        exited) at *at_usec* (default: each pid's last event time)."""
        with self._lock:
            for pid, stack in self._stacks.items():
                last = self._last.get(pid, (0, at_usec or 0))
                usec = at_usec if at_usec is not None else last[1]
                while stack:
                    self._close(stack.pop(), usec, last[0])

    def finished(self):
        """A snapshot list of the closed spans, in close order."""
        with self._lock:
            return list(self.spans)

    def all_edges(self):
        """A snapshot list of the causal edges, in creation order."""
        with self._lock:
            return list(self.edges)

    def open_count(self):
        """How many spans are currently open across all processes."""
        with self._lock:
            return sum(len(stack) for stack in self._stacks.values())

    def counts(self):
        """Summary counters (the ``kernel_stats`` / monitor section)."""
        with self._lock:
            open_spans = sum(len(s) for s in self._stacks.values())
            by_kind = {}
            for edge in self.edges:
                by_kind[edge.kind] = by_kind.get(edge.kind, 0) + 1
            return {
                "enabled": True,
                "events": self.events,
                "spans": len(self.spans),
                "open": open_spans,
                "edges": len(self.edges),
                "edges_by_kind": by_kind,
            }
