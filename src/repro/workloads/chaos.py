"""The seeded chaos harness: faulty agents + kernel faults + invariants.

A chaos *scenario* is a pure function of its seed: boot a world, arm
seeded kernel fault sites (:mod:`repro.kernel.faultsite`), run a
workload under a seeded randomly-crashing agent
(:mod:`repro.agents.chaos`) contained by one of the guard policies
(:mod:`repro.toolkit.guard`), and then — whatever happened — assert the
*machine invariants* that fault containment exists to protect:

* no process left running or stopped (everything exited or zombified);
* every exited process's descriptor table fully closed;
* no inode on any volume still holding open references;
* every inode reachable from its volume root, with a link count exactly
  equal to the directory entries that name it (directories included,
  ``.``/``..`` and all);
* no thread asleep in the kernel (nobody stuck on a pipe or wait);
* no host-level panics — a contained agent fault must never surface as
  a client crash.

A scenario *passes* when the invariants hold; the workload's own exit
status is free to be a failure (fail-stop deliberately kills clients).
The harness is the PR's acceptance instrument: ``scripts/chaos.py``
runs a suite of seeds in CI and fails loudly on the first violation.
"""

from repro.agents.chaos import ChaosAgent
from repro.kernel import stat as st
from repro.kernel.errno import SyscallError
from repro.kernel.faultsite import CRASH_SITES, SITES, FaultSet, MachineCrash
from repro.kernel.kernel import ProgramCrash
from repro.kernel.proc import RUNNING, STOPPED, WEXITSTATUS, WIFSIGNALED
from repro.toolkit.boilerplate import run_under_agent
from repro.toolkit.guard import GuardedAgent
from repro.workloads.world import boot_world

#: the three policies a suite cycles through
POLICIES = ("fail-open", "quarantine", "fail-stop")

#: both containment mechanisms a suite alternates between
MECHANISMS = ("wrapper", "rail")


def _script_files(kernel):
    """A short file/dir churn: create, link, unlink, read back."""
    return ("/bin/sh", ["sh", "-c",
            "mkdir /tmp/chaos; echo data > /tmp/chaos/a; "
            "ln /tmp/chaos/a /tmp/chaos/b; cat /tmp/chaos/b > /tmp/chaos/c; "
            "rm /tmp/chaos/a; rm /tmp/chaos/b; rm /tmp/chaos/c; "
            "rmdir /tmp/chaos"])


def _script_pipes(kernel):
    """A pipeline: fork, pipe traffic, wait, under chaos."""
    return ("/bin/sh", ["sh", "-c",
            "echo one > /tmp/p.txt; echo two >> /tmp/p.txt; "
            "cat /tmp/p.txt | wc -l | cat; rm /tmp/p.txt"])


def _script_procs(kernel):
    """Process churn: conditionals, redirection, small pipeline fan-out."""
    return ("/bin/sh", ["sh", "-c",
            "echo x | cat > /tmp/q.txt && cat /tmp/q.txt | cat | wc -c; "
            "rm /tmp/q.txt || echo missed"])


def _script_moves(kernel):
    """Rename churn: move, move onto an existing name, then clean up —
    the only workload that reaches the rename sites."""
    return ("/bin/sh", ["sh", "-c",
            "mkdir /tmp/mv; echo one > /tmp/mv/a; echo two > /tmp/mv/b; "
            "mv /tmp/mv/a /tmp/mv/c; mv /tmp/mv/b /tmp/mv/c; "
            "rm /tmp/mv/c; rmdir /tmp/mv"])


def _format_workload(kernel):
    """The paper's dissertation-formatting workload, under chaos."""
    from repro.workloads import format_dissertation
    manuscript = format_dissertation.setup(kernel)
    return ("/usr/bin/scribe",
            ["scribe", manuscript, format_dissertation.OUTPUT])


#: workload name -> builder(kernel) -> (path, argv); builders may write
#: setup files (setup runs before fault sites are armed)
WORKLOADS = {
    "files": _script_files,
    "pipes": _script_pipes,
    "procs": _script_procs,
    "moves": _script_moves,
    "format": _format_workload,
}


def check_invariants(kernel):
    """Machine invariants after a scenario; returns violation strings.

    Everything here must hold *no matter what* the chaos did — these
    are the properties fault containment promises to preserve.  Clean
    descriptor tables plus an empty sleep queue together imply no stuck
    pipes: nothing references a pipe end, and nothing is blocked on one.
    """
    violations = []
    with kernel._sleepq:
        procs = list(kernel._procs.values())
        sleepers = kernel._sleepers
    for proc in procs:
        if proc.state in (RUNNING, STOPPED):
            violations.append("pid %d (%s) still %s"
                              % (proc.pid, proc.comm, proc.state))
        open_fds = proc.fdtable.descriptors()
        if open_fds:
            violations.append("pid %d (%s) left descriptors open: %r"
                              % (proc.pid, proc.comm, open_fds))
    if sleepers:
        violations.append("%d thread(s) still asleep in the kernel"
                          % sleepers)
    for pid, comm, exc, _ in kernel.panics:
        violations.append("host panic in pid %d (%s): %r" % (pid, comm, exc))
    for fs in kernel._volumes:
        violations.extend(_check_volume(fs))
    return violations


def _check_volume(fs):
    """Reference-count invariants for one volume.

    Walks every directory reachable from the root, counting the entries
    that name each inode (``.`` and ``..`` included), then demands the
    count equal each inode's ``nlink``, that no inode still has open
    references, and that nothing unreachable survives in the table —
    an unreachable inode with no open file is a leak the reclamation
    rule (``nlink <= 0 and open_count == 0``) should have freed.
    """
    violations = []
    refs = {}
    seen = set()
    stack = [fs.root]
    while stack:
        node = stack.pop()
        if node.ino in seen:
            continue
        seen.add(node.ino)
        for name, ino in node.entries.items():
            refs[ino] = refs.get(ino, 0) + 1
            child = fs._inodes.get(ino)
            if child is None:
                violations.append(
                    "dev %d: dangling entry %r -> ino %d in ino %d"
                    % (fs.dev, name, ino, node.ino))
            elif st.S_ISDIR(child.mode) and name not in (".", ".."):
                stack.append(child)
    for ino, inode in fs._inodes.items():
        if inode.open_count != 0:
            violations.append("dev %d: ino %d open_count %d after quiesce"
                              % (fs.dev, ino, inode.open_count))
        expected = refs.get(ino, 0)
        if ino not in seen and not st.S_ISDIR(inode.mode):
            if expected == 0:
                violations.append("dev %d: orphaned ino %d (nlink %d)"
                                  % (fs.dev, ino, inode.nlink))
                continue
        if inode.nlink != expected:
            violations.append(
                "dev %d: ino %d nlink %d but %d reachable entr%s"
                % (fs.dev, ino, inode.nlink, expected,
                   "y" if expected == 1 else "ies"))
    return violations


class ChaosReport:
    """Outcome of one scenario: what ran, what faulted, what held."""

    def __init__(self, seed, policy, mechanism, workload):
        self.seed = seed
        self.policy = policy
        self.mechanism = mechanism
        self.workload = workload
        #: "exit" (normal status), "killed" (fail-stop took the client),
        #: "error" (the run itself raised SyscallError), or "panic"
        self.outcome = None
        self.status = None
        self.agent_faults = 0
        self.guard_stats = {}
        self.site_stats = {}
        self.violations = []

    @property
    def passed(self):
        """True when every machine invariant held (the pass criterion)."""
        return not self.violations

    def to_dict(self):
        """A JSON-ready rendering for reports and the CLI."""
        return {
            "seed": self.seed,
            "policy": self.policy,
            "mechanism": self.mechanism,
            "workload": self.workload,
            "outcome": self.outcome,
            "status": self.status,
            "agent_faults": self.agent_faults,
            "guard": self.guard_stats,
            "faultsites": self.site_stats,
            "violations": list(self.violations),
            "passed": self.passed,
        }

    def __repr__(self):
        verdict = "ok" if self.passed else "VIOLATED"
        return ("<ChaosReport seed=%d %s/%s/%s %s faults=%d %s>"
                % (self.seed, self.policy, self.mechanism, self.workload,
                   self.outcome, self.agent_faults, verdict))


def run_scenario(seed, policy="fail-open", mechanism="wrapper",
                 workload="files", agent_rate=0.05, site_rate=0.01,
                 timeout=60.0, obs=None, on_boot=None):
    """Run one seeded chaos scenario; returns its :class:`ChaosReport`.

    The scenario is deterministic in *seed* (plus the knob arguments):
    the agent's fault stream and the kernel sites' fault stream are both
    drawn from generators seeded by it.  Setup (world boot, workload
    files) happens before fault sites are armed, so scenarios always
    start from an intact machine.

    *obs* is forwarded to the kernel (``Kernel(obs=...)``); *on_boot*,
    when given, is called with the booted kernel after world setup but
    before fault sites are armed — the record/replay drivers use it to
    attach a :class:`~repro.obs.recorder.Recorder` and subscribe event
    collectors, so the recorder sees the armed fault set.
    """
    if workload not in WORKLOADS:
        raise ValueError("unknown workload %r (know %s)"
                         % (workload, ", ".join(sorted(WORKLOADS))))
    report = ChaosReport(seed, policy, mechanism, workload)
    inner = ChaosAgent(seed=seed, rate=agent_rate)
    boot_kwargs = {} if obs is None else {"obs": obs}
    if mechanism == "wrapper":
        kernel = boot_world(**boot_kwargs)
        agent = GuardedAgent(inner, policy)
    elif mechanism == "rail":
        kernel = boot_world(guard=policy, **boot_kwargs)
        agent = inner
    else:
        raise ValueError("unknown mechanism %r" % (mechanism,))
    path, argv = WORKLOADS[workload](kernel)
    if on_boot is not None:
        on_boot(kernel)
    sites = kernel.arm_faults(FaultSet.random(seed, rate=site_rate))
    try:
        status = run_under_agent(kernel, agent, path, argv, timeout=timeout)
        report.status = status
        report.outcome = "killed" if WIFSIGNALED(status) else "exit"
    except ProgramCrash:
        # Containment failed: an agent exception reached the client.
        # check_invariants reports the panic as a violation too.
        report.outcome = "panic"
    except SyscallError as err:
        report.outcome = "error"
        report.status = -err.errno
    finally:
        kernel.disarm_faults()
    report.agent_faults = inner.faults_raised
    if mechanism == "wrapper":
        report.guard_stats = agent.stats.snapshot()
    else:
        report.guard_stats = kernel.guard.stats.snapshot()
    report.site_stats = sites.stats()
    report.violations = check_invariants(kernel)
    return report


#: every place a crash scenario can pull the power cord: the torn
#: mid-mutation sites first (the journal's reason to exist), then the
#: pre-mutation error sites armed with crash rules (kill-at-entry)
CRASH_TAGS = tuple(sorted(CRASH_SITES)) + tuple(sorted(SITES))


class CrashReport:
    """Outcome of one kill-and-remount scenario."""

    def __init__(self, seed, workload, tag, nth, journal):
        self.seed = seed
        self.workload = workload
        self.tag = tag
        self.nth = nth
        self.journal = journal
        #: "crashed" (the site fired and halted the machine), "exit"
        #: (the workload finished before reaching the site), "error",
        #: or "panic"
        self.outcome = None
        self.status = None
        #: the tag the machine actually halted at, None if it survived
        self.crashed = None
        #: dev -> recovery report from :meth:`Kernel.remount`
        self.recovery = {}
        self.site_stats = {}
        self.violations = []

    @property
    def passed(self):
        """True when every invariant held after recovery."""
        return not self.violations

    def to_dict(self):
        """A JSON-ready rendering for reports and the CLI."""
        return {
            "seed": self.seed,
            "workload": self.workload,
            "tag": self.tag,
            "nth": self.nth,
            "journal": self.journal,
            "outcome": self.outcome,
            "status": self.status,
            "crashed": self.crashed,
            "recovery": {str(dev): dict(rep)
                         for dev, rep in self.recovery.items()},
            "faultsites": self.site_stats,
            "violations": list(self.violations),
            "passed": self.passed,
        }

    def __repr__(self):
        verdict = "ok" if self.passed else "VIOLATED"
        return ("<CrashReport seed=%d %s@%s nth=%d journal=%s %s %s>"
                % (self.seed, self.workload, self.tag, self.nth,
                   "on" if self.journal else "off", self.outcome, verdict))


def run_crash_scenario(seed, workload="files", tag="ufs.link.torn", nth=1,
                       journal=True, timeout=60.0, obs=None, on_boot=None):
    """Kill the machine at a fault site, remount, walk the invariants.

    Arms *tag* with a ``crash``/``crash-after-nth`` rule, runs the
    workload until the machine halts (or the workload finishes without
    reaching the site), then — if it crashed — runs
    :meth:`Kernel.remount` recovery and asserts the same machine
    invariants as an error scenario.  With *journal* False the world
    boots unjournaled: the control arm that demonstrates torn metadata
    really does corrupt a volume without the write-ahead journal.

    Deterministic in its parameters (the workloads are scripted and
    crash rules never touch the random stream), so any failing report
    line replays exactly; *obs*/*on_boot* serve the record/replay
    drivers as in :func:`run_scenario`.
    """
    if workload not in WORKLOADS:
        raise ValueError("unknown workload %r (know %s)"
                         % (workload, ", ".join(sorted(WORKLOADS))))
    report = CrashReport(seed, workload, tag, nth, journal)
    boot_kwargs = {"journal": journal}
    if obs is not None:
        boot_kwargs["obs"] = obs
    kernel = boot_world(**boot_kwargs)
    path, argv = WORKLOADS[workload](kernel)
    if on_boot is not None:
        on_boot(kernel)
    rule = "crash" if nth <= 1 else "crash-after-%d" % nth
    sites = kernel.arm_faults(FaultSet({tag: rule}))
    try:
        report.status = kernel.run(path, argv, timeout=timeout)
    except MachineCrash:
        # The site fired on the driving thread itself (process setup
        # resolves paths too); the machine is down either way.
        pass
    except ProgramCrash:
        report.outcome = "panic"
    except SyscallError as err:
        report.outcome = "error"
        report.status = -err.errno
    finally:
        kernel.disarm_faults()
    report.crashed = kernel.crashed
    if report.outcome is None:
        report.outcome = "crashed" if kernel.crashed else "exit"
    report.site_stats = sites.stats()
    if kernel.crashed is not None:
        report.recovery = kernel.remount()
    report.violations = check_invariants(kernel)
    return report


def run_crash_suite(count=25, base_seed=0, tags=CRASH_TAGS,
                    workloads=("files", "moves", "procs", "format", "pipes"),
                    depths=(1, 2, 3), journal=True):
    """Run *count* kill-and-remount scenarios cycling tags, workloads,
    and crash depths (which consultation of the site pulls the cord);
    returns the list of reports.

    Scenario *i* uses seed ``base_seed + i``, the ``i``-th tag and
    workload (mod length), and a depth that advances once per full tag
    cycle; the tag and workload cycle lengths are coprime, so a long
    enough suite kills the machine at every armed site at several
    different points in every workload.
    """
    reports = []
    for i in range(count):
        reports.append(run_crash_scenario(
            seed=base_seed + i,
            workload=workloads[i % len(workloads)],
            tag=tags[i % len(tags)],
            nth=depths[(i // len(tags)) % len(depths)],
            journal=journal,
        ))
    return reports


def run_suite(count=25, base_seed=0, policies=POLICIES,
              mechanisms=MECHANISMS, workloads=("files", "pipes", "procs"),
              agent_rate=0.05, site_rate=0.01):
    """Run *count* scenarios cycling seeds, policies, mechanisms, and
    workloads; returns the list of reports.

    Scenario *i* uses seed ``base_seed + i`` and the ``i``-th element
    (mod length) of each axis, so any failing combination is rerunnable
    from its report alone.
    """
    reports = []
    for i in range(count):
        reports.append(run_scenario(
            seed=base_seed + i,
            policy=policies[i % len(policies)],
            mechanism=mechanisms[i % len(mechanisms)],
            workload=workloads[i % len(workloads)],
            agent_rate=agent_rate,
            site_rate=site_rate,
        ))
    return reports
