"""An Andrew-benchmark-like filesystem workload (Section 3.5.3).

The paper compares kernel-based DFSTrace (3.0% slowdown) against the
agent-based dfs_trace implementation (64% slowdown) "while executing
the AFS filesystem performance benchmarks".  The Andrew benchmark's
five phases are reproduced here: make directories, copy files, examine
status (stat every file), examine contents (read every file), and
compile.
"""

from repro.workloads.textgen import Lcg, prose

BASE = "/home/mbj/andrew"
SRC = BASE + "/src"
TREE = BASE + "/tree"

FILE_COUNT = 14
SUBDIRS = ("s1", "s2", "s3", "s4", "s5")

_SCRIPT = """\
#!/bin/sh
mkdir {tree}
mkdir {subdirs}
{copies}
ls -l {tree}
{stats}
{greps}
{wcs}
cd {src}; cc -o {tree}/andrew1 andrew1.c
cd {src}; cc -o {tree}/andrew2 andrew2.c
"""

_C_PROGRAM = """\
#include "stdio.h"

int helper%(n)d(int value) {
    value = value * 17 + %(n)d;
    return value;
}

int main() {
    int value = %(n)d;
    call helper%(n)d(value);
    call printf(value);
    return 0;
}
"""


def setup(kernel, seed=1988):
    """Create the benchmark's source tree and driver script."""
    rng = Lcg(seed)
    kernel.mkdir_p(SRC)
    names = []
    for index in range(FILE_COUNT):
        name = "file%02d.txt" % index
        kernel.write_file(SRC + "/" + name, prose(rng, paragraphs=6) + "\n")
        names.append(name)
    for n in (1, 2):
        kernel.write_file(SRC + "/andrew%d.c" % n, _C_PROGRAM % {"n": n})

    copies = []
    stats = []
    greps = []
    wcs = []
    for index, name in enumerate(names):
        subdir = SUBDIRS[index % len(SUBDIRS)]
        target = "%s/%s/%s" % (TREE, subdir, name)
        copies.append("cp %s/%s %s" % (SRC, name, target))
        stats.append("ls -l %s/%s" % (TREE, subdir))
        greps.append("grep interposition %s" % target)
        wcs.append("wc %s" % target)
    script = _SCRIPT.format(
        tree=TREE,
        subdirs=" ".join("%s/%s" % (TREE, s) for s in SUBDIRS),
        copies="\n".join(copies),
        stats="\n".join(sorted(set(stats))),
        greps="\n".join(greps),
        wcs="\n".join(wcs),
        src=SRC,
    )
    kernel.write_file(BASE + "/run_andrew.sh", script, mode=0o755)
    node = kernel.lookup_host(BASE + "/run_andrew.sh")
    node.mode |= 0o111
    return BASE + "/run_andrew.sh"


def run(kernel):
    """Execute the five benchmark phases; returns the wait status."""
    return kernel.run("/bin/sh", ["sh", BASE + "/run_andrew.sh"])


def clean(kernel):
    """Remove the output tree so the benchmark can run again."""
    from repro.kernel.errno import SyscallError

    def remove_tree(path):
        try:
            node = kernel.lookup_host(path)
        except SyscallError:
            return
        if node.is_dir():
            for name in [n for n in node.entries if n not in (".", "..")]:
                remove_tree(path + "/" + name)
            parent = kernel.lookup_host(path.rsplit("/", 1)[0])
            name = path.rsplit("/", 1)[1]
            node.remove(".")
            node.remove("..")
            node.nlink -= 1
            parent.nlink -= 1
            node.fs.unlink(parent, name, node)
        else:
            parent = kernel.lookup_host(path.rsplit("/", 1)[0])
            node.fs.unlink(parent, path.rsplit("/", 1)[1], node)

    remove_tree(TREE)
