"""Table 3-3 workload: make 8 small C programs.

The paper's workload runs Make, which runs the GNU C compiler, which
runs the preprocessor, code generator, assembler, and linker for each
program — 64 fork/execve pairs and heavy system call traffic.  Ours
mirrors that process tree: make → sh -c → cc → {cpp, cc1, as, ld}.
"""

from repro.workloads.textgen import Lcg

SRC_DIR = "/home/mbj/src"
PROGRAM_COUNT = 8

_HEADER = """\
/* util.h -- common declarations */
#define VERSION 43
#define BUFFER_SIZE 1024
"""


#: programs 1..5 have a second source file; with make + 8 sh + 8 cc +
#: 13 sources x (cpp, cc1, as) + 8 ld this totals exactly the paper's
#: 64 fork()/execve() pairs
TWO_SOURCE_PROGRAMS = 5


def _helper_body(rng, helper):
    lines = ["int %s(int value) {" % helper]
    for _ in range(rng.range(3, 6)):
        lines.append(
            "    value = value * %d + %d;" % (rng.range(2, 9), rng.range(1, 99))
        )
    lines.append("    return value;")
    lines.append("}")
    lines.append("")
    return lines


def _main_source(rng, name, local_helpers, extern_helpers):
    lines = [
        '#include "util.h"',
        '#include "stdio.h"',
        "",
    ]
    for helper in local_helpers:
        lines.extend(_helper_body(rng, helper))
    lines.append("int main() {")
    lines.append("    int value = VERSION;")
    for helper in local_helpers + extern_helpers:
        lines.append("    call %s(value);" % helper)
    for _ in range(rng.range(2, 5)):
        lines.append("    call printf(value);")
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _lib_source(rng, helpers):
    lines = ['#include "util.h"', ""]
    for helper in helpers:
        lines.extend(_helper_body(rng, helper))
    return "\n".join(lines) + "\n"


def setup(kernel, seed=486):
    """Write 8 C programs (5 of them two-source), a header, a Makefile."""
    rng = Lcg(seed)
    kernel.mkdir_p(SRC_DIR)
    kernel.write_file(SRC_DIR + "/util.h", _HEADER)
    names = ["prog%d" % i for i in range(1, PROGRAM_COUNT + 1)]
    makefile = ["CC = cc", "", "all: " + " ".join(names), ""]
    for index, name in enumerate(names):
        local = ["%s_f%d" % (name, j) for j in range(1 + index % 2)]
        sources = [name + ".c"]
        extern = []
        if index < TWO_SOURCE_PROGRAMS:
            extern = ["%s_lib%d" % (name, j) for j in range(2)]
            kernel.write_file(
                "%s/%s_lib.c" % (SRC_DIR, name), _lib_source(rng, extern)
            )
            sources.append(name + "_lib.c")
        kernel.write_file(
            "%s/%s.c" % (SRC_DIR, name),
            _main_source(rng, name, local, extern),
        )
        makefile.append("%s: %s util.h" % (name, " ".join(sources)))
        makefile.append("\t$(CC) -o %s %s" % (name, " ".join(sources)))
        makefile.append("")
    kernel.write_file(SRC_DIR + "/Makefile", "\n".join(makefile) + "\n")
    return names


def run(kernel):
    """Run make over the 8 programs; returns the make exit status."""
    return kernel.run(
        "/bin/sh", ["sh", "-c", "cd %s; make" % SRC_DIR]
    )


def clean(kernel):
    """Remove build outputs so the next run rebuilds everything."""
    from repro.kernel.errno import SyscallError

    for i in range(1, PROGRAM_COUNT + 1):
        try:
            node = kernel.lookup_host(SRC_DIR)
            name = "prog%d" % i
            if node.contains(name):
                target = node.fs.inode(node.lookup(name))
                node.fs.unlink(node, name, target)
        except SyscallError:
            pass
