"""Workloads reproducing the paper's evaluation applications.

* :mod:`repro.workloads.format_dissertation` — format a dissertation
  with Scribe (Table 3-2): moderate system call use, single process.
* :mod:`repro.workloads.make_programs` — make 8 small C programs
  (Table 3-3): heavy system call use, many fork/execve pairs.
* :mod:`repro.workloads.afs_bench` — an Andrew-benchmark-like filesystem
  workload for the DFSTrace comparison (Section 3.5.3).
"""

from repro.workloads.world import boot_world

__all__ = ["boot_world"]
