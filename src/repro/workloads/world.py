"""Boot a fully-populated simulated machine.

``boot_world()`` creates a kernel, installs the userland binaries, and
lays down the support files programs expect (/usr/include headers,
/usr/lib/libc.o, the Scribe style databases, a bibliography).
"""

from repro.kernel import Kernel
from repro.programs import install_world
from repro.programs.cc import _assemble

_LIBC_ASM = """\
.globl printf
printf:
\tenter
\teval 0x1111
\tleave
.globl exit
exit:
\tenter
\teval 0x2222
\tleave
.globl read
read:
\tenter
\teval 0x3333
\tleave
.globl write
write:
\tenter
\teval 0x4444
\tleave
.globl open
open:
\tenter
\teval 0x5555
\tleave
.globl close
close:
\tenter
\teval 0x6666
\tleave
.globl strlen
strlen:
\tenter
\teval 0x7777
\tleave
.globl malloc
malloc:
\tenter
\teval 0x8888
\tleave
"""

_STDIO_H = """\
/* stdio.h -- simulated 4.3BSD */
#define NULL 0
#define EOF (-1)
#define BUFSIZ 1024
"""

_STDLIB_H = """\
/* stdlib.h -- simulated 4.3BSD */
#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1
"""

_SYS_TYPES_H = """\
/* sys/types.h -- simulated 4.3BSD */
#define off_t long
#define size_t unsigned
"""

_SCRIBE_REPORT_FMT = """\
; report document format definition
style report
pagewidth 72
pagelength 54
justification on
"""

_SCRIBE_FONTS_DEF = """\
; font family definitions
font bodyfont timesroman 10
font titlefont helvetica 14
font verbatimfont courier 9
"""

_SCRIBE_DEVICE_DEF = """\
; output device definition
device file
resolution 1
"""

_BIBLIOGRAPHY = """\
accetta86 | Accetta et al., Mach: A New Kernel Foundation for UNIX Development, USENIX 1986.
jones93 | Jones, Interposition Agents: Transparently Interposing User Code at the System Interface, SOSP 1993.
leffler89 | Leffler et al., The Design and Implementation of the 4.3BSD UNIX Operating System, 1989.
mummert93 | Mummert and Satyanarayanan, DFSTrace, CMU 1993.
satya90 | Satyanarayanan et al., Coda: A Highly Available File System, IEEE TC 1990.
reid80 | Reid, Scribe: A Document Specification Language and its Compiler, CMU 1980.
feldman79 | Feldman, Make - A Program for Maintaining Computer Programs, SPE 1979.
stallman89 | Stallman, Using and Porting GNU CC, FSF 1989.
"""


def boot_world(**kernel_kwargs):
    """Create a kernel with the full userland and support files installed."""
    kernel = Kernel(**kernel_kwargs)
    install_world(kernel)

    kernel.write_file("/usr/include/stdio.h", _STDIO_H)
    kernel.write_file("/usr/include/stdlib.h", _STDLIB_H)
    kernel.mkdir_p("/usr/include/sys")
    kernel.write_file("/usr/include/sys/types.h", _SYS_TYPES_H)

    kernel.write_file("/usr/lib/libc.o", "\n".join(_assemble(_LIBC_ASM)) + "\n")

    kernel.mkdir_p("/usr/lib/scribe")
    kernel.write_file("/usr/lib/scribe/report.fmt", _SCRIBE_REPORT_FMT)
    kernel.write_file("/usr/lib/scribe/fonts.def", _SCRIBE_FONTS_DEF)
    kernel.write_file("/usr/lib/scribe/device.def", _SCRIBE_DEVICE_DEF)
    kernel.write_file("/usr/lib/scribe/bibliography.bib", _BIBLIOGRAPHY)
    return kernel
