"""Table 3-2 workload: format a dissertation with Scribe.

The paper formats a preliminary dissertation draft — moderate system
call use (716 calls), a single process, dominated by formatting CPU.
``setup()`` writes a multi-chapter manuscript with @include'd chapter
files, citations, cross references, and index terms; ``run()`` formats
it and returns the exit status.
"""

from repro.workloads.textgen import Lcg, paragraph

MANUSCRIPT = "/home/mbj/diss/dissertation.mss"
OUTPUT = "/home/mbj/diss/dissertation.doc"

CHAPTERS = (
    "Introduction",
    "Research Overview",
    "The Interposition Toolkit",
    "Agent Construction",
    "Results",
    "Related Work",
    "Conclusions and Future Work",
    "Appendix: Implementation Details",
)

_CITE_KEYS = (
    "accetta86",
    "jones93",
    "leffler89",
    "mummert93",
    "satya90",
    "reid80",
    "feldman79",
    "stallman89",
)

#: paragraphs per section; sized so the whole format run lands near the
#: paper's 716-system-call, CPU-dominated profile
PARAGRAPHS_PER_SECTION = 8
SECTIONS_PER_CHAPTER = 5


def _chapter_text(rng, number, title):
    lines = ["@chapter(%s)" % title, ""]
    for section in range(1, SECTIONS_PER_CHAPTER + 1):
        lines.append("@section(Aspect %d of %s)" % (section, title.lower()))
        lines.append("@label(sec-%d-%d)" % (number, section))
        lines.append("")
        for index in range(PARAGRAPHS_PER_SECTION):
            text = paragraph(rng, sentences=8)
            if index == 1:
                text += " This follows the approach of @cite(%s)." % (
                    _CITE_KEYS[(number + section + index) % len(_CITE_KEYS)]
                )
            if index == 2:
                text += (
                    " See also Section @ref(sec-%d-%d)."
                    % (number, 1 + (section % SECTIONS_PER_CHAPTER))
                )
            if index == 3:
                word = text.split()[0].strip(".,")
                text += " @index(%s)" % word
            lines.append(text)
            lines.append("")
        if section == 2:
            lines.append("@begin(itemize)")
            for _ in range(3):
                lines.append(paragraph(rng, sentences=1))
                lines.append("")
            lines.append("@end(itemize)")
            lines.append("")
        if section == 3:
            lines.append("@begin(verbatim)")
            lines.append("    class symbolic_syscall {")
            lines.append("        virtual int syscall(int number);")
            lines.append("    };")
            lines.append("@end(verbatim)")
            lines.append("")
    return "\n".join(lines) + "\n"


def setup(kernel, seed=1993):
    """Write the dissertation manuscript tree; returns the top-level path."""
    rng = Lcg(seed)
    kernel.mkdir_p("/home/mbj/diss")
    top = [
        "@make(report)",
        "@device(file)",
        "",
        "@comment(Transparently Interposing User Code at the System Interface)",
        "",
    ]
    for number, title in enumerate(CHAPTERS, 1):
        name = "chapter%d.mss" % number
        kernel.write_file("/home/mbj/diss/" + name, _chapter_text(rng, number, title))
        top.append("@include(%s)" % name)
    kernel.write_file(MANUSCRIPT, "\n".join(top) + "\n")
    return MANUSCRIPT


def run(kernel):
    """Format the dissertation; returns the scribe exit status.

    Run as a single process (no shell), matching the paper's workload
    structure: "makes moderate use of system calls and is structured as
    a single process".
    """
    return kernel.run("/usr/bin/scribe", ["scribe", MANUSCRIPT, OUTPUT])
