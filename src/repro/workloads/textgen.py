"""Deterministic prose generation for workload inputs.

A linear congruential generator over a systems-flavoured vocabulary:
the same seed always produces the same manuscript, so workload system
call counts and output sizes are reproducible run to run.
"""

_WORDS = (
    "interposition agent kernel system interface call toolkit object "
    "pathname descriptor process signal directory file union trace "
    "transparent mechanism abstraction layer inheritance derived method "
    "implementation application binary unmodified emulation protected "
    "environment transactional semantics performance overhead measurement "
    "microsecond elapsed boilerplate numeric symbolic resolution reference "
    "monitoring facility untrusted restricted wrapper virtual address "
    "space handler registers state machine dependent independent portable "
    "filesystem name lookup operation behavior completeness appropriate "
    "code size goal design structure research overview related work "
    "conclusion substrate communication channel message pipe socket"
).split()

_CONNECTIVES = ("and", "or", "of", "for", "with", "under", "between", "the", "a")


class Lcg:
    """The classic BSD ``rand()``: deterministic and portable."""

    def __init__(self, seed):
        self.state = seed & 0x7FFFFFFF

    def next(self):
        """Advance the generator; returns the new state."""
        self.state = (self.state * 1103515245 + 12345) & 0x7FFFFFFF
        return self.state

    def pick(self, items):
        """A deterministic choice from *items*."""
        return items[self.next() % len(items)]

    def range(self, low, high):
        """A deterministic integer in [low, high]."""
        return low + self.next() % (high - low + 1)


def sentence(rng):
    """One generated sentence."""
    length = rng.range(6, 16)
    words = []
    for index in range(length):
        if index and index % 3 == 2:
            words.append(rng.pick(_CONNECTIVES))
        else:
            words.append(rng.pick(_WORDS))
    text = " ".join(words)
    return text[0].upper() + text[1:] + "."


def paragraph(rng, sentences=None):
    """A paragraph of generated sentences."""
    count = sentences if sentences is not None else rng.range(3, 7)
    return " ".join(sentence(rng) for _ in range(count))


def prose(rng, paragraphs):
    """Several paragraphs, blank-line separated."""
    return "\n\n".join(paragraph(rng) for _ in range(paragraphs))
