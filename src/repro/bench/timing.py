"""Timing harnesses for the performance tables.

The paper's application measurements are "the average of nine
successive runs done after an initial run from which the time was
discarded" — :func:`time_runs` reproduces that protocol.
"""

import gc
import time


def _median(samples):
    ordered = sorted(samples)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def time_runs(make_run, runs=9, discard_first=True):
    """Time ``make_run()`` repeatedly, paper-style.

    *make_run* performs one complete run (including any per-run setup
    that should not be timed it must do beforehand — pass a closure
    that builds a fresh world and returns a zero-argument callable if
    setup must be excluded).  Returns ``(mean_seconds, samples)``.
    """
    if discard_first:
        make_run()
    samples = []
    for _ in range(runs):
        start = time.perf_counter()
        make_run()
        samples.append(time.perf_counter() - start)
    return sum(samples) / len(samples), samples


def time_prepared_runs(prepare, runs=9, discard_first=True):
    """Like :func:`time_runs`, but ``prepare()`` returns the callable to
    time, so per-run setup (booting a world) is excluded from the timing.

    Garbage collection is disabled around each timed run and the median
    of the samples is reported, to keep host noise out of the small
    slowdown percentages the format workload measures.
    """
    if discard_first:
        prepare()()
    samples = []
    for _ in range(runs):
        run = prepare()
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            run()
            samples.append(time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return _median(samples), samples


def time_matrix(prepares, runs=9):
    """Time several configurations with interleaved rounds.

    *prepares* is an ordered mapping ``{name: prepare}`` where each
    ``prepare()`` returns a zero-argument run callable.  One warm-up
    round is discarded, then each round times every configuration once
    before moving on — interleaving keeps slow host drift (cache warmth,
    CPU frequency) from biasing whichever configuration runs first.

    The per-configuration estimate is the *minimum* over rounds: the
    workloads are deterministic, so the fastest observation is the one
    least disturbed by the host, and small true overheads (Table 3-2's
    single-digit percentages) survive noise that would swamp a mean.
    Returns ``{name: (min_seconds, samples)}``.
    """
    for prepare in prepares.values():
        prepare()()
    samples = {name: [] for name in prepares}
    for _ in range(runs):
        for name, prepare in prepares.items():
            run = prepare()
            gc_was_enabled = gc.isenabled()
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                run()
                samples[name].append(time.perf_counter() - start)
            finally:
                if gc_was_enabled:
                    gc.enable()
    return {name: (min(times), times) for name, times in samples.items()}


def paired_slowdowns(results, base_name="none"):
    """Per-round paired slowdown estimates from :func:`time_matrix` output.

    Within each round every configuration ran back to back, so the ratio
    ``config_time / base_time`` inside one round cancels slow host drift
    that absolute times cannot.  Returns ``{name: median_slowdown_pct}``.
    """
    base_samples = results[base_name][1]
    slowdowns = {}
    for name, (_, samples) in results.items():
        ratios = [
            sample / base
            for sample, base in zip(samples, base_samples)
            if base > 0
        ]
        slowdowns[name] = (_median(ratios) - 1.0) * 100.0
    return slowdowns


def usec_per_call(fn, calls=2000, repeats=5):
    """Microseconds per invocation of *fn*, best of *repeats* batches."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best / calls * 1_000_000


def time_with_snapshot(prepare, collect):
    """Time one prepared run and gather an in-band snapshot after it.

    ``prepare()`` returns the zero-argument run callable (as in
    :func:`time_prepared_runs`); ``collect(result)`` is called with the
    run's return value after the clock stops — typically it reads the
    observability registry (``kernel.obs.snapshot()``), pairing the
    wall-clock measurement with the in-band counters gathered during
    that same run.  Returns ``(seconds, collected)``.
    """
    run = prepare()
    start = time.perf_counter()
    result = run()
    elapsed = time.perf_counter() - start
    return elapsed, collect(result)


def slowdown(base_seconds, with_seconds):
    """Percent slowdown relative to a base time."""
    if base_seconds <= 0:
        return 0.0
    return (with_seconds - base_seconds) / base_seconds * 100.0
