"""Benchmark support: statement counting and timing harnesses.

Shared by the ``benchmarks/`` modules that regenerate each of the
paper's evaluation tables (see DESIGN.md's experiment index).
"""

from repro.bench.loc import count_statements, module_statements
from repro.bench.timing import time_runs, usec_per_call

__all__ = [
    "count_statements",
    "module_statements",
    "time_runs",
    "usec_per_call",
]
