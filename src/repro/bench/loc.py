"""Statement counting for the code-size comparisons (Table 3-1).

The paper measured agent sizes by counting semicolons, "a better
measure of the actual number of statements present in the code than
counting lines".  The Python equivalent is counting AST statement
nodes: one per executable statement, independent of formatting and
comments.  Docstrings (bare string expressions) are excluded, since
they are documentation, not statements.
"""

import ast
import inspect


def count_statements(source):
    """Count executable statements in Python *source* text."""
    tree = ast.parse(source)
    count = 0
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if _is_docstring(node):
            continue
        count += 1
    return count


def _is_docstring(node):
    return (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Constant)
        and isinstance(node.value.value, str)
    )


def module_statements(module):
    """Count statements in an imported module."""
    return count_statements(inspect.getsource(module))


def modules_statements(modules):
    """Total statements across several modules."""
    return sum(module_statements(m) for m in modules)


def toolkit_layers(include_object_layers=False):
    """The toolkit modules an agent links against.

    Simple agents (timex, trace) use the symbolic system call and lower
    levels; object-layer agents (union, dfs_trace) also use the
    descriptor, open object, pathname, and directory levels — matching
    the paper's two toolkit-size figures (2467 vs 3977 statements).
    """
    from repro.toolkit import boilerplate, numeric, symbolic

    layers = [boilerplate, numeric, symbolic]
    if include_object_layers:
        from repro.toolkit import descriptors, directory, pathnames

        layers += [descriptors, pathnames, directory]
    return layers


def agent_size_report():
    """Rows for Table 3-1: (agent, toolkit stmts, agent stmts, total)."""
    from repro.agents import dfs_trace, timex, trace, union_dirs

    simple_toolkit = modules_statements(toolkit_layers(False))
    object_toolkit = modules_statements(toolkit_layers(True))
    rows = []
    for name, module, toolkit_size in (
        ("timex", timex, simple_toolkit),
        ("trace", trace, simple_toolkit),
        ("union", union_dirs, object_toolkit),
        ("dfs_trace", dfs_trace, object_toolkit),
    ):
        agent_size = module_statements(module)
        rows.append((name, toolkit_size, agent_size, toolkit_size + agent_size))
    return rows
