"""Interposition Agents — a reproduction of Jones, SOSP '93.

An object-oriented toolkit for transparently interposing user code at
the (simulated 4.3BSD) system interface, together with the substrate it
runs on and the agents and workloads its evaluation measures.

Subpackages:

* :mod:`repro.kernel` — the simulated 4.3BSD kernel with Mach-style
  system call redirection (the substrate).
* :mod:`repro.toolkit` — the paper's contribution: the layered
  interposition toolkit (boilerplate, numeric, symbolic, pathname,
  descriptor, and directory layers; the agent loader; the
  separate-address-space placement).
* :mod:`repro.agents` — timex, trace, union, dfs_trace, and the other
  agents the paper measures or proposes.
* :mod:`repro.programs` — the simulated userland (sh, coreutils, make,
  the cc pipeline, the Scribe-like formatter).
* :mod:`repro.workloads` — the evaluation workloads.
* :mod:`repro.bench` — statement counting and timing harnesses used by
  the per-table benchmarks.

Quickstart::

    from repro.workloads import boot_world
    from repro.toolkit import SymbolicSyscall, run_under_agent

    class Shout(SymbolicSyscall):
        def sys_write(self, fd, data):
            return super().sys_write(fd, data.upper() if fd == 1 else data)

    kernel = boot_world()
    run_under_agent(kernel, Shout(), "/bin/sh", ["sh", "-c", "echo hi"])
    print(kernel.console.output_text())   # HI
"""

__version__ = "1.0.0"
__all__ = ["__version__"]
