"""repro.lint — agentlint, the static agent-protocol analyzer.

The paper's Goal 2 requires that an agent "both use and provide the
entire system interface"; until now that invariant was checked only
dynamically (one representative call per syscall in
``tests/test_completeness_sweep.py``).  This package proves the
protocol obligations *statically* — agent modules are parsed, never
executed — so a typo'd ``sys_*`` override, a swallowed signal, or a
leaked open-object reference is caught at review time, before any
workload happens to hit it.

Seven rules, each with a stable id usable in
``# repro-lint: disable=RULE`` suppressions (see
:mod:`repro.lint.rules` and docs/LINTING.md):

====  =================================================================
L001  every ``sys_*`` override names a real syscall in sysent
L002  ``init`` overrides chain to ``super().init`` or register
L003  open-object incref/decref pair on every path through a method
L004  error paths raise ``SyscallError`` with a known errno
L005  signal-path overrides forward via ``signal_up``
L006  agent code never imports ``repro.kernel`` internals
L007  sysent ↔ SymbolicSyscall parity, in both directions
====  =================================================================

Entry points: the ``repro-lint`` console script (or
``python scripts/agentlint.py``), and programmatically
:func:`repro.lint.run_lint`.
"""

from repro.lint.engine import LintError, LintResult, run_lint
from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.protocol import ProtocolModel, load_protocol
from repro.lint.rules import RULES, Rule, rule_ids

__all__ = [
    "ERROR", "WARNING", "Finding", "LintError", "LintResult",
    "ProtocolModel", "RULES", "Rule", "load_protocol", "rule_ids",
    "run_lint",
]
