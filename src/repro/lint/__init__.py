"""repro.lint — agentlint, the static agent-protocol analyzer.

The paper's Goal 2 requires that an agent "both use and provide the
entire system interface"; until now that invariant was checked only
dynamically (one representative call per syscall in
``tests/test_completeness_sweep.py``).  This package proves the
protocol obligations *statically* — agent modules are parsed, never
executed — so a typo'd ``sys_*`` override, a swallowed signal, or a
leaked open-object reference is caught at review time, before any
workload happens to hit it.

Two rule families share one engine, each id usable in
``# repro-lint: disable=RULE`` suppressions (see
:mod:`repro.lint.rules` and docs/LINTING.md).  The syntactic rules
pattern-match statements:

====  =================================================================
L001  every ``sys_*`` override names a real syscall in sysent
L002  ``init`` overrides chain to ``super().init`` or register
L004  error paths raise ``SyscallError`` with a known errno
L005  signal-path overrides forward via ``signal_up``
L006  agent code never imports ``repro.kernel`` internals
L007  sysent ↔ SymbolicSyscall parity, in both directions
L008  broad excepts in handlers re-raise — no swallowed SyscallError
L009  handlers never read host wall clock / global RNG
L010  handlers never mutate the emulation vector directly
L011  handlers never write to the host console
====  =================================================================

The flow rules (:mod:`repro.lint.flow`) build per-function control
flow graphs (:mod:`repro.lint.cfg`) and prove path-sensitive
properties the syntactic family cannot see — the PR 5 fault-injection
bugs (an inode leaked when the link step after its allocation raised)
are exactly this shape:

====  =================================================================
F001  fresh resources released/committed/returned on *every* path,
      exception edges included
F002  incref/decref balance per path (subsumes the deprecated L003)
F003  every ``sys_*`` path returns a value or raises SyscallError
F004  no unbounded ``.get()``/``.join()``/``.acquire()``/``.wait()``
      reachable from a handler
F005  every interposed path delegates, fails, or explicitly absorbs
L000  the sweep itself is crash-proof: unanalyzable files become
      per-file findings, never aborted runs
====  =================================================================

Entry points: the ``repro-lint`` console script (or
``python scripts/agentlint.py``), and programmatically
:func:`repro.lint.run_lint`.
"""

from repro.lint.engine import (LintError, LintResult, changed_files,
                               run_lint)
from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.protocol import ProtocolModel, load_protocol
from repro.lint.rules import RULES, Rule, rule_ids
from repro.lint.sarif import to_sarif

__all__ = [
    "ERROR", "WARNING", "Finding", "LintError", "LintResult",
    "ProtocolModel", "RULES", "Rule", "changed_files", "load_protocol",
    "rule_ids", "run_lint", "to_sarif",
]
