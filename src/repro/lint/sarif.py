"""SARIF 2.1.0 output: lint findings as code-scanning annotations.

:func:`to_sarif` renders a :class:`~repro.lint.engine.LintResult` as a
Static Analysis Results Interchange Format document, the schema GitHub
code scanning ingests — so a CI upload turns every finding into an
inline PR annotation on the offending line.

Mapping decisions:

* every registered rule appears in the tool's rule table (id, summary,
  rationale, severity), so the annotation UI can show the contract the
  finding violated;
* suppressed and baselined findings are emitted with a ``suppressions``
  entry (kind ``inSource`` / ``external``) — SARIF consumers hide them
  by default but the record of tolerated debt stays visible;
* the engine's line-number-free fingerprint rides in
  ``partialFingerprints`` so code scanning tracks a finding across
  unrelated edits the same way the baseline machinery does.
"""

import json

from repro.lint.findings import ERROR
from repro.lint.rules import RULES, rule_ids

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"

#: repository URL-ish identity for the tool entry
_INFORMATION_URI = "docs/LINTING.md"


def _level(severity):
    return "error" if severity == ERROR else "warning"


def _rule_entry(rule):
    entry = {
        "id": rule.rule_id,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": _level(rule.severity)},
    }
    if rule.superseded_by is not None:
        entry["deprecatedIds"] = [rule.rule_id]
        entry["relationships"] = [{
            "target": {"id": rule.superseded_by},
            "kinds": ["superseded"],
        }]
    return entry


def _result(finding):
    result = {
        "ruleId": finding.rule,
        "level": _level(finding.severity),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "partialFingerprints": {
            "reproLint/v1": finding.fingerprint(),
        },
    }
    suppressions = []
    if finding.suppressed:
        suppressions.append({
            "kind": "inSource",
            "justification": "repro-lint: disable= comment",
        })
    if finding.baselined:
        suppressions.append({
            "kind": "external",
            "justification": "recorded in the lint baseline",
        })
    if suppressions:
        result["suppressions"] = suppressions
    return result


def to_sarif(result):
    """The SARIF 2.1.0 document (a plain dict) for one lint run."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": _INFORMATION_URI,
                    "rules": [_rule_entry(RULES[rule_id])
                              for rule_id in rule_ids()],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "repository root (lint paths are "
                            "repo-relative)"}},
            },
            "results": [_result(finding) for finding in result.findings],
            "columnKind": "utf16CodeUnits",
        }],
    }


def write_sarif(path, result):
    """Serialize :func:`to_sarif` to *path*."""
    with open(path, "w") as handle:
        json.dump(to_sarif(result), handle, indent=1)
        handle.write("\n")
