"""The lint engine: discovery, suppression, baselines, and orchestration.

:func:`run_lint` is the programmatic entry point the CLI, the tests,
and ``scripts/generate_experiments.py`` all share.  It walks the given
paths, parses each Python file once, runs the per-file rules from
:mod:`repro.lint.checks`, runs the project-wide L007 parity pass, then
applies ``# repro-lint: disable=RULE`` suppressions and any baseline
before returning a :class:`LintResult`.

Suppression comments are honored on the finding's own line or on the
line directly above it, and should carry a one-line justification::

    # repro-lint: disable=L003  -- ownership transfers to Descriptor
    def install(self, fd, open_object):
        ...

A baseline file (``--baseline``) is a JSON list of finding
fingerprints (rule:path:symbol, no line numbers); matching findings
are reported but do not affect the exit code — the adoption path for
linting a codebase with known debt.
"""

import ast
import json
import os

from repro.lint import checks
from repro.lint.findings import sort_findings
from repro.lint.protocol import load_protocol


class LintError(Exception):
    """A problem with the lint run itself (bad path, unparseable file)."""


class LintResult:
    """Everything one lint run produced."""

    def __init__(self, findings, files):
        #: every finding, sorted, including suppressed/baselined ones
        self.findings = sort_findings(findings)
        #: the files that were scanned, in scan order
        self.files = list(files)

    @property
    def active(self):
        """Findings that count toward the exit code."""
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self):
        """Findings silenced by ``# repro-lint: disable=`` comments."""
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self):
        """Findings silenced by the baseline file."""
        return [f for f in self.findings if f.baselined]

    def counts(self):
        """``{rule_id: active finding count}`` (zero-count rules omitted)."""
        table = {}
        for finding in self.active:
            table[finding.rule] = table.get(finding.rule, 0) + 1
        return table

    def suppressed_counts(self):
        """``{rule_id: suppressed finding count}``."""
        table = {}
        for finding in self.suppressed:
            table[finding.rule] = table.get(finding.rule, 0) + 1
        return table

    def to_dict(self):
        """The ``--json`` document (schema pinned by tests/test_lint.py)."""
        return {
            "version": 1,
            "files": len(self.files),
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "active": len(self.active),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "by_rule": self.counts(),
                "suppressed_by_rule": self.suppressed_counts(),
            },
        }


def discover_files(paths):
    """Expand files and directories into a sorted list of ``.py`` files."""
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__")
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            raise LintError("no such file or directory: %s" % path)
    return files


def _display_path(path):
    relative = os.path.relpath(path)
    return path if relative.startswith("..") else relative


def suppressions_for(source):
    """Map line number -> set of rule ids disabled on that line.

    A trailing comment suppresses its own line.  A comment-only line
    suppresses the first following code line, so a justification may
    continue over several comment lines between the directive and the
    ``def`` it covers.
    """
    lines = source.splitlines()
    table = {}

    def note(lineno, rules):
        table.setdefault(lineno, set()).update(rules)

    for lineno, line in enumerate(lines, start=1):
        match = checks.SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        rules = {r for r in rules if r}
        note(lineno, rules)
        if line.lstrip().startswith("#"):
            # Comment-only directive: carry it to the code line below,
            # past any continuation comment lines.
            for ahead in range(lineno, len(lines)):
                text = lines[ahead].strip()
                if text and not text.startswith("#"):
                    note(ahead + 1, rules)
                    break
    return table


def _apply_suppressions(findings, table):
    for finding in findings:
        if finding.rule in table.get(finding.line, ()):
            finding.suppressed = True


def load_baseline(path):
    """Read a baseline file: a JSON list of finding fingerprints."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise LintError("baseline %s is not a JSON list" % path)
    return set(data)


def write_baseline(path, result):
    """Record every active finding's fingerprint as the new baseline."""
    fingerprints = sorted({f.fingerprint() for f in result.active})
    with open(path, "w") as handle:
        json.dump(fingerprints, handle, indent=1)
        handle.write("\n")
    return fingerprints


def _in_agents_package(path):
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    return "agents" in parts


def run_lint(paths, protocol_root=None, check_parity=True, baseline=None,
             only_rules=None):
    """Lint *paths* and return a :class:`LintResult`.

    *protocol_root* overrides where the sysent/symbolic/errno sources
    are read from (tests point it at fixture trees); *check_parity*
    gates the project-wide L007 pass; *baseline* is a set of
    fingerprints to tolerate; *only_rules* restricts reporting to the
    given rule ids.
    """
    model = load_protocol(protocol_root)
    files = discover_files(paths)
    findings = []
    for path in files:
        with open(path) as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as err:
            raise LintError("cannot parse %s: %s" % (path, err)) from None
        display = _display_path(path)
        file_findings = checks.check_module(
            display, tree, model, _in_agents_package(path))
        _apply_suppressions(file_findings, suppressions_for(source))
        findings.extend(file_findings)
    if check_parity:
        parity = checks.check_protocol(
            model,
            sysent_display=_display_path(model.sysent_path),
            symbolic_display=_display_path(model.symbolic_path))
        for source_path in (model.sysent_path, model.symbolic_path):
            with open(source_path) as handle:
                table = suppressions_for(handle.read())
            matching = [f for f in parity
                        if f.path == _display_path(source_path)]
            _apply_suppressions(matching, table)
        findings.extend(parity)
    if only_rules is not None:
        findings = [f for f in findings if f.rule in only_rules]
    if baseline:
        for finding in findings:
            if finding.fingerprint() in baseline:
                finding.baselined = True
    return LintResult(findings, files)
