"""The lint engine: discovery, suppression, baselines, and orchestration.

:func:`run_lint` is the programmatic entry point the CLI, the tests,
and ``scripts/generate_experiments.py`` all share.  It walks the given
paths, parses each Python file once, runs the per-file rules from
:mod:`repro.lint.checks`, runs the project-wide L007 parity pass, then
applies ``# repro-lint: disable=RULE`` suppressions and any baseline
before returning a :class:`LintResult`.

Suppression comments are honored on the finding's own line or on the
line directly above it, and should carry a one-line justification::

    # repro-lint: disable=L003  -- ownership transfers to Descriptor
    def install(self, fd, open_object):
        ...

A baseline file (``--baseline``) is a JSON list of finding
fingerprints (``rule:path:symbol``, no line numbers, with a ``#N``
occurrence suffix when one symbol holds several same-rule findings);
matching findings are reported but do not affect the exit code — the
adoption path for linting a codebase with known debt.  Entries may
also be objects ``{"fingerprint": ..., "reason": ...}`` so the debt
carries its justification in the file itself.

The sweep is crash-proof: a file the engine cannot parse or analyze
yields a per-file ``L000`` internal-error finding and the sweep
continues; the CLI turns any L000 into exit code 2 so CI can tell
"the code is dirty" from "the linter never looked".
"""

import ast
import json
import os
import subprocess

from repro.lint import checks, flow
from repro.lint.findings import Finding, sort_findings
from repro.lint.protocol import load_protocol
from repro.lint.rules import RULES, severity_of


class LintError(Exception):
    """A problem with the lint run itself (bad path, unparseable file)."""


class LintResult:
    """Everything one lint run produced."""

    def __init__(self, findings, files):
        #: every finding, sorted, including suppressed/baselined ones
        self.findings = sort_findings(findings)
        #: the files that were scanned, in scan order
        self.files = list(files)

    @property
    def active(self):
        """Findings that count toward the exit code."""
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self):
        """Findings silenced by ``# repro-lint: disable=`` comments."""
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self):
        """Findings silenced by the baseline file."""
        return [f for f in self.findings if f.baselined]

    def counts(self):
        """``{rule_id: active finding count}`` (zero-count rules omitted)."""
        table = {}
        for finding in self.active:
            table[finding.rule] = table.get(finding.rule, 0) + 1
        return table

    def suppressed_counts(self):
        """``{rule_id: suppressed finding count}``."""
        table = {}
        for finding in self.suppressed:
            table[finding.rule] = table.get(finding.rule, 0) + 1
        return table

    @property
    def internal_errors(self):
        """L000 findings: files the engine could not analyze."""
        return [f for f in self.findings if f.rule == "L000"]

    def to_dict(self):
        """The ``--json`` document (schema pinned by tests/test_lint.py)."""
        return {
            "version": 2,
            "files": len(self.files),
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "active": len(self.active),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "by_rule": self.counts(),
                "suppressed_by_rule": self.suppressed_counts(),
            },
        }


def discover_files(paths):
    """Expand files and directories into a sorted list of ``.py`` files."""
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__")
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            raise LintError("no such file or directory: %s" % path)
    return files


def _display_path(path):
    relative = os.path.relpath(path)
    return path if relative.startswith("..") else relative


def suppressions_for(source):
    """Map line number -> set of rule ids disabled on that line.

    A trailing comment suppresses its own line.  A comment-only line
    suppresses the first following code line, so a justification may
    continue over several comment lines between the directive and the
    ``def`` it covers.
    """
    lines = source.splitlines()
    table = {}

    def note(lineno, rules):
        table.setdefault(lineno, set()).update(rules)

    for lineno, line in enumerate(lines, start=1):
        match = checks.SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        rules = {r for r in rules if r}
        note(lineno, rules)
        if line.lstrip().startswith("#"):
            # Comment-only directive: carry it to the code line below,
            # past any continuation comment lines.
            for ahead in range(lineno, len(lines)):
                text = lines[ahead].strip()
                if text and not text.startswith("#"):
                    note(ahead + 1, rules)
                    break
    return table


def _alias_table():
    """``{successor_id: {deprecated ids it absorbs}}`` from the registry."""
    table = {}
    for rule in RULES.values():
        if rule.superseded_by is not None:
            table.setdefault(rule.superseded_by, set()).add(rule.rule_id)
    return table


def _apply_suppressions(findings, table):
    aliases = _alias_table()
    for finding in findings:
        disabled = table.get(finding.line, ())
        if finding.rule in disabled:
            finding.suppressed = True
        elif aliases.get(finding.rule, set()) & set(disabled):
            # A disable= naming the deprecated predecessor (e.g. L003)
            # silences the successor's finding too.
            finding.suppressed = True


def expand_rule_ids(rule_ids_wanted):
    """Translate deprecated ids in a ``--rules`` selection.

    Selecting a deprecated rule selects its successor (``--rules
    L003`` runs F002); the deprecated id itself is kept so baselines
    naming it still parse.
    """
    expanded = set(rule_ids_wanted)
    for rule_id in rule_ids_wanted:
        rule = RULES.get(rule_id)
        if rule is not None and rule.superseded_by is not None:
            expanded.add(rule.superseded_by)
    return expanded


def load_baseline(path):
    """Read a baseline file into ``{fingerprint: reason}``.

    Entries are plain fingerprint strings (reason ``""``) or objects
    ``{"fingerprint": ..., "reason": ...}`` carrying a justification.
    """
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise LintError("baseline %s is not a JSON list" % path)
    table = {}
    for entry in data:
        if isinstance(entry, str):
            table[entry] = ""
        elif isinstance(entry, dict) and "fingerprint" in entry:
            table[entry["fingerprint"]] = entry.get("reason", "")
        else:
            raise LintError(
                "baseline %s: entries must be fingerprint strings or "
                "{fingerprint, reason} objects (got %r)" % (path, entry))
    return table


def changed_files(ref, cwd=None):
    """Absolute paths of files changed relative to git *ref*.

    Includes working-tree modifications and untracked files, so
    ``--diff`` sees exactly what a PR (or a dirty checkout) touches.
    """
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "-z", ref, "--"],
            cwd=cwd, capture_output=True, text=True, check=True)
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "-z"],
            cwd=cwd, capture_output=True, text=True, check=True)
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=cwd, capture_output=True, text=True, check=True)
    except FileNotFoundError:
        raise LintError("--diff requires git on PATH") from None
    except subprocess.CalledProcessError as err:
        raise LintError("git diff against %r failed: %s"
                        % (ref, err.stderr.strip())) from None
    root = top.stdout.strip()
    names = [name for name in
             (diff.stdout.split("\0") + untracked.stdout.split("\0"))
             if name]
    return {os.path.abspath(os.path.join(root, name)) for name in names}


def _assign_occurrences(findings):
    """Number same-(rule, path, symbol) findings in source order.

    Gives the second leak in a function fingerprint ``...#1`` so a
    baseline entry can only ever absorb one finding — fixing one of
    two baselined leaks resurfaces the other instead of silently
    re-keying it onto the freed entry.
    """
    groups = {}
    for finding in findings:
        key = (finding.rule, finding.path, finding.symbol)
        groups.setdefault(key, []).append(finding)
    for members in groups.values():
        members.sort(key=lambda f: (f.line, f.col, f.message))
        for index, finding in enumerate(members):
            finding.occurrence = index


def write_baseline(path, result):
    """Record every active finding's fingerprint as the new baseline."""
    fingerprints = sorted({f.fingerprint() for f in result.active})
    with open(path, "w") as handle:
        json.dump(fingerprints, handle, indent=1)
        handle.write("\n")
    return fingerprints


def _package_membership(path):
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    return "agents" in parts, "toolkit" in parts


def _internal_error(path, line, message):
    return Finding("L000", severity_of("L000"), path, max(line, 1), 0,
                   "<file>", message)


def _lint_one_file(path, model, run_flow):
    """All findings for one file — never raises.

    A parse or analysis failure becomes a per-file L000 finding so one
    broken file cannot abort the sweep of the rest.
    """
    display = _display_path(path)
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as err:
        return [_internal_error(display, 1,
                                "cannot read file: %s" % err)]
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [_internal_error(
            display, err.lineno or 1,
            "cannot parse file: %s" % (err.msg or err))]
    in_agents, in_toolkit = _package_membership(path)
    try:
        file_findings = checks.check_module(display, tree, model,
                                            in_agents)
        if run_flow:
            file_findings.extend(flow.check_module_flow(
                display, tree, model, in_agents, in_toolkit))
    except RecursionError:
        return [_internal_error(display, 1,
                                "analysis overflowed on this file")]
    except Exception as err:  # crash-proof sweep: report, keep going
        return [_internal_error(
            display, 1, "internal error while analyzing: %r" % err)]
    _apply_suppressions(file_findings, suppressions_for(source))
    return file_findings


def run_lint(paths, protocol_root=None, check_parity=True, baseline=None,
             only_rules=None, diff_ref=None):
    """Lint *paths* and return a :class:`LintResult`.

    *protocol_root* overrides where the sysent/symbolic/errno sources
    are read from (tests point it at fixture trees); *check_parity*
    gates the project-wide L007 pass; *baseline* maps tolerated
    fingerprints to their justifications; *only_rules* restricts
    reporting to the given rule ids (deprecated ids select their
    successors); *diff_ref* restricts the sweep to files changed
    relative to that git ref.
    """
    model = load_protocol(protocol_root)
    files = discover_files(paths)
    if diff_ref is not None:
        changed = changed_files(diff_ref)
        files = [path for path in files
                 if os.path.abspath(path) in changed]
    findings = []
    for path in files:
        findings.extend(_lint_one_file(path, model, run_flow=True))
    if check_parity:
        parity = checks.check_protocol(
            model,
            sysent_display=_display_path(model.sysent_path),
            symbolic_display=_display_path(model.symbolic_path))
        for source_path in (model.sysent_path, model.symbolic_path):
            with open(source_path) as handle:
                table = suppressions_for(handle.read())
            matching = [f for f in parity
                        if f.path == _display_path(source_path)]
            _apply_suppressions(matching, table)
        findings.extend(parity)
    if only_rules is not None:
        expanded = expand_rule_ids(only_rules)
        findings = [f for f in findings if f.rule in expanded]
    _assign_occurrences(findings)
    if baseline:
        for finding in findings:
            if finding.fingerprint() in baseline:
                finding.baselined = True
    return LintResult(findings, files)
