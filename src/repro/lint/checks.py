"""The rule implementations: AST passes over one parsed module.

Everything here is static — agent modules are *parsed*, never imported,
so linting cannot boot the world or run agent side effects (the same
reason :mod:`repro.lint.protocol` reads the toolkit contract from
source).  The per-file entry point is :func:`check_module`; the
project-wide sysent ↔ symbolic parity pass is :func:`check_protocol`.

Scope decisions each rule makes:

* "agent-like" classes are found by base-name heuristics plus
  in-module inheritance (see :func:`agent_like_classes`) — agents
  derive from the toolkit layers by name, and the linter must work
  without resolving imports.
* L003 counts reference traffic in *every* function: open-object
  refcounts are the cross-cutting invariant the paper calls out, and
  the ownership-transfer points in the toolkit carry explicit
  suppressions rather than a blanket exemption.
* L006 applies only to modules under an ``agents`` directory: the
  toolkit's boilerplate *is* the sanctioned kernel-facing mechanism.
* L008 looks only at handler methods (``sys_*``, ``handle_syscall``,
  ``handle_signal``): those are where an escaping ``SyscallError`` *is*
  the call's errno result, so a broad ``except`` that fails to re-raise
  silently converts failure into success.
* L009 shares L008's handler-method scope: host wall-clock and
  interpreter-global RNG reads matter exactly where the agent decides
  protocol outcomes, because those decisions are what record/replay
  (:mod:`repro.obs.recorder`) has to reproduce.
* L010 shares the same handler-method scope: a handler that writes
  ``*.emulation_vector`` directly, instead of going through
  ``task_set_emulation``, skips the invalidation funnel the kernel's
  fast-dispatch and compiled-dispatch tables depend on
  (:mod:`repro.kernel.compile`).
"""

import ast
import difflib
import re

from repro.lint.findings import Finding
from repro.lint.rules import severity_of

#: toolkit base classes whose subclasses are interposition agents
AGENT_BASE_NAMES = frozenset({
    "Agent",
    "NumericSyscall",
    "BSDNumericSyscall",
    "SymbolicSyscall",
    "DescSymbolicSyscall",
    "PathSymbolicSyscall",
    "SeparateSpaceAgent",
})

#: kernel modules that are agent-visible ABI (value types and constants);
#: anything else under repro.kernel is interposition-bypassing machinery
ALLOWED_KERNEL_MODULES = frozenset({
    "errno",      # errno values and SyscallError
    "sysent",     # the system call table (numbers and names)
    "stat",       # struct stat and S_IS* predicates
    "signals",    # signal numbers and names
    "ofile",      # open(2)/fcntl(2) flag constants
    "clock",      # the Timeval value type
    "inode",      # the Dirent value type returned by getdirentries
    "ktrace",     # ktrace(2) op constants and record layout
    "dfstrace",   # DFSTrace record layout (the comparison format)
    "devices",    # ioctl request constants
})

#: calls that install interception; an init doing one of these (or
#: chaining to super().init) satisfies L002
_REGISTRATION_CALLS = frozenset({
    "register_all",
    "register_interest",
    "register_interest_many",
    "register_interest_range",
    "register_signal_interest",
})

#: signal overrides must reach one of these somewhere in the body
_SIGNAL_FORWARDERS = frozenset({
    "signal_up", "signal_handler", "handle_signal",
})

_ERRNO_LOOKING = re.compile(r"^E[A-Z0-9]+$")

SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)")


def _base_name(node):
    """The rightmost name of a base-class expression (``a.b.C`` -> C)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _looks_like_agent_base(name):
    return (name in AGENT_BASE_NAMES
            or name.endswith("Syscall")
            or name.endswith("Agent"))


def agent_like_classes(tree):
    """The module's agent classes: ``{class_name: ClassDef}``.

    A class is agent-like when a base name matches the toolkit layer
    classes (or the ``*Syscall``/``*Agent`` naming convention), when it
    derives — transitively, within this module — from such a class, or
    when it defines ``sys_*`` methods itself while having any base
    (an agent reached through an imported intermediate subclass).
    """
    classes = [node for node in ast.walk(tree)
               if isinstance(node, ast.ClassDef)]
    agentish = {}
    changed = True
    while changed:
        changed = False
        for node in classes:
            if node.name in agentish:
                continue
            bases = [_base_name(base) for base in node.bases]
            bases = [name for name in bases if name]
            hit = any(_looks_like_agent_base(name) or name in agentish
                      for name in bases)
            if not hit and bases:
                hit = any(isinstance(item, ast.FunctionDef)
                          and item.name.startswith("sys_")
                          for item in node.body)
            if hit:
                agentish[node.name] = node
                changed = True
    return agentish


def _calls_in(node):
    """Every Call node under *node*, including nested ones."""
    return [child for child in ast.walk(node)
            if isinstance(child, ast.Call)]


def _finding(rule, path, node, symbol, message):
    return Finding(rule, severity_of(rule), path, node.lineno,
                   getattr(node, "col_offset", 0), symbol, message)


# -- L001: sys_* overrides name real system calls -----------------------


def _check_sys_names(path, agentish, model, out):
    for class_name, node in sorted(agentish.items()):
        for item in node.body:
            if not (isinstance(item, ast.FunctionDef)
                    and item.name.startswith("sys_")):
                continue
            call_name = item.name[4:]
            if model.is_syscall(call_name):
                continue
            hint = ""
            close = difflib.get_close_matches(
                call_name, list(model.syscalls), n=1)
            if close:
                hint = " (did you mean sys_%s?)" % close[0]
            out(_finding(
                "L001", path, item, "%s.%s" % (class_name, item.name),
                "%s overrides %s, but %r is not a system call in "
                "repro.kernel.sysent — the override will never be "
                "invoked%s" % (class_name, item.name, call_name, hint)))


# -- L002: init overrides chain or register -----------------------------


def _is_super_call(call, method):
    """True for ``super().method(...)`` / ``super(C, self).method(...)``."""
    func = call.func
    return (isinstance(func, ast.Attribute)
            and func.attr == method
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super")


def _check_init_overrides(path, agentish, out):
    for class_name, node in sorted(agentish.items()):
        for item in node.body:
            if not (isinstance(item, ast.FunctionDef)
                    and item.name == "init"):
                continue
            satisfied = False
            for call in _calls_in(item):
                if _is_super_call(call, "init"):
                    satisfied = True
                    break
                func = call.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _REGISTRATION_CALLS):
                    satisfied = True
                    break
            if not satisfied:
                out(_finding(
                    "L002", path, item, "%s.init" % class_name,
                    "%s.init neither calls super().init(...) nor "
                    "registers interception itself — the agent will "
                    "attach but intercept nothing" % class_name))


# -- L003: balanced open-object reference traffic per method ------------


class _FunctionCollector(ast.NodeVisitor):
    """Collect every function/method with its enclosing symbol name."""

    def __init__(self):
        self.functions = []  # (symbol, FunctionDef)
        self._stack = []

    def visit_ClassDef(self, node):
        """Track the class name while descending."""
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def _visit_function(self, node):
        symbol = ".".join(self._stack + [node.name])
        self.functions.append((symbol, node))
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node):
        """Record a function and recurse for nested definitions."""
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node):
        """Async defs are collected the same way."""
        self._visit_function(node)


# L003 (count incref/decref per method) lived here until the flow
# rules landed: the per-method counter could not see try/finally or
# early returns, so it is superseded by the path-sensitive F002 in
# :mod:`repro.lint.flow`.  The id stays registered as a deprecated
# alias — ``disable=L003`` suppressions silence F002.


# -- L004: errno discipline ---------------------------------------------


def _check_error_returns(path, agentish, out):
    for class_name, node in sorted(agentish.items()):
        for item in node.body:
            if not (isinstance(item, ast.FunctionDef)
                    and item.name.startswith("sys_")):
                continue
            symbol = "%s.%s" % (class_name, item.name)
            for child in ast.walk(item):
                if not isinstance(child, ast.Return) or child.value is None:
                    continue
                value = child.value
                if (isinstance(value, ast.UnaryOp)
                        and isinstance(value.op, ast.USub)
                        and isinstance(value.operand, ast.Constant)
                        and isinstance(value.operand.value, int)):
                    out(_finding(
                        "L004", path, child, symbol,
                        "%s returns a raw negative int; failures must "
                        "raise SyscallError(errno) — a plain return is "
                        "marshalled as success" % symbol))
                elif (isinstance(value, ast.Constant)
                        and value.value is None):
                    out(_finding(
                        "L004", path, child, symbol,
                        "%s returns None explicitly; failures must "
                        "raise SyscallError(errno), and successes "
                        "should return the call's real value" % symbol))


def _check_syscallerror_args(path, tree, model, out):
    for call in _calls_in(tree):
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "SyscallError":
            continue
        if not call.args:
            out(_finding(
                "L004", path, call, "SyscallError",
                "SyscallError raised without an errno; pass a value "
                "from repro.kernel.errno"))
            continue
        arg = call.args[0]
        if (isinstance(arg, ast.Constant) and isinstance(arg.value, int)
                and arg.value not in model.errno_values):
            out(_finding(
                "L004", path, call, "SyscallError",
                "SyscallError raised with raw int %r, which is not a "
                "known errno value" % arg.value))
        elif (isinstance(arg, ast.Name)
                and _ERRNO_LOOKING.match(arg.id)
                and arg.id not in model.errno_names):
            out(_finding(
                "L004", path, call, "SyscallError",
                "SyscallError raised with %s, which is not an errno "
                "defined in repro.kernel.errno" % arg.id))


# -- L005: signal overrides forward -------------------------------------


def _check_signal_forwarding(path, agentish, out):
    for class_name, node in sorted(agentish.items()):
        for item in node.body:
            if not (isinstance(item, ast.FunctionDef)
                    and item.name in ("signal_handler", "handle_signal")):
                continue
            forwards = any(
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _SIGNAL_FORWARDERS
                for call in _calls_in(item))
            if not forwards:
                out(_finding(
                    "L005", path, item,
                    "%s.%s" % (class_name, item.name),
                    "%s.%s neither forwards via signal_up nor delegates "
                    "to another handler — signals die here and the "
                    "client's dispositions never run"
                    % (class_name, item.name)))


# -- L008: broad except clauses must not swallow SyscallError -----------

#: handler methods whose exceptions are protocol-bearing: a SyscallError
#: escaping one IS the call's errno result
_HANDLER_METHOD_RE = re.compile(r"^(sys_\w+|handle_syscall|handle_signal)$")

_BROAD_EXC_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad_handler(handler):
    """True for ``except:``, ``except Exception``, ``except BaseException``."""
    if handler.type is None:
        return True
    name = _base_name(handler.type)
    return name in _BROAD_EXC_NAMES


def _reraises(handler):
    """True when the except clause's body contains any ``raise``."""
    return any(isinstance(child, ast.Raise) for child in ast.walk(handler))


def _names_syscallerror(type_node):
    """True when an except type plausibly includes SyscallError.

    Matches ``SyscallError`` itself (bare, dotted, or inside a tuple)
    and ALL_CAPS alias names — the convention for module-level
    exception tuples like the guard layer's ``PASS_THROUGH``.  A
    concrete foreign exception (``ValueError``, ...) does not match:
    re-raising *that* still lets a broad later clause eat SyscallError.
    """
    for node in ast.walk(type_node):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            continue
        if name == "SyscallError" or name.isupper():
            return True
    return False


def _check_error_swallowing(path, agentish, out):
    """L008: in handler methods, a broad except that swallows.

    A broad clause is fine when its own body re-raises (bare ``raise``
    or a translated error), or when an *earlier* clause of the same
    ``try`` re-raises — the guard layer's ``except PASS_THROUGH: raise``
    followed by ``except BaseException`` is the sanctioned containment
    shape, and the earlier clause is what keeps SyscallError flowing.
    Anything else turns the protocol's failure signal into a silent
    success the client cannot distinguish from a real result.
    """
    for class_name, node in sorted(agentish.items()):
        for item in node.body:
            if not (isinstance(item, ast.FunctionDef)
                    and _HANDLER_METHOD_RE.match(item.name)):
                continue
            symbol = "%s.%s" % (class_name, item.name)
            for child in ast.walk(item):
                if not isinstance(child, ast.Try):
                    continue
                protected = False
                for handler in child.handlers:
                    if _is_broad_handler(handler):
                        if protected or _reraises(handler):
                            continue
                        shown = ("except:" if handler.type is None
                                 else "except %s"
                                 % _base_name(handler.type))
                        out(_finding(
                            "L008", path, handler, symbol,
                            "%s catches SyscallError in a broad %r "
                            "clause and never re-raises — the call's "
                            "errno result is swallowed and marshalled "
                            "as success; re-raise the protocol "
                            "exceptions first (see repro.toolkit.guard "
                            "PASS_THROUGH), then contain the rest"
                            % (symbol, shown)))
                    elif (_reraises(handler)
                            and _names_syscallerror(handler.type)):
                        # An earlier clause that catches the protocol
                        # exceptions and re-raises them: broad clauses
                        # after it can no longer see SyscallError.
                        protected = True


# -- L009: no host nondeterminism in handler methods --------------------

#: module names whose top-level functions read host nondeterminism
_NONDET_MODULES = frozenset({"time", "random"})


def _check_wallclock(path, agentish, out):
    """L009: handler methods must not call time.*/random.* directly.

    Flags any call whose function is an attribute of the *bare module
    name* ``time`` or ``random`` (``time.time()``, ``random.choice``,
    ...) inside a ``sys_*``/``handle_syscall``/``handle_signal`` body.
    A seeded ``random.Random`` instance held on the agent
    (``self._rng.random()``) does not match — that is the sanctioned
    shape: its stream is a function of the seed and the call sequence,
    which the record/replay recorder makes deterministic.
    """
    for class_name, node in sorted(agentish.items()):
        for item in node.body:
            if not (isinstance(item, ast.FunctionDef)
                    and _HANDLER_METHOD_RE.match(item.name)):
                continue
            symbol = "%s.%s" % (class_name, item.name)
            for child in ast.walk(item):
                if not isinstance(child, ast.Call):
                    continue
                func = child.func
                if not (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id in _NONDET_MODULES):
                    continue
                shown = "%s.%s()" % (func.value.id, func.attr)
                out(_finding(
                    "L009", path, child, symbol,
                    "%s calls %s — host nondeterminism in a handler "
                    "makes the agent's decisions unreplayable; read "
                    "virtual time with a gettimeofday downcall and "
                    "draw randomness from a seeded random.Random "
                    "instance instead" % (symbol, shown)))


# -- L010: interception changes go through task_set_emulation -----------

#: call-attribute names that mutate a dict in place
_DICT_MUTATORS = frozenset({"pop", "clear", "update", "setdefault",
                            "popitem"})


def _is_emulation_vector(node):
    """True for any ``<expr>.emulation_vector`` attribute access."""
    return (isinstance(node, ast.Attribute)
            and node.attr == "emulation_vector")


def _check_vector_mutation(path, agentish, out):
    """L010: handler methods must not mutate ``*.emulation_vector``.

    Flags subscript assignment/deletion and the in-place dict mutators
    (``pop``/``clear``/``update``/``setdefault``/``popitem``) applied
    to any ``.emulation_vector`` attribute inside a handler body.
    Reading the vector is fine — the rule is about the write funnel:
    ``register_interest``/``unregister_interest`` route the change
    through ``task_set_emulation``, which is where the kernel retires
    its fast-dispatch row, the compiled per-syscall chains, and the
    downcall-chain epoch (:mod:`repro.kernel.compile`).  A direct
    mutation skips every one of those invalidations, so already-built
    flat chains keep dispatching the *old* stack.
    """
    for class_name, node in sorted(agentish.items()):
        for item in node.body:
            if not (isinstance(item, ast.FunctionDef)
                    and _HANDLER_METHOD_RE.match(item.name)):
                continue
            symbol = "%s.%s" % (class_name, item.name)

            def flag(child, shown, symbol=symbol):
                out(_finding(
                    "L010", path, child, symbol,
                    "%s mutates the emulation vector directly (%s) — "
                    "this bypasses task_set_emulation, so the kernel's "
                    "fast-dispatch and compiled-dispatch tables are "
                    "never invalidated and stale flat chains keep "
                    "running the old stack; change interception with "
                    "register_interest/unregister_interest instead"
                    % (symbol, shown)))

            for child in ast.walk(item):
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = (child.targets
                               if isinstance(child, ast.Assign)
                               else [child.target])
                    for target in targets:
                        if (isinstance(target, ast.Subscript)
                                and _is_emulation_vector(target.value)):
                            flag(child, "subscript assignment")
                elif isinstance(child, ast.Delete):
                    for target in child.targets:
                        if (isinstance(target, ast.Subscript)
                                and _is_emulation_vector(target.value)):
                            flag(child, "del of a vector entry")
                elif isinstance(child, ast.Call):
                    func = child.func
                    if (isinstance(func, ast.Attribute)
                            and func.attr in _DICT_MUTATORS
                            and _is_emulation_vector(func.value)):
                        flag(child, "emulation_vector.%s()" % func.attr)


# -- L011: no host console writes in handler methods --------------------


def _is_host_stream(node):
    """True for ``sys.stdout`` / ``sys.stderr`` attribute access."""
    return (isinstance(node, ast.Attribute)
            and node.attr in ("stdout", "stderr")
            and isinstance(node.value, ast.Name)
            and node.value.id == "sys")


def _check_host_print(path, agentish, out):
    """L011: handler methods must not write to the host console.

    Flags ``print(...)`` calls and ``sys.stdout.write()`` /
    ``sys.stderr.write()`` (and any other method on those streams)
    inside a ``sys_*``/``handle_syscall``/``handle_signal`` body.  The
    bytes such a call emits exist only on the host: agents stacked
    below never see them, the record/replay recorder cannot capture
    them, and the client's own descriptors are bypassed.  The
    sanctioned shapes are a ``syscall_down("write", fd, ...)`` to a
    descriptor the agent opened (the trace agent's high-fd log) or the
    client's own stdout/stderr descriptors.
    """
    for class_name, node in sorted(agentish.items()):
        for item in node.body:
            if not (isinstance(item, ast.FunctionDef)
                    and _HANDLER_METHOD_RE.match(item.name)):
                continue
            symbol = "%s.%s" % (class_name, item.name)
            for child in ast.walk(item):
                if not isinstance(child, ast.Call):
                    continue
                func = child.func
                if isinstance(func, ast.Name) and func.id == "print":
                    shown = "print()"
                elif (isinstance(func, ast.Attribute)
                        and _is_host_stream(func.value)):
                    shown = "sys.%s.%s()" % (func.value.attr, func.attr)
                else:
                    continue
                out(_finding(
                    "L011", path, child, symbol,
                    "%s writes to the host console (%s) — the bytes "
                    "bypass the simulated machine entirely, so agents "
                    "below cannot interpose on them and replay runs "
                    "lose them; write through a "
                    "syscall_down('write', fd, ...) downcall instead"
                    % (symbol, shown)))


# -- L006: no kernel internals from agent code --------------------------


def _kernel_submodule(dotted):
    """The first component under ``repro.kernel`` in a dotted path."""
    parts = dotted.split(".")
    if parts[:2] != ["repro", "kernel"]:
        return None
    return parts[2] if len(parts) > 2 else ""


def _check_layer_bypass(path, tree, out):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                sub = _kernel_submodule(alias.name)
                if sub is None:
                    continue
                if sub == "" or sub not in ALLOWED_KERNEL_MODULES:
                    out(_finding(
                        "L006", path, node, alias.name,
                        "agent code imports %s; go through "
                        "syscall_down/toolkit objects — only kernel "
                        "value types and constants (%s) are "
                        "agent-visible" % (alias.name, "repro.kernel."
                        + "/".join(sorted(ALLOWED_KERNEL_MODULES)))))
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:
                continue  # relative imports cannot reach repro.kernel
            parts = node.module.split(".")
            if parts[:2] != ["repro", "kernel"]:
                continue
            if len(parts) == 2:
                subs = [(alias.name, "repro.kernel." + alias.name)
                        for alias in node.names]
            else:
                subs = [(parts[2], node.module)]
            for sub, shown in subs:
                if sub not in ALLOWED_KERNEL_MODULES:
                    out(_finding(
                        "L006", path, node, shown,
                        "agent code imports repro.kernel internals "
                        "(%s); go through syscall_down/toolkit objects "
                        "instead" % shown))


# -- the per-file entry point -------------------------------------------


def check_module(path, tree, model, in_agents_package):
    """Run every per-file rule over one parsed module.

    *path* is the display path for findings, *tree* the parsed AST,
    *model* the :class:`~repro.lint.protocol.ProtocolModel`, and
    *in_agents_package* selects the L006 layering rule (it applies to
    ``repro.agents.*`` code only).
    """
    findings = []
    out = findings.append
    agentish = agent_like_classes(tree)
    _check_sys_names(path, agentish, model, out)
    _check_init_overrides(path, agentish, out)
    _check_error_returns(path, agentish, out)
    _check_syscallerror_args(path, tree, model, out)
    _check_signal_forwarding(path, agentish, out)
    _check_error_swallowing(path, agentish, out)
    _check_wallclock(path, agentish, out)
    _check_vector_mutation(path, agentish, out)
    _check_host_print(path, agentish, out)
    if in_agents_package:
        _check_layer_bypass(path, tree, out)
    return findings


# -- L007: table <-> symbolic layer parity (project-wide) ---------------


def check_protocol(model, sysent_display=None, symbolic_display=None):
    """Bidirectional sysent ↔ SymbolicSyscall parity, statically.

    Every BSD-range table entry must have a ``sys_*`` method on
    :class:`~repro.toolkit.symbolic.SymbolicSyscall` (Mach extension
    traps above ``MAX_BSD_SYSCALL`` are boilerplate machinery and may
    be method-less), and every ``sys_*`` method must name some table
    entry.  Display paths default to the model's source files.
    """
    findings = []
    sysent_path = sysent_display or model.sysent_path
    symbolic_path = symbolic_display or model.symbolic_path
    for name in model.bsd_names():
        info = model.syscalls[name]
        if ("sys_" + name) not in model.symbolic_methods:
            findings.append(Finding(
                "L007", severity_of("L007"), sysent_path, info.line, 0,
                name,
                "sysent entry %d (%s) has no sys_%s method on "
                "SymbolicSyscall — agents cannot provide this call"
                % (info.number, name, name)))
    for method, line in sorted(model.symbolic_methods.items()):
        if not model.is_syscall(method[4:]):
            findings.append(Finding(
                "L007", severity_of("L007"), symbolic_path, line, 0,
                "SymbolicSyscall.%s" % method,
                "SymbolicSyscall.%s names no sysent entry — the method "
                "is unreachable dead interface" % method))
    return findings
