"""The rule registry: stable ids, severities, and one-line contracts.

Every agentlint rule has a stable id (``L001`` .. ``L011``) used in
output, in ``# repro-lint: disable=`` suppressions, and in baseline
files.  The registry is the single source of truth the CLI, the docs
test, and ``docs/LINTING.md`` draw on; rule *implementations* live in
:mod:`repro.lint.checks`.
"""

from repro.lint.findings import ERROR


class Rule:
    """One registered rule: id, severity, and its contract in one line."""

    __slots__ = ("rule_id", "severity", "summary", "rationale",
                 "superseded_by")

    def __init__(self, rule_id, severity, summary, rationale,
                 superseded_by=None):
        self.rule_id = rule_id
        self.severity = severity
        self.summary = summary
        self.rationale = rationale
        #: for deprecated rules: the id of the rule that replaced it
        #: (``--rules`` and ``disable=`` directives naming this rule
        #: are translated to the successor)
        self.superseded_by = superseded_by

    @property
    def deprecated(self):
        return self.superseded_by is not None

    def __repr__(self):
        return "<Rule %s %s>" % (self.rule_id, self.severity)


#: id -> :class:`Rule` for every rule agentlint implements
RULES = {}


def _register(rule_id, severity, summary, rationale, superseded_by=None):
    RULES[rule_id] = Rule(rule_id, severity, summary, rationale,
                          superseded_by=superseded_by)


_register(
    "L001", ERROR,
    "every sys_* override names a real syscall in repro.kernel.sysent",
    "a typo'd override is silently never called: BSDNumericSyscall "
    "binds methods by name, so the call falls through to the default "
    "behaviour and the agent is un-interposed on that call (paper "
    "Goal 2: agents must provide the entire interface).",
)
_register(
    "L002", ERROR,
    "init overrides call super().init(...) or register interception "
    "themselves",
    "an init that neither chains nor registers leaves the agent "
    "attached but intercepting nothing — every call bypasses it "
    "(paper Section 2.3: agent invocation installs interception).",
)
_register(
    "L003", ERROR,
    "[deprecated, superseded by F002] OpenObject references taken and "
    "released in balanced pairs per method",
    "the per-method incref/decref counter could not see try/finally "
    "or early returns; F002 checks the same balance path-sensitively. "
    "``disable=L003`` suppressions and ``--rules L003`` selections "
    "are translated to F002.",
    superseded_by="F002",
)
_register(
    "L004", ERROR,
    "error paths raise SyscallError with a known errno, never raw "
    "ints/None",
    "the symbolic protocol carries failure as SyscallError; a raw -1 "
    "or None return is marshalled as a *successful* result and the "
    "client never sees the error (kernel errno convention, "
    "repro.kernel.errno).",
)
_register(
    "L005", ERROR,
    "signal-path overrides forward via signal_up (or delegate to a "
    "handler that does)",
    "an agent that intercepts signals without forwarding swallows "
    "them: the client's own dispositions never run (paper Section "
    "2.3, the upward path).",
)
_register(
    "L006", ERROR,
    "agent code goes through syscall_down/toolkit objects, not "
    "repro.kernel internals",
    "importing kernel machinery from an agent bypasses the layering "
    "that makes agents stackable and placement-independent; only the "
    "kernel's value types and constants are agent-visible ABI.",
)
_register(
    "L007", ERROR,
    "sysent and SymbolicSyscall agree bidirectionally (every BSD "
    "table entry has a sys_* method and vice versa)",
    "a table entry without a method is a call agents cannot provide; "
    "a method without an entry can never be reached — either way "
    "completeness (paper Goal 2, Section 3.2) is broken before "
    "anything runs.",
)
_register(
    "L008", ERROR,
    "broad except clauses in handler methods re-raise or are preceded "
    "by a handler that does — SyscallError must not be swallowed",
    "a bare ``except:`` (or ``except Exception``/``BaseException``) in "
    "a sys_*/handle_syscall/handle_signal body catches SyscallError "
    "too; if nothing in the clause re-raises, the protocol's failure "
    "signal is converted into a silent success and the client sees a "
    "wrong result instead of an errno (the containment layer, "
    "repro.toolkit.guard, shows the sanctioned shape: re-raise the "
    "protocol exceptions first, then contain the rest).",
)
_register(
    "L009", ERROR,
    "handler methods never read host nondeterminism: no time.*/"
    "random.* module calls — use the virtual clock and seeded "
    "generators",
    "a sys_*/handle_syscall/handle_signal body that calls time.time() "
    "or module-level random.random() makes the agent's decisions "
    "depend on host wall clock and interpreter-global RNG state; such "
    "runs cannot be captured by the record/replay recorder "
    "(repro.obs.recorder) — read virtual time via gettimeofday "
    "downcalls and draw randomness from a seeded instance the way "
    "repro.agents.chaos does.",
)
_register(
    "L010", ERROR,
    "handler methods never mutate the emulation vector directly: "
    "interception changes go through register_interest/"
    "unregister_interest (task_set_emulation)",
    "a sys_*/handle_syscall/handle_signal body that assigns into, "
    "deletes from, or pops ``*.emulation_vector`` bypasses "
    "task_set_emulation — the single funnel that invalidates the "
    "kernel's fast-dispatch and compiled-dispatch tables "
    "(repro.kernel.compile) and bumps the downcall-chain epoch; a "
    "direct mutation leaves stale flat chains running the *old* stack "
    "for every process the agent serves.",
)
_register(
    "L011", ERROR,
    "handler methods never write to the host console: no print() or "
    "sys.stdout/sys.stderr writes — output goes through write "
    "downcalls",
    "a sys_*/handle_syscall/handle_signal body that calls print() or "
    "sys.stdout.write() emits bytes the simulated machine never sees: "
    "the output bypasses the client's descriptors, so no agent below "
    "can observe or rewrite it, the record/replay recorder cannot "
    "capture it, and in-world programs reading the console miss it — "
    "write through a syscall_down('write', fd, ...) downcall (or the "
    "trace agent's log descriptor pattern) instead.",
)


_register(
    "L000", ERROR,
    "the linter itself analyzed every file it was pointed at",
    "an unparseable or pathological file must not silently vanish "
    "from the sweep: the engine reports it as a per-file finding and "
    "the CLI exits 2, so CI distinguishes 'the code is dirty' from "
    "'the linter never looked'.",
)
_register(
    "F001", ERROR,
    "a fresh resource (make_inode/create_* result) is released, "
    "committed, or returned on every path — exception edges included",
    "PR 5's fault injection found creat/mknod/symlink leaking the "
    "fresh inode when the link step faulted: no single statement is "
    "wrong, the bug *is* the exception edge.  The flow analysis walks "
    "each path out of the allocation and requires a maybe_reclaim, a "
    "committing call, or an escape before the function unwinds.",
)
_register(
    "F002", ERROR,
    "incref/decref balance on every path out of a method (early "
    "returns, finally, handlers), unless the reference escapes",
    "the per-method counter L003 missed try/finally and early "
    "returns; the typestate analysis tracks the net reference delta "
    "along each path and flags the exits where it is non-zero — the "
    "paper names refcount mistakes as its hardest agent bugs "
    "(Section 4.2).",
)
_register(
    "F003", ERROR,
    "every path out of a sys_* body returns a value or raises "
    "SyscallError — no falling off the end, no bare return",
    "the implicit None of a forgotten branch is marshalled to the "
    "client as a *successful* result (the path-aware face of L004); "
    "reachability of the implicit exit is a pure CFG question the "
    "syntactic rule could never answer.",
)
_register(
    "F004", ERROR,
    "no unbounded blocking call (.get/.join/.acquire/.wait without "
    "timeout) reachable from a handler method",
    "a handler that blocks forever hangs the client's syscall, and "
    "every agent stacked below it — the SeparateSpaceAgent hang class "
    "PR 5 fixed dynamically with watchdogs; pass a timeout and "
    "convert expiry to SyscallError (repro.toolkit.remote shows the "
    "shape).",
)
_register(
    "F005", ERROR,
    "every interposed syscall path delegates (syscall_down/sys_*), "
    "raises SyscallError, or carries an explicit absorb suppression",
    "a path that returns without ever reaching the layer below has "
    "silently absorbed the call — indistinguishable from success to "
    "the client and invisible to agents stacked underneath; if "
    "absorption is the agent's contract (an in-agent cache hit, a "
    "synthesized result), say so with a suppression justification.",
)


_register(
    "F006", ERROR,
    "every journal transaction begun by journal_begin reaches "
    "journal_commit or journal_abort (or is handed off) on every path "
    "— exception edges included",
    "the write-ahead journal's kill-anywhere guarantee rests on the "
    "commit mark: a transaction a path abandons (early return, raise "
    "nobody aborts on) is still *live* in the log, so the next mount "
    "replays it as torn and undoes its intents — silently discarding "
    "a mutation the caller believed durable.  F001's typestate walk, "
    "retargeted at the journal protocol (repro.kernel.journal).",
)


def rule_ids():
    """All registered rule ids in sorted order."""
    return sorted(RULES)


def severity_of(rule_id):
    """The registered severity for *rule_id* (KeyError if unknown)."""
    return RULES[rule_id].severity
