"""The rule registry: stable ids, severities, and one-line contracts.

Every agentlint rule has a stable id (``L001`` .. ``L011``) used in
output, in ``# repro-lint: disable=`` suppressions, and in baseline
files.  The registry is the single source of truth the CLI, the docs
test, and ``docs/LINTING.md`` draw on; rule *implementations* live in
:mod:`repro.lint.checks`.
"""

from repro.lint.findings import ERROR


class Rule:
    """One registered rule: id, severity, and its contract in one line."""

    __slots__ = ("rule_id", "severity", "summary", "rationale")

    def __init__(self, rule_id, severity, summary, rationale):
        self.rule_id = rule_id
        self.severity = severity
        self.summary = summary
        self.rationale = rationale

    def __repr__(self):
        return "<Rule %s %s>" % (self.rule_id, self.severity)


#: id -> :class:`Rule` for every rule agentlint implements
RULES = {}


def _register(rule_id, severity, summary, rationale):
    RULES[rule_id] = Rule(rule_id, severity, summary, rationale)


_register(
    "L001", ERROR,
    "every sys_* override names a real syscall in repro.kernel.sysent",
    "a typo'd override is silently never called: BSDNumericSyscall "
    "binds methods by name, so the call falls through to the default "
    "behaviour and the agent is un-interposed on that call (paper "
    "Goal 2: agents must provide the entire interface).",
)
_register(
    "L002", ERROR,
    "init overrides call super().init(...) or register interception "
    "themselves",
    "an init that neither chains nor registers leaves the agent "
    "attached but intercepting nothing — every call bypasses it "
    "(paper Section 2.3: agent invocation installs interception).",
)
_register(
    "L003", ERROR,
    "OpenObject references taken and released in balanced pairs per "
    "method",
    "an incref without a matching decref (or vice versa) leaks or "
    "over-frees the shared open object; the paper names refcount "
    "mistakes as its hardest agent bugs (Section 4.2).",
)
_register(
    "L004", ERROR,
    "error paths raise SyscallError with a known errno, never raw "
    "ints/None",
    "the symbolic protocol carries failure as SyscallError; a raw -1 "
    "or None return is marshalled as a *successful* result and the "
    "client never sees the error (kernel errno convention, "
    "repro.kernel.errno).",
)
_register(
    "L005", ERROR,
    "signal-path overrides forward via signal_up (or delegate to a "
    "handler that does)",
    "an agent that intercepts signals without forwarding swallows "
    "them: the client's own dispositions never run (paper Section "
    "2.3, the upward path).",
)
_register(
    "L006", ERROR,
    "agent code goes through syscall_down/toolkit objects, not "
    "repro.kernel internals",
    "importing kernel machinery from an agent bypasses the layering "
    "that makes agents stackable and placement-independent; only the "
    "kernel's value types and constants are agent-visible ABI.",
)
_register(
    "L007", ERROR,
    "sysent and SymbolicSyscall agree bidirectionally (every BSD "
    "table entry has a sys_* method and vice versa)",
    "a table entry without a method is a call agents cannot provide; "
    "a method without an entry can never be reached — either way "
    "completeness (paper Goal 2, Section 3.2) is broken before "
    "anything runs.",
)
_register(
    "L008", ERROR,
    "broad except clauses in handler methods re-raise or are preceded "
    "by a handler that does — SyscallError must not be swallowed",
    "a bare ``except:`` (or ``except Exception``/``BaseException``) in "
    "a sys_*/handle_syscall/handle_signal body catches SyscallError "
    "too; if nothing in the clause re-raises, the protocol's failure "
    "signal is converted into a silent success and the client sees a "
    "wrong result instead of an errno (the containment layer, "
    "repro.toolkit.guard, shows the sanctioned shape: re-raise the "
    "protocol exceptions first, then contain the rest).",
)
_register(
    "L009", ERROR,
    "handler methods never read host nondeterminism: no time.*/"
    "random.* module calls — use the virtual clock and seeded "
    "generators",
    "a sys_*/handle_syscall/handle_signal body that calls time.time() "
    "or module-level random.random() makes the agent's decisions "
    "depend on host wall clock and interpreter-global RNG state; such "
    "runs cannot be captured by the record/replay recorder "
    "(repro.obs.recorder) — read virtual time via gettimeofday "
    "downcalls and draw randomness from a seeded instance the way "
    "repro.agents.chaos does.",
)
_register(
    "L010", ERROR,
    "handler methods never mutate the emulation vector directly: "
    "interception changes go through register_interest/"
    "unregister_interest (task_set_emulation)",
    "a sys_*/handle_syscall/handle_signal body that assigns into, "
    "deletes from, or pops ``*.emulation_vector`` bypasses "
    "task_set_emulation — the single funnel that invalidates the "
    "kernel's fast-dispatch and compiled-dispatch tables "
    "(repro.kernel.compile) and bumps the downcall-chain epoch; a "
    "direct mutation leaves stale flat chains running the *old* stack "
    "for every process the agent serves.",
)
_register(
    "L011", ERROR,
    "handler methods never write to the host console: no print() or "
    "sys.stdout/sys.stderr writes — output goes through write "
    "downcalls",
    "a sys_*/handle_syscall/handle_signal body that calls print() or "
    "sys.stdout.write() emits bytes the simulated machine never sees: "
    "the output bypasses the client's descriptors, so no agent below "
    "can observe or rewrite it, the record/replay recorder cannot "
    "capture it, and in-world programs reading the console miss it — "
    "write through a syscall_down('write', fd, ...) downcall (or the "
    "trace agent's log descriptor pattern) instead.",
)


def rule_ids():
    """All registered rule ids in sorted order."""
    return sorted(RULES)


def severity_of(rule_id):
    """The registered severity for *rule_id* (KeyError if unknown)."""
    return RULES[rule_id].severity
