"""The static protocol model: what the toolkit promises, read from source.

agentlint must judge agent code *without executing the world* (no
kernel boot, no module import side effects), so the protocol it checks
against is recovered from the abstract syntax trees of the three files
that define it:

* ``repro/kernel/sysent.py`` — the system call table (``_entry(number,
  "name", ...)`` calls and the ``MAX_BSD_SYSCALL`` boundary);
* ``repro/toolkit/symbolic.py`` — the ``sys_*`` methods of
  :class:`~repro.toolkit.symbolic.SymbolicSyscall`;
* ``repro/kernel/errno.py`` — the known errno names and values.

``tests/test_completeness_sweep.py`` cross-checks this static view
against the imported runtime objects, so the linter's model and the
dynamic sweep can never drift apart silently.
"""

import ast
import os


class SyscallInfo:
    """One statically-recovered system call table row."""

    __slots__ = ("number", "name", "line")

    def __init__(self, number, name, line):
        self.number = number
        self.name = name
        self.line = line

    def __repr__(self):
        return "<SyscallInfo %d %s>" % (self.number, self.name)


class ProtocolModel:
    """The toolkit protocol as recovered from source, plus file paths."""

    def __init__(self, syscalls, max_bsd, symbolic_methods, errno_names,
                 errno_values, sysent_path, symbolic_path):
        #: ``{name: SyscallInfo}`` for every table entry
        self.syscalls = syscalls
        #: highest BSD call number (entries above it are Mach traps)
        self.max_bsd = max_bsd
        #: ``{method_name: line}`` for every ``sys_*`` on SymbolicSyscall
        self.symbolic_methods = symbolic_methods
        #: known errno identifier names (``EPERM`` ...)
        self.errno_names = errno_names
        #: known errno integer values
        self.errno_values = errno_values
        self.sysent_path = sysent_path
        self.symbolic_path = symbolic_path

    def is_syscall(self, name):
        """True when *name* is a system call the table defines."""
        return name in self.syscalls

    def bsd_names(self):
        """Names of the BSD-range table entries (Mach traps excluded)."""
        return sorted(info.name for info in self.syscalls.values()
                      if info.number <= self.max_bsd)


def _parse(path):
    with open(path) as handle:
        return ast.parse(handle.read(), filename=path)


def _load_sysent(path):
    """Recover ``{name: SyscallInfo}`` and MAX_BSD_SYSCALL from sysent.py."""
    tree = _parse(path)
    syscalls = {}
    max_bsd = None
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "_entry"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, int)
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)):
            info = SyscallInfo(node.args[0].value, node.args[1].value,
                               node.lineno)
            syscalls[info.name] = info
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Name)
                        and target.id == "MAX_BSD_SYSCALL"
                        and isinstance(node.value, ast.Constant)):
                    max_bsd = node.value.value
    if not syscalls:
        raise ValueError("no _entry(...) rows found in %s" % path)
    if max_bsd is None:
        raise ValueError("MAX_BSD_SYSCALL not found in %s" % path)
    return syscalls, max_bsd


def _load_symbolic_methods(path):
    """Recover ``{sys_* name: line}`` from class SymbolicSyscall."""
    tree = _parse(path)
    methods = {}
    for node in tree.body:
        if (isinstance(node, ast.ClassDef)
                and node.name == "SymbolicSyscall"):
            for item in node.body:
                if (isinstance(item, ast.FunctionDef)
                        and item.name.startswith("sys_")):
                    methods[item.name] = item.lineno
    if not methods:
        raise ValueError("no SymbolicSyscall sys_* methods found in %s"
                         % path)
    return methods


def _load_errnos(path):
    """Recover errno names and values from errno.py's assignments."""
    tree = _parse(path)
    names = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not (isinstance(target, ast.Name)
                    and target.id.startswith("E")
                    and target.id.isupper()):
                continue
            value = node.value
            if isinstance(value, ast.Constant) and isinstance(value.value,
                                                              int):
                names[target.id] = value.value
            elif isinstance(value, ast.Name) and value.id in names:
                # aliases like EAGAIN = EWOULDBLOCK
                names[target.id] = names[value.id]
    if not names:
        raise ValueError("no errno assignments found in %s" % path)
    return set(names), set(names.values())


def default_root():
    """The installed ``repro`` package directory (the default tree)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_protocol(root=None):
    """Build the :class:`ProtocolModel` for the tree rooted at *root*.

    *root* is a directory containing ``kernel/sysent.py``,
    ``kernel/errno.py``, and ``toolkit/symbolic.py`` — by default the
    ``repro`` package this linter ships inside, so the model always
    matches the code under test; tests point it at fixture trees.
    """
    if root is None:
        root = default_root()
    sysent_path = os.path.join(root, "kernel", "sysent.py")
    errno_path = os.path.join(root, "kernel", "errno.py")
    symbolic_path = os.path.join(root, "toolkit", "symbolic.py")
    syscalls, max_bsd = _load_sysent(sysent_path)
    errno_names, errno_values = _load_errnos(errno_path)
    symbolic_methods = _load_symbolic_methods(symbolic_path)
    return ProtocolModel(syscalls, max_bsd, symbolic_methods, errno_names,
                         errno_values, sysent_path, symbolic_path)
