"""The flow rules: typestate analyses over per-function CFGs.

Where :mod:`repro.lint.checks` pattern-matches statements, the rules
here (F001..F006) run small abstract interpretations over the control
flow graphs built by :mod:`repro.lint.cfg`, so they can prove (or
refute) properties of *every path* through a handler or kernel method
— including the exception edges that PR 5's fault injection exercised
dynamically.  The motivating regression: ``creat``/``mknod``/
``symlink`` allocated a fresh inode and then called ``fs.link``; when
``link`` raised, the inode leaked in the table.  No single statement
is wrong there — the bug *is* the exception edge — which is exactly
what F001 walks.

Scope decisions, per rule:

* **F001** (resource leak on error path) runs over every linted file —
  the kernel's ufs/namei/pathcalls unwind paths are its home turf.  It
  tracks values returned by the allocation sites named in
  ``ALLOC_NAMES`` and requires every path to release, commit, or
  escape them.  A call that *mentions* the resource commits it on the
  call's normal edge but leaves it pending on the exception edge: the
  callee saw the value, but never got to store it.  Exception edges
  from calls that do not mention the resource are not treated as
  leak-bearing (the analysis assumes unrelated calls do not raise —
  the price of not guarding every statement in Python).
* **F002** (path-sensitive refcount balance) subsumes the deprecated
  per-method counter L003.  It runs where the OpenObject protocol
  lives (``agents``/``toolkit`` trees) and checks that the
  ``incref``/``decref`` delta is zero on every path out of a function
  — early returns and explicit raises included — unless the reference
  escapes (returned, stored into an attribute/subscript, or handed to
  another owner).  The kernel's ``fs.incref``/``fs.decref`` open-count
  protocol is balanced *across* functions by design (open increfs,
  close decrefs) and is deliberately out of scope.
* **F003** (errno discipline on all paths) checks every ``sys_*``
  function — module-level kernel implementations and agent overrides
  alike: no path may fall off the end or ``return`` bare, because the
  implicit ``None`` is marshalled to the client as a *successful*
  result (the path-aware face of L004).
* **F004** (unbounded block reachable from a handler) flags
  ``.get()``/``.join()``/``.acquire()``/``.wait()`` calls with neither
  a timeout nor a non-blocking flag, in any method reachable from an
  agent's handler methods — the SeparateSpaceAgent hang class PR 5
  fixed dynamically with watchdogs.
* **F005** (must-delegate-or-fail) requires every path out of an
  interposed ``sys_*``/``handle_syscall`` body to reach a downcall or
  delegation, end in a raise, or carry an explicit suppression — a
  silently absorbed call is indistinguishable from a successful one.
* **F006** (unresolved journal transaction) is F001's machinery
  retargeted at the write-ahead journal protocol
  (:mod:`repro.kernel.journal`): a transaction begun by
  ``journal_begin`` must reach ``journal_commit`` or ``journal_abort``
  (or be handed off) on every path — an abandoned transaction replays
  as *torn* at the next mount and its intents are undone.  Runs over
  every linted file, like F001.
"""

import ast
import re

from repro.lint.cfg import build_cfg, walk_own
from repro.lint.checks import agent_like_classes, _FunctionCollector
from repro.lint.findings import Finding
from repro.lint.rules import severity_of

#: allocation sites whose return value F001 tracks (fresh, unlinked
#: kernel objects: the ufs inode constructors and their kin)
ALLOC_NAMES = frozenset({
    "create_file", "create_symlink", "create_fifo", "create_device",
    "create_directory", "make_inode",
})

#: calls that dispose of a tracked resource on failure paths
RELEASE_NAMES = frozenset({
    "maybe_reclaim", "reclaim", "release", "discard_inode",
})

#: F006's allocation sites: a live write-ahead journal transaction
#: (repro.kernel.journal) begun and not yet resolved
JOURNAL_ALLOC_NAMES = frozenset({"journal_begin"})

#: F006's resolution calls: the only ways a journal transaction ends
JOURNAL_RELEASE_NAMES = frozenset({"journal_commit", "journal_abort"})

#: handler methods — where the agent protocol obligations live
HANDLER_RE = re.compile(r"^(sys_\w+|handle_syscall|handle_signal|"
                        r"signal_handler)$")

#: delegation calls that satisfy F005 (the downcall spine and the
#: sanctioned delegation shapes: the numeric entry point ``syscall``
#: and the toolkit's exec reimplementation ``reexec``)
DELEGATE_NAMES = frozenset({
    "syscall_down", "syscall_down_numeric", "handle_syscall",
    "signal_up", "trap", "syscall", "reexec",
})

#: toolkit objects whose methods *are* the delegation machinery — a
#: call routed through ``self.dset``/``self.pset`` (descriptor and
#: pathname tables) reaches the layer below by construction
DELEGATE_OBJECTS = frozenset({"dset", "pset"})

#: attribute calls that block forever when called with no timeout
BLOCKING_ATTRS = frozenset({"get", "join", "acquire", "wait"})


def _finding(rule, path, line, col, symbol, message):
    return Finding(rule, severity_of(rule), path, line, col, symbol,
                   message)


def _callee_name(call):
    """The rightmost name of a call's function expression."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_name(call):
    """For ``x.meth(...)``: ``x``; otherwise None."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None


def _names_in(tree):
    """Every Name id appearing in *tree* (not descending into defs)."""
    return {node.id for node in walk_own(tree)
            if isinstance(node, ast.Name)}


def _calls_own(tree):
    """Every Call lexically in *tree*, outside nested defs."""
    return [node for node in walk_own(tree) if isinstance(node, ast.Call)]


def dataflow(cfg, init, transfer, join):
    """Forward worklist iteration to a fixpoint.

    *transfer(node, state, label)* produces the state carried along
    one outgoing edge (or ``None`` for an edge the analysis treats as
    dead); *join* merges states at joins.  Returns ``{node: state}``
    of entry states for every reached node.
    """
    states = {id(cfg.entry): init}
    by_id = {id(cfg.entry): cfg.entry}
    work = [cfg.entry]
    guard = 0
    while work:
        guard += 1
        if guard > 20000:  # pathological function: give up quietly
            break
        node = work.pop()
        state = states[id(node)]
        for succ, label in node.succs:
            out = transfer(node, state, label)
            if out is None:
                continue
            key = id(succ)
            if key in states:
                merged = join(states[key], out)
            else:
                merged = out
            if key not in states or merged != states[key]:
                states[key] = merged
                by_id[key] = succ
                work.append(succ)
    return {by_id[key]: value for key, value in states.items()}


# -- F001: resource leak on error path ----------------------------------


#: typestate per tracked resource
_PENDING = "pending"
_DONE = "done"          # committed, released, or escaped


def _alloc_sites(func, alloc_names=ALLOC_NAMES):
    """``[(stmt, target_name, call, callee)]`` for each tracked alloc."""
    sites = []
    for stmt in walk_own(func):
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        value = stmt.value
        if not (isinstance(value, ast.Call)
                and _callee_name(value) in alloc_names):
            continue
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        else:
            targets = [stmt.target]
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            sites.append((stmt, targets[0].id, value,
                          _callee_name(value)))
    return sites


#: disjunction width before worlds are merged conservatively
_WORLD_CAP = 64


class _LeakAnalysis:
    """F001's transfer function over one function's CFG.

    The dataflow state is a *disjunction of worlds*, one per
    distinguishable path: each world is a ``(res, env)`` pair mapping
    resource ids to their typestate and names to the resource they
    hold.  Keeping paths separate matters — ``sys_mknod`` binds
    ``inode`` from a different allocation site on each format branch,
    and a merged environment would have to drop the conflicting name
    right before the ``link`` that commits it.  The width is capped at
    :data:`_WORLD_CAP`; past that, worlds are merged pessimistically
    (worst status wins, conflicting names dropped) so the analysis
    stays sound-for-leaks on pathological functions.
    """

    def __init__(self, sites, alloc_names=ALLOC_NAMES,
                 release_names=RELEASE_NAMES):
        #: rid -> (alloc stmt, name, call, callee)
        self.sites = dict(enumerate(sites))
        self.by_stmt = {id(site[0]): rid
                        for rid, site in self.sites.items()}
        self.alloc_names = alloc_names
        self.release_names = release_names

    def initial(self):
        return frozenset({(frozenset(), frozenset())})

    def join(self, left, right):
        return self._cap(left | right)

    def _cap(self, worlds):
        if len(worlds) > _WORLD_CAP:
            return frozenset({self._merge(worlds)})
        return frozenset(worlds)

    def _merge(self, worlds):
        res = {}
        env = {}
        dropped = set()
        for world_res, world_env in worlds:
            for rid, status in world_res:
                old = res.get(rid)
                res[rid] = (status if old is None
                            else self._worse(old, status))
            for name, rid in world_env:
                if name in dropped:
                    continue
                if name in env and env[name] != rid:
                    del env[name]
                    dropped.add(name)
                else:
                    env[name] = rid
        return (frozenset(res.items()), frozenset(env.items()))

    @staticmethod
    def _worse(a, b):
        # leaked > pending > done
        for status in (a, b):
            if isinstance(status, tuple):  # ("leaked", blame_line)
                return status
        if _PENDING in (a, b):
            return _PENDING
        return _DONE

    def transfer(self, node, state, label):
        stmt = node.stmt
        if stmt is None or node.kind != "stmt":
            return state
        return self._cap({self._step(node, world, label)
                          for world in state})

    def _step(self, node, world, label):
        stmt = node.stmt
        res = dict(world[0])
        env = dict(world[1])
        # Live = not yet committed/released: pending resources *and*
        # leak-marked ones — the handler that catches the failed
        # commit still releases the resource through its name (the
        # maybe_reclaim-in-except shape the PR 5 fixes use).
        live = {name: rid for name, rid in env.items()
                if rid in res and res[rid] != _DONE}
        scan = node.scan_target()

        calls = _calls_own(scan)
        released = set()
        mentioned = set()
        for call in calls:
            callee = _callee_name(call)
            receiver = _receiver_name(call)
            arg_names = set()
            for arg in list(call.args) + [kw.value
                                          for kw in call.keywords]:
                arg_names |= _names_in(arg)
            hit = {live[name] for name in arg_names if name in live}
            if not hit:
                continue
            if receiver in live and live[receiver] in hit:
                # x.meth(..., x.ino, ...): operating on the resource
                # itself is a use, not a transfer.
                hit.discard(live[receiver])
            if callee in self.release_names:
                released |= hit
            elif callee in self.alloc_names and id(stmt) in self.by_stmt:
                pass  # the allocation itself
            else:
                mentioned |= hit

        if label == "exc":
            # The statement raised.  A release still counts (reclaim
            # does not fail in-model); a call that was handed the
            # resource never got to store it; an explicit raise leaks
            # everything still pending.
            for rid in released:
                res[rid] = _DONE
            blame = getattr(stmt, "lineno", 0)
            if isinstance(stmt, ast.Raise):
                for rid, status in list(res.items()):
                    if status == _PENDING:
                        res[rid] = ("leaked", blame)
            else:
                for rid in mentioned:
                    if res.get(rid) == _PENDING:
                        res[rid] = ("leaked", blame)
            return (frozenset(res.items()), frozenset(env.items()))

        # Normal edge.
        for rid in released:
            res[rid] = _DONE
        for rid in mentioned:
            if res.get(rid) != _DONE:
                res[rid] = _DONE  # handed to another owner
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            for name in _names_in(stmt.value):
                if name in live:
                    res[live[name]] = _DONE
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            stores = any(isinstance(t, (ast.Attribute, ast.Subscript))
                         for t in targets)
            if stores and stmt.value is not None:
                for name in _names_in(stmt.value):
                    if name in live:
                        res[live[name]] = _DONE
            rid = self.by_stmt.get(id(stmt))
            if rid is not None:
                # The allocation: bind the fresh resource.
                res[rid] = _PENDING
                env[self.sites[rid][1]] = rid
            elif (len(targets) == 1 and isinstance(targets[0], ast.Name)
                    and stmt.value is not None):
                target = targets[0].id
                if (isinstance(stmt.value, ast.Name)
                        and stmt.value.id in env):
                    env[target] = env[stmt.value.id]  # alias
                elif target in env:
                    del env[target]  # rebound away from the resource
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        return (frozenset(res.items()), frozenset(env.items()))


def _leaked_sites(func, analysis):
    """``{rid: blame_line_or_None}`` of resources some path abandons."""
    cfg = build_cfg(func)
    states = dataflow(cfg, analysis.initial(), analysis.transfer,
                      analysis.join)
    reported = {}
    for exit_node, on_error in ((cfg.exit_raise, True),
                                (cfg.exit_return, False),
                                (cfg.exit_implicit, False)):
        state = states.get(exit_node)
        if state is None:
            continue
        for world in state:
            for rid, status in world[0]:
                if status == _DONE:
                    continue
                if status == _PENDING and on_error:
                    # Reached the raise exit via an edge the analysis
                    # does not treat as leak-bearing (unrelated call).
                    continue
                blame = status[1] if isinstance(status, tuple) else None
                if rid in reported and reported[rid] is not None:
                    continue
                reported[rid] = blame
    return reported


def _check_f001(path, symbol, func, out):
    sites = _alloc_sites(func)
    if not sites:
        return
    analysis = _LeakAnalysis(sites)
    for rid, blame in sorted(_leaked_sites(func, analysis).items()):
        stmt, name, call, callee = analysis.sites[rid]
        if blame is not None:
            detail = ("leaks when the call at line %d fails before "
                      "storing it" % blame)
        else:
            detail = ("is never linked, released, or returned on some "
                      "path to an exit")
        out(_finding(
            "F001", path, call.lineno, call.col_offset, symbol,
            "%s: %r acquired from %s() %s — every path, including "
            "exception edges, must release (%s), commit, or return "
            "the fresh resource"
            % (symbol, name, callee, detail,
               "/".join(sorted(RELEASE_NAMES)))))


def _check_f006(path, symbol, func, out):
    """F006: a begun journal transaction commits or aborts on every path.

    Same typestate machinery as F001, retargeted at the write-ahead
    journal's begin/commit/abort protocol (repro.kernel.journal): a
    transaction begun by ``journal_begin`` that some path abandons —
    early return, explicit raise, an exception edge nobody aborts on —
    replays as *torn* at the next mount and its intents are undone,
    silently discarding a mutation the caller believed durable.
    """
    sites = _alloc_sites(func, JOURNAL_ALLOC_NAMES)
    if not sites:
        return
    analysis = _LeakAnalysis(sites, JOURNAL_ALLOC_NAMES,
                             JOURNAL_RELEASE_NAMES)
    for rid, blame in sorted(_leaked_sites(func, analysis).items()):
        stmt, name, call, callee = analysis.sites[rid]
        if blame is not None:
            detail = ("is abandoned when the call at line %d raises"
                      % blame)
        else:
            detail = "never reaches journal_commit or journal_abort"
        out(_finding(
            "F006", path, call.lineno, call.col_offset, symbol,
            "%s: journal transaction %r begun by %s() %s on some path — "
            "an unresolved transaction replays as torn at the next "
            "mount and its intents are undone; every path must "
            "journal_commit, journal_abort, or hand the transaction off"
            % (symbol, name, callee, detail)))


# -- F002: path-sensitive refcount balance ------------------------------


_CLAMP = 3


def _count_ref_calls(tree):
    inc = dec = 0
    for call in _calls_own(tree):
        if isinstance(call.func, ast.Attribute):
            if call.func.attr == "incref":
                inc += 1
            elif call.func.attr == "decref":
                dec += 1
    return inc, dec


def _incref_bound_names(func):
    """Names assigned from an expression containing ``.incref()``."""
    names = set()
    for stmt in walk_own(func):
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        if stmt.value is None or not _count_ref_calls(stmt.value)[0]:
            continue
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _check_f002(path, symbol, func, out):
    source_tokens = _count_ref_calls(func)
    if not (source_tokens[0] or source_tokens[1]):
        return
    if func.name in ("incref", "decref"):
        return  # the counters' own definitions
    bound = _incref_bound_names(func)
    cfg = build_cfg(func)

    def escapes(stmt, scan):
        """True when this statement transfers the reference away."""
        carries = bool(_count_ref_calls(scan)[0])
        names = _names_in(scan) & bound
        if isinstance(stmt, ast.Return):
            return carries or bool(names)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            if any(isinstance(t, (ast.Attribute, ast.Subscript))
                   for t in targets):
                return carries or bool(names)
        for call in _calls_own(scan):
            if isinstance(call.func, ast.Attribute) and \
                    call.func.attr in ("incref", "decref"):
                continue
            arg_names = set()
            for arg in list(call.args) + [kw.value
                                          for kw in call.keywords]:
                arg_names |= _names_in(arg)
                if _count_ref_calls(arg)[0]:
                    return True  # handing x.incref() straight in
            if arg_names & bound:
                return True
        return False

    def transfer(node, state, label):
        stmt = node.stmt
        if stmt is None or node.kind != "stmt":
            return state
        if label == "exc":
            # The statement raised before its incref/decref took
            # effect: carry the entry state into the handler so a
            # decref-on-unwind (or a missing one) is still analyzed.
            return state
        scan = node.scan_target()
        inc, dec = _count_ref_calls(scan)
        esc = escapes(stmt, scan)
        next_state = set()
        for net, escaped in state:
            net = net + inc - dec
            net = max(-_CLAMP, min(_CLAMP, net))
            next_state.add((net, escaped or esc))
        return frozenset(next_state)

    states = dataflow(cfg, frozenset({(0, False)}), transfer,
                      lambda a, b: a | b)
    # Leaks (net > 0) are reported at the *normal* exits only: flagging
    # every may-raise statement between an incref and its decref would
    # drown the signal (leak-on-error-path for owned resources is
    # F001's job).  Over-release (net < 0) is reported at every exit —
    # a double decref is wrong no matter how the path ends.
    exits = {"return": cfg.exit_return,
             "the implicit end": cfg.exit_implicit}
    leaked = over = None
    for label, node in sorted(exits.items()):
        for net, escaped in states.get(node, ()):
            if net > 0 and not escaped and leaked is None:
                leaked = (label, net)
    for label, node in sorted(list(exits.items())
                              + [("raise", cfg.exit_raise)]):
        for net, escaped in states.get(node, ()):
            if net < 0 and over is None:
                over = (label, net)
    if leaked is not None:
        out(_finding(
            "F002", path, func.lineno, func.col_offset, symbol,
            "%s takes %d more open-object reference(s) (incref) than "
            "it releases on a path ending in %s — references must "
            "balance on every path (or escape to a new owner)"
            % (symbol, leaked[1], leaked[0])))
    if over is not None:
        out(_finding(
            "F002", path, func.lineno, func.col_offset, symbol,
            "%s releases %d more open-object reference(s) (decref) "
            "than it takes on a path ending in %s — the shared object "
            "may be freed while still referenced"
            % (symbol, -over[1], over[0])))


# -- F003: errno discipline on all paths --------------------------------


def _check_f003(path, symbol, func, out):
    cfg = build_cfg(func)
    reachable = set(id(node) for node in cfg.reachable())
    if id(cfg.exit_implicit) in reachable:
        out(_finding(
            "F003", path, func.lineno, func.col_offset, symbol,
            "%s falls off the end on some path — the implicit None is "
            "marshalled to the client as a successful result; every "
            "path must return a value or raise SyscallError with a "
            "known errno" % symbol))
    seen = set()
    for node in cfg.nodes:
        if (node.kind == "stmt" and isinstance(node.stmt, ast.Return)
                and node.stmt.value is None
                and id(node) in reachable
                and id(node.stmt) not in seen):
            seen.add(id(node.stmt))
            out(_finding(
                "F003", path, node.stmt.lineno, node.stmt.col_offset,
                symbol,
                "%s returns bare on this path — the implicit None is "
                "marshalled as success; return the call's value or "
                "raise SyscallError" % symbol))


# -- F004: unbounded block reachable from a handler ---------------------


def _is_false_constant(node):
    return isinstance(node, ast.Constant) and node.value is False


def _unbounded_block(call):
    """The attr name when *call* blocks with no timeout, else None."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    if attr not in BLOCKING_ATTRS:
        return None
    kwargs = {kw.arg: kw.value for kw in call.keywords}
    if "timeout" in kwargs and not (
            isinstance(kwargs["timeout"], ast.Constant)
            and kwargs["timeout"].value is None):
        return None
    if attr == "get":
        if call.args and not (isinstance(call.args[0], ast.Constant)
                              and call.args[0].value is True):
            return None  # dict-style .get(key[, default])
        block = kwargs.get("block")
        if block is not None and _is_false_constant(block):
            return None
        return attr
    if attr == "acquire":
        if call.args and _is_false_constant(call.args[0]):
            return None  # non-blocking acquire
        blocking = kwargs.get("blocking")
        if blocking is not None and _is_false_constant(blocking):
            return None
        return attr
    # join / wait: a positional arg is the timeout
    if call.args:
        return None
    return attr


def _check_f004(path, agentish, out):
    for class_name, node in sorted(agentish.items()):
        methods = {item.name: item for item in node.body
                   if isinstance(item, ast.FunctionDef)}
        reachable = set()
        work = [name for name in methods if HANDLER_RE.match(name)]
        while work:
            name = work.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for call in _calls_own(methods[name]):
                func = call.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                        and func.attr in methods
                        and func.attr not in reachable):
                    work.append(func.attr)
        for name in sorted(reachable):
            method = methods[name]
            symbol = "%s.%s" % (class_name, name)
            for call in _calls_own(method):
                attr = _unbounded_block(call)
                if attr is None:
                    continue
                out(_finding(
                    "F004", path, call.lineno, call.col_offset, symbol,
                    "%s calls .%s() with no timeout on a path reachable "
                    "from the agent's handler methods — a peer that "
                    "never answers hangs the client forever; pass a "
                    "timeout and convert expiry to SyscallError "
                    "(the watchdog shape in repro.toolkit.remote)"
                    % (symbol, attr)))


# -- F005: must-delegate-or-fail ----------------------------------------


def _delegates(tree):
    """True when *tree* contains a downcall/delegation call."""
    for call in _calls_own(tree):
        name = _callee_name(call)
        if name in DELEGATE_NAMES or (name or "").startswith("sys_"):
            return True
        # self.dset.lookup(fd).read(...), self.pset.open(...): routed
        # through the descriptor/pathname tables, the toolkit layers'
        # own delegation spine.
        for node in ast.walk(call.func):
            if (isinstance(node, ast.Attribute)
                    and node.attr in DELEGATE_OBJECTS
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                return True
    return False


def _check_f005(path, class_name, method, out):
    if not (method.name.startswith("sys_")
            or method.name == "handle_syscall"):
        return
    symbol = "%s.%s" % (class_name, method.name)
    cfg = build_cfg(method)

    def transfer(node, state, label):
        stmt = node.stmt
        if stmt is None or node.kind != "stmt":
            return state
        if _delegates(node.scan_target()):
            # A downcall that raises still *reached* the layer below:
            # a handler that converts its failure into a result made a
            # policy decision, not a silent absorption.
            return frozenset({True})
        return state

    states = dataflow(cfg, frozenset({False}), transfer,
                      lambda a, b: a | b)
    seen = set()
    for node in cfg.nodes:
        if not (node.kind == "stmt" and isinstance(node.stmt, ast.Return)
                and node.stmt.value is not None):
            continue
        state = states.get(node)
        if state is None or False not in state:
            continue
        if _delegates(node.stmt):
            continue
        if id(node.stmt) in seen:
            continue
        seen.add(id(node.stmt))
        out(_finding(
            "F005", path, node.stmt.lineno, node.stmt.col_offset, symbol,
            "%s returns on a path that never delegated (no "
            "syscall_down/super().sys_* downcall) and never failed — "
            "the interposed call is silently absorbed; delegate, raise "
            "SyscallError, or suppress with a justification if "
            "absorption is the agent's contract" % symbol))


# -- the per-file entry point -------------------------------------------


def check_module_flow(path, tree, model, in_agents, in_toolkit):
    """Run the flow rules over one parsed module.

    *in_agents*/*in_toolkit* select the agent-protocol rules (F002,
    F004, F005); F001, F003, and F006 run everywhere the sweep goes —
    including ``repro.kernel``, where the PR 5 unwind bugs lived and
    where the journal's begin/commit/abort protocol is implemented.
    """
    findings = []
    out = findings.append
    protocol_scope = in_agents or in_toolkit

    collector = _FunctionCollector()
    collector.visit(tree)
    for symbol, func in collector.functions:
        if isinstance(func, ast.AsyncFunctionDef):
            continue
        _check_f001(path, symbol, func, out)
        _check_f006(path, symbol, func, out)
        if protocol_scope:
            _check_f002(path, symbol, func, out)
        if "." not in symbol and func.name.startswith("sys_"):
            # Module-level syscall implementations (the kernel's).
            _check_f003(path, symbol, func, out)

    agentish = agent_like_classes(tree)
    for class_name, node in sorted(agentish.items()):
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            symbol = "%s.%s" % (class_name, item.name)
            if item.name.startswith("sys_"):
                _check_f003(path, symbol, item, out)
            if protocol_scope:
                _check_f005(path, class_name, item, out)
    if protocol_scope:
        _check_f004(path, agentish, out)
    return findings
