"""The findings model: what a lint rule reports and how it serializes.

A :class:`Finding` is one diagnostic — a rule id, a severity, a
``file:line`` location, the enclosing symbol, and a message.  Findings
are value objects: the engine produces them, the CLI renders them (text
or JSON), and the baseline machinery compares them by
:meth:`Finding.fingerprint`, which deliberately omits line numbers so a
recorded baseline survives unrelated edits to the same file.
"""

#: severity for findings that must fail CI (and the default exit code)
ERROR = "error"
#: severity for advisory findings (reported, but never fail the run)
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)


class Finding:
    """One diagnostic produced by a lint rule."""

    __slots__ = ("rule", "severity", "path", "line", "col", "symbol",
                 "message", "suppressed", "baselined", "occurrence")

    def __init__(self, rule, severity, path, line, col, symbol, message,
                 suppressed=False, baselined=False, occurrence=0):
        self.rule = rule
        self.severity = severity
        self.path = path
        self.line = line
        self.col = col
        self.symbol = symbol
        self.message = message
        self.suppressed = suppressed
        self.baselined = baselined
        #: index among same-(rule, path, symbol) findings, in line
        #: order — assigned by the engine so two leaks in one function
        #: get distinct fingerprints (fixing one resurfaces the other)
        self.occurrence = occurrence

    def __repr__(self):
        return "<Finding %s %s:%d %s>" % (
            self.rule, self.path, self.line, self.symbol)

    @property
    def active(self):
        """True when this finding counts toward the exit code."""
        return (not self.suppressed and not self.baselined
                and self.severity == ERROR)

    def fingerprint(self):
        """The line-number-free identity used by baseline files.

        The first finding of a (rule, path, symbol) keeps the bare
        ``rule:path:symbol`` form every existing baseline recorded;
        further same-key findings get a ``#N`` occurrence suffix so
        they never collapse onto one baseline entry.
        """
        base = "%s:%s:%s" % (self.rule, self.path, self.symbol)
        if self.occurrence:
            return "%s#%d" % (base, self.occurrence)
        return base

    def to_dict(self):
        """The JSON-ready form (the ``--json`` output schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "occurrence": self.occurrence,
        }

    def render(self):
        """The one-line text form (``path:line: RULE severity: message``)."""
        note = ""
        if self.suppressed:
            note = " [suppressed]"
        elif self.baselined:
            note = " [baselined]"
        return "%s:%d: %s %s: %s%s" % (
            self.path, self.line, self.rule, self.severity, self.message,
            note)


def sort_findings(findings):
    """Order findings for stable output: by path, line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.symbol))
