"""Per-function control-flow graphs for the flow rules.

:func:`build_cfg` turns one ``ast.FunctionDef`` into a small CFG whose
nodes wrap the function's *statements* (compound statements contribute
a header node holding just their test/iterator/context expression, so
an analysis scanning "the calls in this node" never sees into a loop
body through its header).  Three synthetic exits distinguish how a
path leaves the function:

* ``exit_return`` — an explicit ``return`` statement;
* ``exit_implicit`` — falling off the end of the body (the implicit
  ``return None`` the errno discipline rule F003 cares about);
* ``exit_raise`` — an exception propagating out of the function.

Edges are labelled ``"normal"`` or ``"exc"``.  Every statement that
contains a call, a ``raise``, or an ``assert`` gets an ``"exc"`` edge
to the innermost enclosing handler set (or ``exit_raise``); whether a
given analysis *believes* that edge is its own decision — the leak
rule F001, for example, only treats an exception edge as leak-bearing
when the raising statement actually mentions the tracked resource.

``try``/``finally`` is modelled by *inlining*: the ``finally`` body is
rebuilt once per distinct way of reaching it (normal completion,
exception propagation, ``return``, ``break``, ``continue``), so a
dataflow fact that enters the ``finally`` because of a ``return``
exits toward ``exit_return`` and never bleeds onto the exception
route.  The same AST statement may therefore be wrapped by several
nodes; analyses that anchor findings on AST nodes deduplicate by the
statement, not the CFG node.

``except`` handlers are assumed to catch whatever the body raises
(the tracked exceptions in this codebase are ``SyscallError``-shaped
and the clauses either name them or are broad); handler bodies
re-raise through the normal ``raise`` machinery.  ``with`` suppression
via ``__exit__`` is ignored.
"""

import ast

#: edge labels
NORMAL = "normal"
EXC = "exc"


class Node:
    """One CFG node: a statement (or synthetic entry/exit)."""

    __slots__ = ("stmt", "kind", "expr", "succs")

    def __init__(self, stmt, kind, expr=None):
        #: the wrapped AST statement (None for synthetic nodes)
        self.stmt = stmt
        #: "stmt", "except", "entry", "exit_return", "exit_implicit",
        #: "exit_raise"
        self.kind = kind
        #: for compound-statement headers: the header expression only
        #: (If/While test, For iter, With context expressions)
        self.expr = expr
        #: outgoing edges: list of (Node, label)
        self.succs = []

    def __repr__(self):
        if self.stmt is None:
            return "<Node %s>" % self.kind
        return "<Node %s line %d>" % (type(self.stmt).__name__,
                                      self.stmt.lineno)

    def scan_target(self):
        """What an analysis should walk for this node's own effects."""
        if self.expr is not None:
            return self.expr
        return self.stmt


class CFG:
    """The graph for one function: entry, nodes, and the three exits."""

    def __init__(self, func):
        self.func = func
        self.entry = Node(None, "entry")
        self.exit_return = Node(None, "exit_return")
        self.exit_implicit = Node(None, "exit_implicit")
        self.exit_raise = Node(None, "exit_raise")
        self.nodes = [self.entry, self.exit_return, self.exit_implicit,
                      self.exit_raise]

    def exits(self):
        """The three synthetic exit nodes."""
        return (self.exit_return, self.exit_implicit, self.exit_raise)

    def reachable(self):
        """Every node reachable from entry (exits included if reached)."""
        seen = set()
        work = [self.entry]
        while work:
            node = work.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            for succ, _label in node.succs:
                if id(succ) not in seen:
                    work.append(succ)

    def implicit_exit_reachable(self):
        """True when some path falls off the end of the function."""
        return any(node is self.exit_implicit for node in self.reachable())

    def nodes_for(self, stmt):
        """Every node wrapping *stmt* (finally inlining may duplicate)."""
        return [node for node in self.nodes if node.stmt is stmt]


def may_raise(tree):
    """True when evaluating *tree* can plausibly raise.

    Calls, ``raise``, and ``assert`` qualify.  Nested function/class
    bodies do not (defining them cannot raise on their behalf).
    """
    for child in walk_own(tree):
        if isinstance(child, (ast.Call, ast.Raise, ast.Assert)):
            return True
    return False


def walk_own(tree):
    """Walk *tree* without descending into nested def/class bodies."""
    work = [tree]
    while work:
        node = work.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            work.append(child)


class _Route:
    """A lazily-wired jump target (return/break/continue/exception).

    ``target()`` builds the route's landing node on first use — for a
    ``finally``, that is a fresh copy of the finally body wired to the
    outer route, so each way of leaving the ``try`` gets its own copy.
    """

    def __init__(self, build):
        self._build = build
        self._target = None

    def target(self):
        if self._target is None:
            self._target = self._build()
        return self._target


class _Builder:
    def __init__(self, cfg):
        self.cfg = cfg

    def _node(self, stmt, kind="stmt", expr=None):
        node = Node(stmt, kind, expr)
        self.cfg.nodes.append(node)
        return node

    def _connect(self, frontier, node):
        for source, label in frontier:
            source.succs.append((node, label))

    def build_body(self, stmts, frontier, routes):
        """Wire *stmts* after *frontier*; returns the new frontier.

        *routes* is a dict with "ret", "exc", and optionally "brk" and
        "cont" :class:`_Route` values.  The returned frontier is the
        set of (node, label) pairs that fall through to whatever comes
        next; it is empty when no path completes the body normally.
        """
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._build_stmt(stmt, frontier, routes)
        return frontier

    def _exc_edge(self, node, routes):
        node.succs.append((routes["exc"].target(), EXC))

    def _build_stmt(self, stmt, frontier, routes):
        if isinstance(stmt, ast.Return):
            node = self._node(stmt)
            self._connect(frontier, node)
            if may_raise(stmt):
                self._exc_edge(node, routes)
            node.succs.append((routes["ret"].target(), NORMAL))
            return []
        if isinstance(stmt, ast.Raise):
            node = self._node(stmt)
            self._connect(frontier, node)
            self._exc_edge(node, routes)
            return []
        if isinstance(stmt, ast.Break):
            node = self._node(stmt)
            self._connect(frontier, node)
            node.succs.append((routes["brk"].target(), NORMAL))
            return []
        if isinstance(stmt, ast.Continue):
            node = self._node(stmt)
            self._connect(frontier, node)
            node.succs.append((routes["cont"].target(), NORMAL))
            return []
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, frontier, routes)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, frontier, routes)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier, routes)
        if hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar):
            return self._build_try(stmt, frontier, routes)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, frontier, routes)
        # Simple statement (Expr, Assign, AugAssign, AnnAssign, Assert,
        # Delete, Pass, Import, Global, Nonlocal, nested def/class, ...).
        node = self._node(stmt)
        self._connect(frontier, node)
        if may_raise(stmt):
            self._exc_edge(node, routes)
        return [(node, NORMAL)]

    def _build_if(self, stmt, frontier, routes):
        header = self._node(stmt, expr=stmt.test)
        self._connect(frontier, header)
        if may_raise(stmt.test):
            self._exc_edge(header, routes)
        then_out = self.build_body(stmt.body, [(header, NORMAL)], routes)
        if stmt.orelse:
            else_out = self.build_body(stmt.orelse, [(header, NORMAL)],
                                       routes)
        else:
            else_out = [(header, NORMAL)]
        return then_out + else_out

    def _loop_test_constant(self, stmt):
        """The truthiness of a constant While test, else None."""
        if (isinstance(stmt, ast.While)
                and isinstance(stmt.test, ast.Constant)):
            return bool(stmt.test.value)
        return None

    def _build_loop(self, stmt, frontier, routes):
        test_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        header = self._node(stmt, expr=test_expr)
        self._connect(frontier, header)
        if may_raise(test_expr):
            self._exc_edge(header, routes)

        # break exits past any else clause; continue re-tests.  The
        # break join node collects break edges (it stays unreachable,
        # harmlessly, when the loop has none).
        break_node = self._node(None, kind="stmt")
        loop_routes = dict(routes)
        loop_routes["brk"] = _Route(lambda: break_node)
        loop_routes["cont"] = _Route(lambda: header)
        body_out = self.build_body(stmt.body, [(header, NORMAL)],
                                   loop_routes)
        self._connect(body_out, header)  # loop back and re-test

        after = [(break_node, NORMAL)]
        if self._loop_test_constant(stmt) is not True:
            # The test can be false: normal loop exit runs the else
            # clause (if any), then continues after the loop.
            if stmt.orelse:
                after.extend(self.build_body(
                    stmt.orelse, [(header, NORMAL)], routes))
            else:
                after.append((header, NORMAL))
        return after

    def _build_with(self, stmt, frontier, routes):
        for item in stmt.items:
            header = self._node(stmt, expr=item.context_expr)
            self._connect(frontier, header)
            if may_raise(item.context_expr):
                self._exc_edge(header, routes)
            frontier = [(header, NORMAL)]
        return self.build_body(stmt.body, frontier, routes)

    def _build_try(self, stmt, frontier, routes):
        if stmt.finalbody:
            return self._build_try_finally(stmt, frontier, routes)
        return self._build_try_handlers(stmt, frontier, routes)

    def _build_try_handlers(self, stmt, frontier, routes):
        """A try with handlers (no finally at this level)."""
        handler_entries = []
        out = []
        for handler in stmt.handlers:
            entry = self._node(handler, kind="except")
            handler_entries.append(entry)
        # Exceptions in the body land on every handler (any may match).
        body_routes = dict(routes)
        if handler_entries:
            first = handler_entries[0]
            if len(handler_entries) == 1:
                body_routes["exc"] = _Route(lambda: first)
            else:
                # A tiny dispatch node fanning out to each handler.
                fan = self._node(None, kind="stmt")
                for entry in handler_entries:
                    fan.succs.append((entry, NORMAL))
                body_routes["exc"] = _Route(lambda: fan)
        body_out = self.build_body(stmt.body, frontier, body_routes)
        if stmt.orelse:
            body_out = self.build_body(stmt.orelse, body_out, routes)
        out.extend(body_out)
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_out = self.build_body(handler.body, [(entry, NORMAL)],
                                          routes)
            out.extend(handler_out)
        return out

    def _build_try_finally(self, stmt, frontier, routes):
        """A try with a finally: inline one copy per way of reaching it."""
        outer = routes

        def through_finally(outer_route):
            """A route that runs a fresh copy of the finally first."""

            def build():
                entry = self._node(None, kind="stmt")
                fin_routes = dict(outer)
                fin_out = self.build_body(stmt.finalbody,
                                          [(entry, NORMAL)], fin_routes)
                self._connect(fin_out, outer_route.target())
                return entry

            return _Route(build)

        inner = dict(routes)
        inner["ret"] = through_finally(routes["ret"])
        inner["exc"] = through_finally(routes["exc"])
        if "brk" in routes and routes["brk"] is not None:
            inner["brk"] = through_finally(routes["brk"])
        if "cont" in routes and routes["cont"] is not None:
            inner["cont"] = through_finally(routes["cont"])

        # The handlers/else of this try run inside the finally scope.
        shell = ast.Try(body=stmt.body, handlers=stmt.handlers,
                        orelse=stmt.orelse, finalbody=[])
        ast.copy_location(shell, stmt)
        if stmt.handlers or stmt.orelse:
            body_out = self._build_try_handlers(shell, frontier, inner)
        else:
            body_out = self.build_body(stmt.body, frontier, inner)

        # Normal completion runs its own finally copy, then continues.
        if not body_out:
            return []
        fin_entry = self._node(None, kind="stmt")
        self._connect(body_out, fin_entry)
        fin_out = self.build_body(stmt.finalbody, [(fin_entry, NORMAL)],
                                  dict(outer))
        return fin_out


def build_cfg(func):
    """Build the :class:`CFG` for one ``ast.FunctionDef``."""
    cfg = CFG(func)
    builder = _Builder(cfg)
    routes = {
        "ret": _Route(lambda: cfg.exit_return),
        "exc": _Route(lambda: cfg.exit_raise),
        "brk": None,
        "cont": None,
    }
    frontier = builder.build_body(func.body, [(cfg.entry, NORMAL)], routes)
    builder._connect(frontier, cfg.exit_implicit)
    return cfg
