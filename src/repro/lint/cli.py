"""The ``repro-lint`` command line interface.

Usage::

    repro-lint [--json] [--baseline FILE] [--write-baseline FILE]
               [--rules L001,L006] [--show-suppressed]
               [--protocol-root DIR] [--no-parity] PATH [PATH ...]

Exit codes: 0 — no active error findings; 1 — at least one; 2 — the
run itself failed (bad path, unparseable file).  Suppressed and
baselined findings never affect the exit code.  The same checks are
importable as :func:`repro.lint.engine.run_lint`.
"""

import argparse
import json
import sys

from repro.lint import engine
from repro.lint.rules import RULES, rule_ids

#: exit code when the lint run completed and found nothing actionable
EXIT_CLEAN = 0
#: exit code when active error-severity findings remain
EXIT_FINDINGS = 1
#: exit code when the run itself failed
EXIT_USAGE = 2


def build_parser():
    """The argparse parser (exposed for --help tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically check interposition agents against the "
                    "toolkit protocol (rules L001-L009; see "
                    "docs/LINTING.md).")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the findings document as JSON")
    parser.add_argument("--rules", metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all of %s)" % ",".join(rule_ids()))
    parser.add_argument("--baseline", metavar="FILE",
                        help="tolerate findings fingerprinted in FILE")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings to FILE and exit 0")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed/baselined findings")
    parser.add_argument("--protocol-root", metavar="DIR",
                        help="read sysent/symbolic/errno from DIR instead "
                             "of the installed repro package")
    parser.add_argument("--no-parity", action="store_true",
                        help="skip the project-wide L007 parity pass")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _list_rules(out):
    for rule_id in rule_ids():
        rule = RULES[rule_id]
        out.write("%s %s: %s\n" % (rule_id, rule.severity, rule.summary))


def main(argv=None):
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout
    if args.list_rules:
        _list_rules(out)
        return EXIT_CLEAN
    if not args.paths:
        parser.error("the following arguments are required: PATH")

    only_rules = None
    if args.rules:
        only_rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = only_rules - set(rule_ids())
        if unknown:
            sys.stderr.write("unknown rule id(s): %s\n"
                             % ", ".join(sorted(unknown)))
            return EXIT_USAGE

    try:
        baseline = (engine.load_baseline(args.baseline)
                    if args.baseline else None)
        result = engine.run_lint(
            args.paths,
            protocol_root=args.protocol_root,
            check_parity=not args.no_parity,
            baseline=baseline,
            only_rules=only_rules)
    except engine.LintError as err:
        sys.stderr.write("repro-lint: %s\n" % err)
        return EXIT_USAGE

    if args.write_baseline:
        fingerprints = engine.write_baseline(args.write_baseline, result)
        out.write("wrote %d fingerprint(s) to %s\n"
                  % (len(fingerprints), args.write_baseline))
        return EXIT_CLEAN

    if args.as_json:
        json.dump(result.to_dict(), out, indent=1)
        out.write("\n")
    else:
        shown = [f for f in result.findings
                 if args.show_suppressed
                 or not (f.suppressed or f.baselined)]
        for finding in shown:
            out.write(finding.render() + "\n")
        out.write("%d file(s) checked: %d finding(s), %d suppressed, "
                  "%d baselined\n"
                  % (len(result.files), len(result.active),
                     len(result.suppressed), len(result.baselined)))
    return EXIT_FINDINGS if result.active else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
