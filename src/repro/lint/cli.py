"""The ``repro-lint`` command line interface.

Usage::

    repro-lint [--json] [--sarif FILE] [--baseline FILE]
               [--write-baseline FILE] [--rules L001,F001]
               [--diff REF] [--show-suppressed]
               [--protocol-root DIR] [--no-parity] PATH [PATH ...]

Exit codes: 0 — no active error findings; 1 — at least one; 2 — the
run itself failed (bad path) or could not analyze every file it was
pointed at (per-file L000 findings; the sweep still completes and
reports the rest).  Suppressed and baselined findings never affect
the exit code.  The same checks are importable as
:func:`repro.lint.engine.run_lint`.
"""

import argparse
import json
import sys

from repro.lint import engine, sarif
from repro.lint.rules import RULES, rule_ids

#: exit code when the lint run completed and found nothing actionable
EXIT_CLEAN = 0
#: exit code when active error-severity findings remain
EXIT_FINDINGS = 1
#: exit code when the run itself failed
EXIT_USAGE = 2


def build_parser():
    """The argparse parser (exposed for --help tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically check interposition agents against the "
                    "toolkit protocol: syntactic rules L001-L011 plus "
                    "the path-sensitive flow rules F001-F005 (see "
                    "docs/LINTING.md).")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the findings document as JSON")
    parser.add_argument("--sarif", metavar="FILE",
                        help="also write the findings as SARIF 2.1.0 "
                             "to FILE (GitHub code-scanning upload)")
    parser.add_argument("--diff", metavar="REF", dest="diff_ref",
                        help="lint only files changed relative to git "
                             "REF (fast PR mode)")
    parser.add_argument("--rules", metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all of %s)" % ",".join(rule_ids()))
    parser.add_argument("--baseline", metavar="FILE",
                        help="tolerate findings fingerprinted in FILE")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings to FILE and exit 0")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed/baselined findings")
    parser.add_argument("--protocol-root", metavar="DIR",
                        help="read sysent/symbolic/errno from DIR instead "
                             "of the installed repro package")
    parser.add_argument("--no-parity", action="store_true",
                        help="skip the project-wide L007 parity pass")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _list_rules(out):
    for rule_id in rule_ids():
        rule = RULES[rule_id]
        out.write("%s %s: %s\n" % (rule_id, rule.severity, rule.summary))


def main(argv=None):
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout
    if args.list_rules:
        _list_rules(out)
        return EXIT_CLEAN
    if not args.paths:
        parser.error("the following arguments are required: PATH")

    only_rules = None
    if args.rules:
        only_rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = only_rules - set(rule_ids())
        if unknown:
            sys.stderr.write("unknown rule id(s): %s\n"
                             % ", ".join(sorted(unknown)))
            return EXIT_USAGE

    try:
        baseline = (engine.load_baseline(args.baseline)
                    if args.baseline else None)
        result = engine.run_lint(
            args.paths,
            protocol_root=args.protocol_root,
            check_parity=not args.no_parity,
            baseline=baseline,
            only_rules=only_rules,
            diff_ref=args.diff_ref)
    except engine.LintError as err:
        sys.stderr.write("repro-lint: %s\n" % err)
        return EXIT_USAGE

    if args.sarif:
        sarif.write_sarif(args.sarif, result)

    if args.write_baseline:
        fingerprints = engine.write_baseline(args.write_baseline, result)
        out.write("wrote %d fingerprint(s) to %s\n"
                  % (len(fingerprints), args.write_baseline))
        return EXIT_CLEAN

    if args.as_json:
        json.dump(result.to_dict(), out, indent=1)
        out.write("\n")
    else:
        shown = [f for f in result.findings
                 if args.show_suppressed
                 or not (f.suppressed or f.baselined)]
        for finding in shown:
            out.write(finding.render() + "\n")
        out.write("%d file(s) checked: %d finding(s), %d suppressed, "
                  "%d baselined\n"
                  % (len(result.files), len(result.active),
                     len(result.suppressed), len(result.baselined)))
    if result.internal_errors:
        # The sweep completed but some file was never analyzed —
        # distinct from "findings" so CI can tell the cases apart.
        sys.stderr.write(
            "repro-lint: %d file(s) could not be analyzed (L000)\n"
            % len(result.internal_errors))
        return EXIT_USAGE
    return EXIT_FINDINGS if result.active else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
