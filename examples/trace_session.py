"""System call tracing: the paper's trace agent on a shell session.

Run with:  python examples/trace_session.py

Reproduces the workflow of Section 3.3.2: run an unmodified program
under the trace agent and inspect the log of every system call and
signal, including across fork and execve.
"""

from repro.agents.trace import TraceSymbolicSyscall
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent
from repro.workloads import boot_world


def main():
    kernel = boot_world()
    kernel.write_file("/home/mbj/notes.txt", "interposition agents\n")

    agent = TraceSymbolicSyscall("/tmp/trace.out")
    status = run_under_agent(
        kernel, agent, "/bin/sh",
        ["sh", "-c", "cat /home/mbj/notes.txt; cat /definitely/missing; "
                     "echo done > /tmp/out"],
    )
    print("client exit status:", WEXITSTATUS(status))
    print("client output:", kernel.console.take_output().decode().strip())
    print()
    print("trace log (/tmp/trace.out):")
    print("-" * 64)
    log = kernel.read_file("/tmp/trace.out").decode()
    for line in log.splitlines():
        print(" ", line)
    print("-" * 64)
    print("%d trace lines; note the [pid] markers following fork, the"
          % len(log.splitlines()))
    print("execve lines with no result (exec does not return), and the")
    print("ENOENT result for the failed open.")


if __name__ == "__main__":
    main()
