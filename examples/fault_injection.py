"""Fault injection: rehearse failures against unmodified programs.

Run with:  python examples/fault_injection.py

Interposition as a test harness: make chosen system calls fail with
chosen errnos on a schedule and watch how an unmodified program copes —
here, a disk that "fills up" after two writes, and a flaky file that
fails its first open.
"""

from repro.agents.faults import FaultAgent
from repro.kernel.errno import EIO, ENOSPC
from repro.toolkit import run_under_agent
from repro.workloads import boot_world


def main():
    kernel = boot_world()

    print("--- filesystem fills up after two file creations ---")
    agent = FaultAgent()
    agent.add_rule("open", ENOSPC, ("after", 2), path_prefix="/tmp")
    run_under_agent(
        kernel, agent, "/bin/sh",
        ["sh", "-c",
         "echo one > /tmp/a && echo wrote-a || echo failed-a;"
         "echo two > /tmp/b && echo wrote-b || echo failed-b;"
         "echo three > /tmp/c && echo wrote-c || echo failed-c"],
    )
    print(kernel.console.take_output().decode())
    for name, errno_value, seen, injected in agent.report():
        print("rule %s(errno %d): %d calls seen, %d failures injected"
              % (name, errno_value, seen, injected))

    print()
    print("--- first open of the flaky file fails, retry succeeds ---")
    agent = FaultAgent()
    agent.add_rule("open", EIO, "once", path_prefix="/tmp/flaky")
    run_under_agent(
        kernel, agent, "/bin/sh",
        ["sh", "-c",
         "echo try1 > /tmp/flaky || echo retrying;"
         "echo try2 > /tmp/flaky && cat /tmp/flaky"],
    )
    print(kernel.console.take_output().decode())


if __name__ == "__main__":
    main()
