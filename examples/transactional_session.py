"""Transactional software environments, with nesting.

Run with:  python examples/transactional_session.py

The paper's run_transaction example (Section 1.4): run an arbitrary
unmodified program so that all persistent side effects are remembered
and applied only on commit — and run one transactional invocation
inside another for nested transactions, which fall out of agent
stacking.
"""

from repro.agents.txn import TxnAgent
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent
from repro.workloads import boot_world


def show(kernel, label):
    print("%-28s balance=%r audit=%s" % (
        label,
        kernel.read_file("/home/mbj/balance").decode().strip(),
        "present" if kernel.lookup_host("/home/mbj").contains("audit")
        else "absent",
    ))


def main():
    kernel = boot_world()
    kernel.write_file("/home/mbj/balance", "100\n")

    # --- a transaction that aborts -----------------------------------
    agent = TxnAgent(scratch_dir="/tmp/txn-demo", outcome="abort")
    status = run_under_agent(
        kernel, agent, "/bin/sh",
        ["sh", "-c",
         "echo 0 > /home/mbj/balance; echo drained > /home/mbj/audit;"
         "cat /home/mbj/balance"],
    )
    inside = kernel.console.take_output().decode().strip()
    print("inside the aborted txn, balance read back as:", inside)
    show(kernel, "after abort:")
    print()

    # --- the same session, committed ------------------------------------
    agent = TxnAgent(scratch_dir="/tmp/txn-demo2", outcome="commit")
    run_under_agent(
        kernel, agent, "/bin/sh",
        ["sh", "-c", "echo 250 > /home/mbj/balance"],
    )
    kernel.console.take_output()
    show(kernel, "after commit:")
    print()

    # --- nested transactions ---------------------------------------------
    # The outer transaction commits; an inner one (run through the agent
    # loader, stacked above the outer agent) aborts.  The inner's effects
    # vanish; the outer's survive.
    kernel.write_file("/home/mbj/balance", "100\n")
    outer = TxnAgent(scratch_dir="/tmp/txn-outer", outcome="commit")
    status = run_under_agent(
        kernel, outer, "/bin/sh",
        ["sh", "-c",
         "echo 150 > /home/mbj/balance;"
         "agentrun txn abort /tmp/txn-inner -- sh -c"
         " 'echo 999 > /home/mbj/balance; cat /home/mbj/balance';"
         "cat /home/mbj/balance"],
    )
    lines = kernel.console.take_output().decode().split()
    print("nested run (exit %d):" % WEXITSTATUS(status))
    print("  inner transaction saw its own write:", lines[0])
    print("  after the inner abort, the outer sees:", lines[1])
    show(kernel, "after outer commit:")


if __name__ == "__main__":
    main()
