"""Quickstart: boot a simulated 4.3BSD machine and interpose an agent.

Run with:  python examples/quickstart.py

Walks through the library's three core moves:

1. boot a world and run an unmodified program;
2. write a tiny agent at the symbolic layer (one overridden method);
3. run the same unmodified program under it.
"""

from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import SymbolicSyscall, run_under_agent
from repro.workloads import boot_world


class ShoutingAgent(SymbolicSyscall):
    """Interpose on write(): upper-case everything the client prints.

    Everything else — the other ~70 system calls, signals, fork, exec —
    is inherited from the toolkit's default behaviour.
    """

    def sys_write(self, fd, data):
        if fd == 1 and isinstance(data, (bytes, bytearray)):
            data = data.upper()
        return super().sys_write(fd, data)


def main():
    kernel = boot_world()

    # 1. An unmodified program, no agent.
    status = kernel.run("/bin/sh", ["sh", "-c", "echo hello from 4.3bsd"])
    print("no agent   (exit %d): %s"
          % (WEXITSTATUS(status), kernel.console.take_output().decode()), end="")

    # 2 + 3. The same binary under the agent.  run_under_agent plays the
    # role of the paper's agent loader: it attaches the agent to a fresh
    # process and execs the client through the agent's exec path, so the
    # interposition survives into the unmodified binary.
    status = run_under_agent(
        kernel, ShoutingAgent(), "/bin/sh", ["sh", "-c", "echo hello from 4.3bsd"]
    )
    print("with agent (exit %d): %s"
          % (WEXITSTATUS(status), kernel.console.take_output().decode()), end="")

    # Agents compose: the shell, echo, and any children it forks all run
    # under the same agent instance (paper Figure 1-4).
    status = run_under_agent(
        kernel, ShoutingAgent(), "/bin/sh",
        ["sh", "-c", "echo one; echo two | cat"],
    )
    print("pipeline   (exit %d):\n%s"
          % (WEXITSTATUS(status), kernel.console.take_output().decode()), end="")


if __name__ == "__main__":
    main()
