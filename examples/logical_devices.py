"""Logical devices implemented entirely in user space.

Run with:  python examples/logical_devices.py

The paper (Section 1.4): "logical devices implemented entirely in user
space."  The agent puts device files into the name space of unmodified
programs; their reads, writes, and stats are served from agent code —
the kernel never sees a device.
"""

from repro.agents.logical_dev import (
    CounterDevice,
    LogicalDeviceAgent,
    SinkDevice,
)
from repro.toolkit import run_under_agent
from repro.workloads import boot_world


def main():
    kernel = boot_world()

    agent = LogicalDeviceAgent()          # ships /dev/fortune by default
    counter = CounterDevice()
    sink = SinkDevice()
    agent.add_device("/dev/ticket", counter)
    agent.add_device("/dev/blackhole", sink)

    run_under_agent(
        kernel, agent, "/bin/sh",
        ["sh", "-c",
         "cat /dev/fortune; cat /dev/fortune;"
         "cat /dev/ticket; cat /dev/ticket; cat /dev/ticket;"
         "cat /etc/passwd > /dev/blackhole;"
         "cat /dev/blackhole"],
    )
    print("what the unmodified shell session saw:")
    print(kernel.console.take_output().decode())

    print("the kernel's real /dev has no such entries:")
    names = sorted(
        n for n in kernel.lookup_host("/dev").entries if n not in (".", "..")
    )
    print(" ", names)
    print("device state lives in the agent: counter=%d, sunk=%d bytes"
          % (counter.value, sink.bytes_sunk))


if __name__ == "__main__":
    main()
