"""A tour of causal span tracing: timelines, Perfetto export, critical path.

Run with:  python examples/trace_timeline.py

Four stops:

1. Boot a world with span tracing on (``Kernel(obs="spans")``) and run
   a 3-stage ``sh`` pipeline whose stages genuinely block on the pipes.
2. Look at the assembled trace: spans per kind, and the cross-process
   causal edges (fork -> child, exec, pipe waker -> sleeper wakeup).
3. Export the Chrome trace-event JSON and validate it against the spec
   — the same file loads in https://ui.perfetto.dev with one track per
   pid and flow arrows for the causal edges.
4. Walk the critical path: the longest dependency chain behind the
   pipeline's completion, every microsecond attributed to a bucket.
"""

import json

from repro.kernel.proc import WEXITSTATUS
from repro.obs.critical import critical_path
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.workloads import boot_world


def main():
    # -- stop 1: a pipeline worth tracing -------------------------------
    world = boot_world(obs="spans")
    world.mkdir_p("/data")
    world.write_file("/data/corpus", b"all problems in computer science\n" * 2000)
    status = world.run(
        "/bin/sh", ["sh", "-c", "cat /data/corpus | sort | wc"])
    print("pipeline exit status:", WEXITSTATUS(status))
    print("console:", world.console.take_output().decode().strip())

    # -- stop 2: what the assembler built -------------------------------
    assembler = world.obs.spans
    assembler.close_open()
    by_kind = {}
    for span in assembler.finished():
        by_kind[span.kind] = by_kind.get(span.kind, 0) + 1
    print("\nspans by kind:", by_kind)
    print("causal edges:")
    for edge in assembler.all_edges()[:8]:
        print("  %-6s pid %d -> pid %d (event #%d -> #%d)"
              % (edge.kind, edge.src_pid, edge.dst_pid,
                 edge.src_seq, edge.dst_seq))
    print("  ... %d edges total" % len(assembler.all_edges()))

    # -- stop 3: Chrome trace-event export ------------------------------
    doc = chrome_trace(assembler, workload="example pipeline")
    summary = validate_chrome_trace(doc)
    out = "/tmp/pipeline_trace.json"
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
    print("\nwrote %s: %d slices on %d tracks, %d flow arrows "
          "(spec-valid; load it in ui.perfetto.dev)"
          % (out, summary["X"], summary["tracks"], summary["flows"]))

    # -- stop 4: the critical path --------------------------------------
    report = critical_path(assembler)
    print()
    print(report.render())
    chain = []
    for seg in report.segments:
        if not chain or chain[-1] != seg.pid:
            chain.append(seg.pid)
    print("pid chain (latest first):",
          " -> ".join(str(p) for p in chain))
    print("\nThe chain starts at the shell, hops to wc (the last stage "
          "to finish),\nand follows pipe wakeups upstream through sort "
          "to cat — fork, exec and\npipe causality recovered entirely "
          "from the in-band event stream.")


if __name__ == "__main__":
    main()
