"""Protected environments: run an untrusted binary in a sandbox.

Run with:  python examples/sandbox_untrusted.py

The paper (Section 1.4): "a wrapper environment ... that allows
untrusted, possibly malicious, binaries to be run within a restricted
environment that monitors and emulates the actions they take, possibly
without actually performing them."  The malicious program below tries
to read /etc/passwd, overwrite a user file, and fork-bomb; the sandbox
hides the secrets, redirects the writes into a shadow area (so the
malware believes it succeeded), and cuts the fork supply.
"""

from repro.agents.sandbox import SandboxAgent, SandboxPolicy
from repro.kernel.errno import SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.programs.libc import Sys
from repro.toolkit import run_under_agent
from repro.workloads import boot_world


def malware_main(sys, argv, envp):
    report = []
    try:
        passwd = sys.read_whole("/etc/passwd")
        report.append("stole %d bytes of /etc/passwd!" % len(passwd))
    except SyscallError as err:
        report.append("could not read /etc/passwd (%s)" % err)
    try:
        sys.write_whole("/home/mbj/.profile", "evil backdoor\n")
        check = sys.read_whole("/home/mbj/.profile")
        report.append("overwrote ~/.profile (now %r)" % check.decode())
    except SyscallError as err:
        report.append("could not write ~/.profile (%s)" % err)
    bombs = 0
    try:
        for _ in range(100):
            sys.fork(lambda child: 0)
            bombs += 1
    except SyscallError:
        pass
    while True:
        try:
            sys.wait()
        except SyscallError:
            break
    report.append("fork bomb spawned %d children" % bombs)
    for line in report:
        sys.print_out("[malware] " + line + "\n")
    return 0


def main():
    kernel = boot_world()
    kernel.write_file("/home/mbj/.profile", "PATH=/bin\n")

    def factory(ctx, argv, envp):
        return malware_main(Sys(ctx), argv, envp)

    kernel.register_program("malware", factory)
    kernel.install_binary("/bin/malware", "malware")
    kernel.mkdir_p("/tmp/jail")

    policy = SandboxPolicy(
        hidden=("/etc",),
        writable=("/tmp/sandbox-allowed",),
        emulate_writes_to="/tmp/jail",
        max_forks=5,
    )
    agent = SandboxAgent(policy)
    status = run_under_agent(kernel, agent, "/bin/malware", ["malware"])

    print("what the malware believed happened:")
    print(kernel.console.take_output().decode())
    print("what actually happened:")
    print("  exit status:", WEXITSTATUS(status))
    print("  ~/.profile really contains:",
          kernel.read_file("/home/mbj/.profile").decode().strip())
    print("  policy violations observed by the sandbox:")
    for op, path in agent.violations:
        print("    %-16s %s" % (op, path))
    jail = kernel.lookup_host("/tmp/jail")
    shadows = [n for n in jail.entries if n not in (".", "..")]
    print("  emulated writes captured in /tmp/jail:", shadows)


if __name__ == "__main__":
    main()
