"""Operating system emulation at the numeric layer.

Run with:  python examples/os_emulation.py

The paper (Section 1.4): "alternate system call implementations can be
used to concurrently run binaries from variant operating systems on the
same platform — for instance, to run ULTRIX, HP-UX, or UNIX System V
binaries in a Mach/BSD environment."  Our foreign dialect ("HPX") uses
system call numbers offset by 1000 and different errno values; the
emulation agent remaps them at the numeric layer.
"""

from repro.agents.emul import EmulAgent, ForeignContext
from repro.kernel.errno import SyscallError
from repro.workloads import boot_world


def foreign_program(f):
    """A "binary compiled for HPX": all trap numbers are foreign."""
    fd = f.trap(5, "/tmp/from-hpux.txt", 0x0201 | 0x0200, 0o644)  # open
    f.trap(4, fd, b"written through the HPX ABI\n")  # write
    f.trap(6, fd)  # close
    pid = f.trap(20)  # getpid
    try:
        f.trap(5, "/no/such/file", 0, 0)
    except SyscallError as err:
        return pid, err.errno
    return pid, 0


def main():
    kernel = boot_world()

    # Without the agent, the foreign binary cannot run at all.
    def bare(ctx):
        try:
            ForeignContext(ctx).trap(20)
        except SyscallError as err:
            print("without the agent: foreign getpid fails with errno",
                  err.errno, "(ENOSYS)")
        return 0

    kernel.run_entry(bare)

    # With the agent interposed, the same instruction stream works.
    def emulated(ctx):
        agent = EmulAgent()
        agent.attach(ctx)
        pid, errno_value = foreign_program(ForeignContext(ctx))
        print("with the agent: foreign getpid ->", pid)
        print("foreign open of a missing file -> errno", errno_value,
              "(the foreign dialect's ENOENT, not the native 2)")
        print("calls translated by the agent:", agent.translated)
        return 0

    kernel.run_entry(emulated)
    print("file written through the foreign ABI:",
          kernel.read_file("/tmp/from-hpux.txt").decode().strip())


if __name__ == "__main__":
    main()
