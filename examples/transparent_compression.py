"""Transparent data compression and encryption agents.

Run with:  python examples/transparent_compression.py

The paper (Section 1.4): "transparent data compression and/or
encryption agents."  Files under a subtree are stored compressed (or
enciphered) but unmodified programs read and write them as plain text.
"""

from repro.agents.transform import CompressAgent, CryptAgent
from repro.toolkit import run_under_agent
from repro.workloads import boot_world

TEXT = ("The interposition toolkit presents the system interface as "
        "objects at several layers of abstraction. ") * 40


def main():
    kernel = boot_world()
    kernel.mkdir_p("/home/mbj/compressed")

    run_under_agent(
        kernel, CompressAgent("/home/mbj/compressed"), "/bin/sh",
        ["sh", "-c", "echo %s > /home/mbj/compressed/paper.txt; "
                     "wc /home/mbj/compressed/paper.txt" % TEXT.strip()],
    )
    print("what the client saw (wc of the plain text):")
    print(" ", kernel.console.take_output().decode().strip())
    stored = kernel.read_file("/home/mbj/compressed/paper.txt")
    print("bytes actually stored on disk: %d (plain text was %d)"
          % (len(stored), len(TEXT)))
    print("stored prefix:", stored[:24])
    print()

    # Encryption: same structure, different transform.
    kernel.mkdir_p("/home/mbj/vault")
    run_under_agent(
        kernel, CryptAgent("/home/mbj/vault", key="lovelace"), "/bin/sh",
        ["sh", "-c", "echo the combination is 12345 > /home/mbj/vault/safe"],
    )
    kernel.console.take_output()
    stored = kernel.read_file("/home/mbj/vault/safe")
    print("ciphertext on disk:", stored[:32], "...")

    run_under_agent(
        kernel, CryptAgent("/home/mbj/vault", key="lovelace"), "/bin/sh",
        ["sh", "-c", "cat /home/mbj/vault/safe"],
    )
    print("read back with the right key:",
          kernel.console.take_output().decode().strip())

    run_under_agent(
        kernel, CryptAgent("/home/mbj/vault", key="wrong"), "/bin/sh",
        ["sh", "-c", "cat /home/mbj/vault/safe"],
    )
    garbled = kernel.console.take_output().decode(errors="replace")
    print("read back with the wrong key:", repr(garbled[:40]))


if __name__ == "__main__":
    main()
