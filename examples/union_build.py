"""Union directories: make over merged source and object directories.

Run with:  python examples/union_build.py

The paper's motivating enhancement (Sections 1.4 and 3.3.3): "mount a
search list of directories in the filesystem name space such that the
union of their contents appears to reside in a single directory ...
to allow distinct source and object directories to appear as a single
directory when running make."
"""

from repro.agents.union_dirs import UnionAgent
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent
from repro.workloads import boot_world


def main():
    kernel = boot_world()

    # A read-only source directory and a separate build directory.
    kernel.mkdir_p("/usr/src/hello")
    kernel.write_file(
        "/usr/src/hello/hello.c",
        '#include "stdio.h"\nint main() { call printf(1); return 0; }\n',
    )
    kernel.write_file(
        "/usr/src/hello/Makefile",
        "hello: hello.c\n\tcc -o hello hello.c\n",
    )
    kernel.mkdir_p("/usr/obj/hello")
    kernel.mkdir_p("/work")

    # /work = union(/usr/obj/hello, /usr/src/hello): lookups fall through
    # to the sources; everything created lands in the object directory.
    agent = UnionAgent()
    agent.pset.add_union("/work", ["/usr/obj/hello", "/usr/src/hello"])

    status = run_under_agent(
        kernel, agent, "/bin/sh",
        ["sh", "-c", "cd /work; ls; make; ls"],
    )
    print("exit status:", WEXITSTATUS(status))
    print(kernel.console.take_output().decode())

    print("object directory after the build:")
    for name in sorted(kernel.lookup_host("/usr/obj/hello").entries):
        if name not in (".", ".."):
            print("  /usr/obj/hello/" + name)
    print("source directory untouched:")
    for name in sorted(kernel.lookup_host("/usr/src/hello").entries):
        if name not in (".", ".."):
            print("  /usr/src/hello/" + name)


if __name__ == "__main__":
    main()
