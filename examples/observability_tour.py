"""A tour of the observability layer: ktrace, kdump, and the registry.

Run with:  python examples/observability_tour.py

Three stops:

1. Enable full observability and run the make workload (Table 3-3's 64
   fork/execve pairs) with every process traced.
2. Dump an excerpt of the kernel trace buffer in kdump format, plus the
   same records as JSON lines.
3. Read the metrics registry: the busiest system calls, and the
   per-layer latency attribution for a run under the trace agent.
"""

from repro import obs
from repro.kernel.proc import WEXITSTATUS
from repro.obs.export import (
    events_to_jsonl,
    kdump_lines,
    layer_rows,
    syscall_rows,
)
from repro.toolkit import run_under_agent
from repro.workloads import boot_world, make_programs


def main():
    # -- stop 1: the make workload under the firehose -------------------
    kernel = boot_world()
    make_programs.setup(kernel)
    switchboard = obs.enable(kernel, ktrace_capacity=65536, trace_all=True)
    status = make_programs.run(kernel)
    print("make exit status:", WEXITSTATUS(status))
    kernel.console.take_output()  # the build chatter is not the point

    # -- stop 2: the trace buffer, kdump-style and as JSON --------------
    ring = switchboard.ktrace
    records = ring.drain()
    print("\nkdump excerpt (first 12 of %d records, %d dropped):"
          % (len(records), ring.dropped))
    for line in kdump_lines(records[:12], ring.dropped)[:-1]:
        print(" ", line)
    print("\nthe same records as JSON lines (first 3):")
    for line in events_to_jsonl(records[:3]).splitlines():
        print(" ", line)

    # -- stop 3: the metrics registry -----------------------------------
    print("\nbusiest system calls (traps / agent path / kernel path / "
          "mean virtual usec):")
    for name, calls, agent, kern, mean in syscall_rows(
            switchboard.metrics, top=8):
        print("  %-12s %6d %6d %6d %8.0f" % (name, calls, agent, kern, mean))

    print("\nper-layer latency attribution (format workload under the "
          "trace agent):")
    from repro.agents.trace import TraceSymbolicSyscall
    from repro.workloads import format_dissertation

    kernel = boot_world()
    format_dissertation.setup(kernel)
    registry = obs.enable(kernel).metrics
    agent = TraceSymbolicSyscall("/tmp/trace.out")
    status = run_under_agent(
        kernel, agent, "/usr/bin/scribe",
        ["scribe", format_dissertation.MANUSCRIPT,
         format_dissertation.OUTPUT])
    print("  format exit status:", WEXITSTATUS(status))
    for layer, count, mean, total in layer_rows(registry):
        print("  %-24s %6d calls %8.2f usec mean %10.0f usec total"
              % (layer, count, mean, total))
    print("\nEverything above was read in-band — no wall-clock harness, "
          "just the registry\nand ring buffer the kernel filled while "
          "the workloads ran.")


if __name__ == "__main__":
    main()
