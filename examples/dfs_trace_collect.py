"""File reference tracing: agent-based vs kernel-based DFSTrace.

Run with:  python examples/dfs_trace_collect.py

Reproduces the paper's Section 3.5.3 comparison in miniature: collect a
file-reference trace of the same workload with the interposition agent
and with the in-kernel collector, and show that the record streams
agree — one needed no kernel modification, the other was cheaper.
"""

from repro.agents.dfs_trace import DfsTraceAgent
from repro.kernel import dfstrace as kdfs
from repro.toolkit import run_under_agent
from repro.workloads import boot_world

WORKLOAD = ("mkdir /tmp/project; echo draft > /tmp/project/paper.txt; "
            "cat /tmp/project/paper.txt > /dev/null; "
            "mv /tmp/project/paper.txt /tmp/project/final.txt; "
            "rm /tmp/project/final.txt; rmdir /tmp/project")


def main():
    kernel = boot_world()

    collector = kdfs.enable(kernel)       # the monolithic, in-kernel way
    agent = DfsTraceAgent("/tmp/dfs.log")  # the interposition way
    run_under_agent(kernel, agent, "/bin/sh", ["sh", "-c", WORKLOAD])
    kdfs.disable(kernel)
    kernel.console.take_output()

    print("agent-based trace (%d records), project-file operations:"
          % len(agent.records))
    for record in agent.records:
        if "/tmp/project" in record.detail:
            print("  %s" % record.to_line())

    def project_ops(records):
        return [(r.opcode, r.detail.split()[0]) for r in records
                if "/tmp/project" in r.detail]

    same = project_ops(agent.records) == project_ops(collector.records)
    print()
    print("kernel-based trace captured %d records" % len(collector.records))
    print("record streams for the client's file references agree:", same)
    print()
    print("the agent modified 0 kernel files; the kernel collector is")
    print("compiled into the dispatch path (repro/kernel/dfstrace.py) —")
    print("cheaper to run, but monolithic. See benchmarks/bench_sec_3_5_3_dfstrace.py")


if __name__ == "__main__":
    main()
