"""Snapshot the PR's headline benchmark numbers into BENCH_PR7.json.

Run with:  python scripts/bench_snapshot.py [--quick] [output.json]

Records, for the compiled agent-stack dispatch added in PR 7, the
per-operation micro costs and tower/compiled ratios (the flat-chain
story), a macro row for the format-dissertation workload (honest and
Amdahl-bound: the workload is formatter CPU, not dispatch), the
compiled-off bit-for-bit equivalence check, and the record/replay
determinism sweep re-run with the compiled dispatch enabled (the
recorder must force a stand-down, so replays stay bit-identical) —
plus enough machine information to interpret the numbers later.
"""

import datetime
import json
import os
import platform
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(_HERE))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

from benchmarks import bench_compiled_dispatch as bench  # noqa: E402
from repro.bench.timing import paired_slowdowns, time_matrix  # noqa: E402
from repro.obs.timetravel import (  # noqa: E402
    compare_runs,
    record_run,
    replay_run,
)
from repro.workloads.chaos import MECHANISMS, POLICIES  # noqa: E402


def _macro_rows(runs):
    """Format workload, tower vs compiled: (config, seconds, pct)."""
    from repro.kernel.proc import WEXITSTATUS
    from repro.workloads import boot_world, format_dissertation

    def _prepare(config):
        kernel = boot_world(fastpaths=bench.fastpath_config(config))
        format_dissertation.setup(kernel)

        def run():
            status = format_dissertation.run(kernel)
            assert WEXITSTATUS(status) == 0, "workload failed (%r)" % status
            return kernel

        return run

    prepares = {config: (lambda config=config: _prepare(config))
                for config in bench.CONFIGS}
    results = time_matrix(prepares, runs=runs)
    slowdowns = paired_slowdowns(results, base_name="tower")
    return [(config, results[config][0], slowdowns[config])
            for config in bench.CONFIGS]


def _equivalence():
    """Compiled off == seed == compiled on, byte for byte (format run)."""
    from repro.kernel.proc import WEXITSTATUS
    from repro.workloads import boot_world, format_dissertation

    outputs = {}
    for label, flags in (("seed", "none"),
                         ("tower", "namecache,trap_fast,zero_copy"),
                         ("compiled", None)):
        world = (boot_world() if flags is None
                 else boot_world(fastpaths=flags))
        format_dissertation.setup(world)
        status = format_dissertation.run(world)
        assert WEXITSTATUS(status) == 0
        outputs[label] = world.read_file(format_dissertation.OUTPUT)
    return {
        "compiled_off_matches_seed": outputs["tower"] == outputs["seed"],
        "compiled_on_matches_seed": outputs["compiled"] == outputs["seed"],
        "output_bytes": len(outputs["seed"]),
    }


def _determinism_sweep(seeds):
    """Record + replay the smoke matrix (compiled dispatch enabled)."""
    cases = [dict(seed=0, workload="format", agent_rate=0.0, site_rate=0.0)]
    for i in range(seeds):
        cases.append(dict(
            seed=i,
            policy=POLICIES[i % len(POLICIES)],
            mechanism=MECHANISMS[i % len(MECHANISMS)],
            workload=("files", "pipes", "procs")[i % 3],
        ))
    rows = []
    for case in cases:
        recorded = record_run(**case)
        replayed = replay_run(recorded.meta, recorded.decisions)
        differences = compare_runs(recorded, replayed)
        rows.append({
            "scenario": recorded.meta,
            "outcome": recorded.report.outcome,
            "decisions": len(recorded.decisions),
            "events": len(recorded.events),
            "bit_identical": not differences,
            "differences": differences,
        })
    return rows


def snapshot(runs=9, micro_calls=2000, seeds=5):
    """Collect every headline number as one JSON-ready document."""
    doc = {
        "pr": 7,
        "title": "compiled agent-stack dispatch: flat per-syscall chains, "
                 "batched entry points",
        "generated": datetime.datetime.now().isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
        "protocol": {
            "macro_runs": runs,
            "micro_calls": micro_calls,
            "determinism_seeds": seeds,
            "method": "interleaved rounds, paired per-round slowdowns, "
                      "minimum over rounds (see repro.bench.timing)",
        },
        "micro": [],
        "micro_ratios": {},
        "macro": [],
        "equivalence": {},
        "determinism": [],
    }
    print("micro: %s ..." % (bench.CONFIGS,), flush=True)
    rows = bench.micro_rows(calls=micro_calls)
    doc["micro"] = [
        {"operation": op, "config": config, "usec": round(usec, 3)}
        for op, config, usec in rows
    ]
    doc["micro_ratios"] = {
        op: round(ratio, 2) for op, ratio in bench.ratios(rows).items()
    }
    print("macro: format scenario, tower vs compiled ...", flush=True)
    doc["macro"] = [
        {"config": config, "seconds": round(seconds, 4),
         "slowdown_vs_tower_pct": round(pct, 2)}
        for config, seconds, pct in _macro_rows(runs)
    ]
    print("equivalence: compiled off/on vs seed ...", flush=True)
    doc["equivalence"] = _equivalence()
    assert doc["equivalence"]["compiled_off_matches_seed"]
    assert doc["equivalence"]["compiled_on_matches_seed"]
    print("determinism sweep: format + %d chaos seed(s), compiled on ..."
          % seeds, flush=True)
    doc["determinism"] = _determinism_sweep(seeds)
    assert all(row["bit_identical"] for row in doc["determinism"]), \
        "a replay was not bit-identical; see the differences field"
    return doc


def main():
    """CLI entry point: parse flags, run, write the JSON snapshot."""
    argv = [a for a in sys.argv[1:]]
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    path = argv[0] if argv else "BENCH_PR7.json"
    doc = snapshot(runs=3 if quick else 9,
                   micro_calls=500 if quick else 2000,
                   seeds=3 if quick else 5)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote", path)


if __name__ == "__main__":
    main()
