"""Snapshot the PR's headline benchmark numbers into BENCH_PR2.json.

Run with:  python scripts/bench_snapshot.py [--quick] [output.json]

Records, for the kernel fast paths added in PR 2 (name cache, trap
fast-path dispatch, zero-copy read), the macro workload timings per
flag configuration, the per-operation micro costs, and the name cache's
own counters after a format run — plus enough machine information to
interpret the numbers later.
"""

import datetime
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from benchmarks import bench_kernel_fastpath as bench  # noqa: E402


def snapshot(runs=9, micro_calls=2000):
    """Collect every headline number as one JSON-ready document."""
    doc = {
        "pr": 2,
        "title": "kernel fast paths: name cache, trap dispatch, zero-copy",
        "generated": datetime.datetime.now().isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
        "protocol": {
            "macro_runs": runs,
            "micro_calls": micro_calls,
            "method": "interleaved rounds, paired per-round slowdowns, "
                      "minimum over rounds (see repro.bench.timing)",
        },
        "macro": {},
        "micro": [],
        "namecache_after_format": None,
    }
    for workload in bench.WORKLOADS:
        print("macro: %s ..." % workload, flush=True)
        doc["macro"][workload] = [
            {"config": config, "seconds": round(seconds, 4),
             "slowdown_vs_off_pct": round(pct, 2)}
            for config, seconds, pct in bench.macro_rows(workload, runs=runs)
        ]
    print("micro ...", flush=True)
    doc["micro"] = [
        {"operation": op, "config": config, "usec": round(usec, 3)}
        for op, config, usec in bench.micro_rows(calls=micro_calls)
    ]
    print("namecache counters ...", flush=True)
    doc["namecache_after_format"] = bench.cache_stats_after("format", "all")
    return doc


def main():
    argv = [a for a in sys.argv[1:]]
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    path = argv[0] if argv else "BENCH_PR2.json"
    doc = snapshot(runs=3 if quick else 9,
                   micro_calls=500 if quick else 2000)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote", path)


if __name__ == "__main__":
    main()
