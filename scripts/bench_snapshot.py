"""Snapshot the PR's headline benchmark numbers into BENCH_PR8.json.

Run with:  python scripts/bench_snapshot.py [--quick] [output.json]

Records, for the live-introspection stack added in PR 8, the macro and
micro cost of the simulated-time sampling profiler alongside the other
observability configs (the pay-per-use story: disabled must stay at
seed cost, profiling must stay under the recorder's budget), the
per-read latency of the /proc pseudo-files an in-world ``top``
iteration pays, the cost of one watch-set evaluation over a live
metric registry, the bit-for-bit equivalence checks (procfs mounted
and profiler enabled must not change workload output), and the
profiler's bit-identity across a record/replay round trip — plus
enough machine information to interpret the numbers later.  Extends
the PR2 (fast paths) / PR3 (obs) / PR6 (record) / PR7 (compiled
dispatch) snapshot trajectory.
"""

import datetime
import json
import os
import platform
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(_HERE))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

from benchmarks import bench_obs_overhead as bench  # noqa: E402


def _equivalence():
    """Procfs mounted / profiler on == seed, byte for byte (format run)."""
    from repro.kernel.proc import WEXITSTATUS
    from repro.kernel.procfs import mount_procfs
    from repro.obs.profile import enable_profile
    from repro.workloads import boot_world, format_dissertation

    def _run(prepare=None):
        world = boot_world()
        if prepare is not None:
            prepare(world)
        format_dissertation.setup(world)
        status = format_dissertation.run(world)
        assert WEXITSTATUS(status) == 0
        return world.read_file(format_dissertation.OUTPUT)

    seed = _run()
    mounted = _run(lambda world: mount_procfs(world))
    profiled = _run(lambda world: enable_profile(world))
    return {
        "procfs_mounted_matches_seed": mounted == seed,
        "profiler_on_matches_seed": profiled == seed,
        "output_bytes": len(seed),
    }


def _profile_replay():
    """Profile under record, replay, compare: bit-identical stacks."""
    from repro.kernel.proc import WEXITSTATUS
    from repro.obs.recorder import Recorder
    from repro.obs.profile import enable_profile
    from repro.workloads import boot_world

    command = "echo det; cat /etc/passwd | wc"

    def _run(recorder):
        world = boot_world()
        recorder.attach(world)
        prof = enable_profile(world, interval_usec=300)
        status = world.run("/bin/sh", ["sh", "-c", command])
        assert WEXITSTATUS(status) == 0
        return world, prof

    world1, prof1 = _run(Recorder(mode="record"))
    _, prof2 = _run(Recorder(mode="replay",
                             log=world1.recorder.decisions))
    return {
        "command": command,
        "interval_usec": 300,
        "samples": prof1.sample_total,
        "decisions": len(world1.recorder.decisions),
        "stacks_bit_identical":
            prof1.collapsed(per_pid=True) == prof2.collapsed(per_pid=True),
        "timeline_bit_identical": prof1.timeline == prof2.timeline,
    }


def snapshot(runs=9, micro_calls=2000, procfs_calls=400):
    """Collect every headline number as one JSON-ready document."""
    doc = {
        "pr": 8,
        "title": "live introspection: /proc pseudo-filesystem, "
                 "simulated-time sampling profiler, watchpoint alerting",
        "generated": datetime.datetime.now().isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
        "protocol": {
            "macro_runs": runs,
            "micro_calls": micro_calls,
            "procfs_calls": procfs_calls,
            "method": "interleaved rounds, paired per-round slowdowns, "
                      "minimum over rounds (see repro.bench.timing)",
        },
        "macro": [],
        "micro": [],
        "procfs_read": [],
        "watch_eval": [],
        "equivalence": {},
        "profile_replay": {},
    }
    print("macro: format scenario across %s ..." % (bench.CONFIGS,),
          flush=True)
    doc["macro"] = [
        {"config": config, "seconds": round(seconds, 4),
         "slowdown_vs_disabled_pct": round(pct, 2)}
        for config, seconds, pct in bench.macro_rows(runs)
    ]
    print("micro: one getpid trap per config ...", flush=True)
    doc["micro"] = [
        {"config": config, "usec": round(usec, 3)}
        for config, usec in bench.micro_rows(calls=micro_calls)
    ]
    print("procfs: open+read+close latency per pseudo-file ...", flush=True)
    doc["procfs_read"] = [
        {"node": node, "usec": round(usec, 3)}
        for node, usec in bench.procfs_read_rows(calls=procfs_calls)
    ]
    print("watch: one evaluation of a fuzzed rule set ...", flush=True)
    doc["watch_eval"] = [
        {"rules": label, "usec": round(usec, 3)}
        for label, usec in bench.watch_eval_rows()
    ]
    print("equivalence: procfs mounted / profiler on vs seed ...",
          flush=True)
    doc["equivalence"] = _equivalence()
    assert doc["equivalence"]["procfs_mounted_matches_seed"]
    assert doc["equivalence"]["profiler_on_matches_seed"]
    print("profiler determinism: record/replay round trip ...", flush=True)
    doc["profile_replay"] = _profile_replay()
    assert doc["profile_replay"]["stacks_bit_identical"], \
        "profile stacks diverged across the record/replay round trip"
    assert doc["profile_replay"]["timeline_bit_identical"]
    return doc


def main():
    """CLI entry point: parse flags, run, write the JSON snapshot."""
    argv = [a for a in sys.argv[1:]]
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    path = argv[0] if argv else "BENCH_PR8.json"
    doc = snapshot(runs=3 if quick else 9,
                   micro_calls=500 if quick else 2000,
                   procfs_calls=100 if quick else 400)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote", path)


if __name__ == "__main__":
    main()
