"""Snapshot the PR's headline benchmark numbers into BENCH_PR6.json.

Run with:  python scripts/bench_snapshot.py [--quick] [output.json]

Records, for the deterministic record/replay added in PR 6, the
recording overhead matrix (disabled / record / replay) on the
format-dissertation scenario, the per-trap micro costs, and a
determinism proof sweep (record + bit-identical replay over the format
run and a cycle of chaos seeds, with decision-log sizes) — plus enough
machine information to interpret the numbers later.
"""

import datetime
import json
import os
import platform
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(_HERE))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

from benchmarks import bench_record_overhead as bench  # noqa: E402
from repro.obs.timetravel import (  # noqa: E402
    compare_runs,
    record_run,
    replay_run,
)
from repro.workloads.chaos import MECHANISMS, POLICIES  # noqa: E402


def _determinism_sweep(seeds):
    """Record + replay the smoke matrix; returns per-scenario rows."""
    cases = [dict(seed=0, workload="format", agent_rate=0.0, site_rate=0.0)]
    for i in range(seeds):
        cases.append(dict(
            seed=i,
            policy=POLICIES[i % len(POLICIES)],
            mechanism=MECHANISMS[i % len(MECHANISMS)],
            workload=("files", "pipes", "procs")[i % 3],
        ))
    rows = []
    for case in cases:
        recorded = record_run(**case)
        replayed = replay_run(recorded.meta, recorded.decisions)
        differences = compare_runs(recorded, replayed)
        rows.append({
            "scenario": recorded.meta,
            "outcome": recorded.report.outcome,
            "decisions": len(recorded.decisions),
            "events": len(recorded.events),
            "bit_identical": not differences,
            "differences": differences,
        })
    return rows


def snapshot(runs=9, micro_calls=2000, seeds=5):
    """Collect every headline number as one JSON-ready document."""
    doc = {
        "pr": 6,
        "title": "deterministic record/replay: nondeterminism log, "
                 "recorder, time-travel debugging",
        "generated": datetime.datetime.now().isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
        "protocol": {
            "macro_runs": runs,
            "micro_calls": micro_calls,
            "determinism_seeds": seeds,
            "method": "interleaved rounds, paired per-round slowdowns, "
                      "minimum over rounds (see repro.bench.timing)",
        },
        "macro": [],
        "micro": [],
        "determinism": [],
    }
    print("macro: format scenario x %s ..." % (bench.CONFIGS,), flush=True)
    doc["macro"] = [
        {"config": config, "seconds": round(seconds, 4),
         "slowdown_vs_disabled_pct": round(pct, 2)}
        for config, seconds, pct in bench.macro_rows(runs=runs)
    ]
    print("micro ...", flush=True)
    doc["micro"] = [
        {"config": config, "usec": round(usec, 3)}
        for config, usec in bench.micro_rows(calls=micro_calls)
    ]
    print("determinism sweep: format + %d chaos seed(s) ..." % seeds,
          flush=True)
    doc["determinism"] = _determinism_sweep(seeds)
    assert all(row["bit_identical"] for row in doc["determinism"]), \
        "a replay was not bit-identical; see the differences field"
    return doc


def main():
    """CLI entry point: parse flags, run, write the JSON snapshot."""
    argv = [a for a in sys.argv[1:]]
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    path = argv[0] if argv else "BENCH_PR6.json"
    doc = snapshot(runs=3 if quick else 9,
                   micro_calls=500 if quick else 2000,
                   seeds=3 if quick else 5)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote", path)


if __name__ == "__main__":
    main()
