"""Snapshot the PR's headline benchmark numbers into BENCH_PR3.json.

Run with:  python scripts/bench_snapshot.py [--quick] [output.json]

Records, for the causal span tracing added in PR 3, the observability
overhead matrix (disabled / metrics / ktrace+metrics / spans) on the
format-dissertation workload, the per-trap micro costs, and the
critical-path reports for the traced workloads (the 3-stage sh
pipeline bare and under a union+txn stack, and the format run under
the monitor agent) — plus enough machine information to interpret the
numbers later.
"""

import datetime
import json
import os
import platform
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(_HERE))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

import trace_timeline  # noqa: E402  (sibling script: workload runners)
from benchmarks import bench_obs_overhead as bench  # noqa: E402
from repro.kernel.proc import WEXITSTATUS  # noqa: E402
from repro.obs import critical as obs_critical  # noqa: E402
from repro.obs import export as obs_export  # noqa: E402
from repro.workloads import boot_world  # noqa: E402


def _critical_report(workload, agent_spec, lines):
    """Run one traced workload; return its critical-path summary."""
    world = boot_world(obs="spans")
    agents = trace_timeline.build_agents(agent_spec, workload)
    if workload == "pipeline":
        status, label = trace_timeline.run_pipeline(world, agents, lines)
    else:
        status, label = trace_timeline.run_format(world, agents)
    assert WEXITSTATUS(status) == 0, "workload failed (%r)" % status
    assembler = world.obs.spans
    assembler.close_open()
    doc = obs_export.chrome_trace(assembler, workload=label)
    summary = obs_export.validate_chrome_trace(doc)
    report = obs_critical.critical_path(assembler)
    return {
        "workload": label,
        "agents": agent_spec,
        "spans": assembler.counts()["spans"],
        "edges": assembler.counts()["edges_by_kind"],
        "trace_export": summary,
        "critical_path": report.to_dict(),
    }


def snapshot(runs=9, micro_calls=2000, lines=2000):
    """Collect every headline number as one JSON-ready document."""
    doc = {
        "pr": 3,
        "title": "causal span tracing: timelines, Chrome export, "
                 "critical path",
        "generated": datetime.datetime.now().isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
        "protocol": {
            "macro_runs": runs,
            "micro_calls": micro_calls,
            "pipeline_lines": lines,
            "method": "interleaved rounds, paired per-round slowdowns, "
                      "minimum over rounds (see repro.bench.timing)",
        },
        "macro": [],
        "micro": [],
        "critical_paths": [],
    }
    print("macro: format workload x %s ..." % (bench.CONFIGS,), flush=True)
    doc["macro"] = [
        {"config": config, "seconds": round(seconds, 4),
         "slowdown_vs_disabled_pct": round(pct, 2)}
        for config, seconds, pct in bench.macro_rows(runs=runs)
    ]
    print("micro ...", flush=True)
    doc["micro"] = [
        {"config": config, "usec": round(usec, 3)}
        for config, usec in bench.micro_rows(calls=micro_calls)
    ]
    for workload, agent_spec in (("pipeline", "none"),
                                 ("pipeline", "union+txn"),
                                 ("format", "monitor")):
        print("critical path: %s under %s ..." % (workload, agent_spec),
              flush=True)
        doc["critical_paths"].append(
            _critical_report(workload, agent_spec, lines))
    return doc


def main():
    """CLI entry point: parse flags, run, write the JSON snapshot."""
    argv = [a for a in sys.argv[1:]]
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    path = argv[0] if argv else "BENCH_PR3.json"
    doc = snapshot(runs=3 if quick else 9,
                   micro_calls=500 if quick else 2000,
                   lines=500 if quick else 2000)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote", path)


if __name__ == "__main__":
    main()
