#!/usr/bin/env python3
"""agentlint — run repro.lint from a checkout without installing.

Equivalent to the ``repro-lint`` console script::

    PYTHONPATH=src python scripts/agentlint.py src/repro/agents src/repro/toolkit

See docs/LINTING.md for the rule catalog.
"""

import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
